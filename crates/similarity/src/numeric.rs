//! Numeric and boolean similarity.

/// Relative numeric similarity in [0, 1]:
/// `1 − |a−b| / max(|a|, |b|)`, clamped; equal values (including 0, 0) are 1.
///
/// Scale-free, so it works for populations as well as ages.
pub fn relative_numeric(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    if !a.is_finite() || !b.is_finite() {
        return 0.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).max(0.0)
}

/// Scaled numeric similarity in [0, 1]: `1 − |a−b| / scale`, clamped.
///
/// Used where the meaningful difference has a known range, e.g. years
/// (`scale = 50` means values 50+ years apart are fully dissimilar).
pub fn scaled_numeric(a: f64, b: f64, scale: f64) -> f64 {
    debug_assert!(scale > 0.0);
    if !a.is_finite() || !b.is_finite() {
        return 0.0;
    }
    (1.0 - (a - b).abs() / scale).clamp(0.0, 1.0)
}

/// Boolean similarity: 1 for equal, 0 otherwise.
pub fn boolean_similarity(a: bool, b: bool) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_equal_is_one() {
        assert_eq!(relative_numeric(5.0, 5.0), 1.0);
        assert_eq!(relative_numeric(0.0, 0.0), 1.0);
        assert_eq!(relative_numeric(-3.0, -3.0), 1.0);
    }

    #[test]
    fn relative_monotone_in_gap() {
        assert!(relative_numeric(100.0, 90.0) > relative_numeric(100.0, 50.0));
    }

    #[test]
    fn relative_clamps_at_zero() {
        assert_eq!(relative_numeric(1.0, -1.0), 0.0);
        assert_eq!(relative_numeric(10.0, -1000.0), 0.0);
    }

    #[test]
    fn relative_non_finite_is_zero() {
        assert_eq!(relative_numeric(f64::NAN, 1.0), 0.0);
        assert_eq!(relative_numeric(f64::INFINITY, 1.0), 0.0);
    }

    #[test]
    fn scaled_basics() {
        assert_eq!(scaled_numeric(1984.0, 1984.0, 50.0), 1.0);
        assert!((scaled_numeric(1984.0, 1989.0, 50.0) - 0.9).abs() < 1e-12);
        assert_eq!(scaled_numeric(1900.0, 2000.0, 50.0), 0.0);
    }

    #[test]
    fn scaled_symmetric() {
        assert_eq!(
            scaled_numeric(10.0, 20.0, 30.0),
            scaled_numeric(20.0, 10.0, 30.0)
        );
    }

    #[test]
    fn boolean_cases() {
        assert_eq!(boolean_similarity(true, true), 1.0);
        assert_eq!(boolean_similarity(false, false), 1.0);
        assert_eq!(boolean_similarity(true, false), 0.0);
    }
}
