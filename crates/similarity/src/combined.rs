//! The generic, type-dispatched similarity function.
//!
//! This is the paper's "generic similarity function that depends on the type
//! of the attributes to be compared (string, integer, float, date, etc.)"
//! (§4.1). It compares two [`TypedValue`]s — and, one level up, two RDF
//! object terms resolved from their data sets — returning a score in [0, 1].

use alex_rdf::{Dataset, Term};

use crate::date::{date_similarity, date_year_similarity, year_similarity};
use crate::numeric::{boolean_similarity, relative_numeric};
use crate::string::string_similarity;
use crate::value::{iri_local_name, sniff, typed_value, TypedValue};

/// Similarity of two typed values, in [0, 1].
///
/// Same-type pairs use the type's native measure. Mixed pairs coerce where a
/// meaningful comparison exists (date↔year, int↔float, text that parses as a
/// number) and otherwise fall back to string similarity of the lexical forms
/// — RDF data is messy, and "1984" as text still deserves to match the year
/// 1984.
pub fn value_similarity(a: &TypedValue, b: &TypedValue) -> f64 {
    use TypedValue as V;
    match (a, b) {
        (V::Text(x), V::Text(y)) => string_similarity(x, y),
        (V::Integer(x), V::Integer(y)) => relative_numeric(*x as f64, *y as f64),
        (V::Float(x), V::Float(y)) => relative_numeric(*x, *y),
        (V::Integer(x), V::Float(y)) | (V::Float(y), V::Integer(x)) => {
            relative_numeric(*x as f64, *y)
        }
        (V::Date(x), V::Date(y)) => date_similarity(*x, *y),
        (V::Year(x), V::Year(y)) => year_similarity(*x, *y),
        (V::Date(d), V::Year(y)) | (V::Year(y), V::Date(d)) => date_year_similarity(*d, *y),
        (V::Year(y), V::Integer(i)) | (V::Integer(i), V::Year(y)) => year_similarity(*y, *i as i32),
        (V::Boolean(x), V::Boolean(y)) => boolean_similarity(*x, *y),
        (V::Iri(x), V::Iri(y)) => {
            if x == y {
                1.0
            } else {
                string_similarity(iri_local_name(x), iri_local_name(y))
            }
        }
        // Text against a non-text value: re-sniff the text; if it now has the
        // partner's kind, compare natively, else compare lexical forms.
        (V::Text(t), other) | (other, V::Text(t)) => {
            let sniffed = sniff(t);
            if sniffed.type_name() == other.type_name() && !matches!(sniffed, V::Text(_)) {
                value_similarity(&sniffed, other)
            } else {
                string_similarity(t, &render(other))
            }
        }
        // IRI against a literal value: compare local name to lexical form.
        (V::Iri(x), other) | (other, V::Iri(x)) => {
            string_similarity(iri_local_name(x), &render(other))
        }
        // Remaining numeric/temporal cross-type pairs carry no signal.
        _ => 0.0,
    }
}

/// Render a typed value back to a comparable lexical form.
fn render(v: &TypedValue) -> String {
    match v {
        TypedValue::Text(s) => s.clone(),
        TypedValue::Integer(i) => i.to_string(),
        TypedValue::Float(f) => f.to_string(),
        TypedValue::Date(d) => format!("{:04}-{:02}-{:02}", d.year, d.month, d.day),
        TypedValue::Year(y) => y.to_string(),
        TypedValue::Boolean(b) => b.to_string(),
        TypedValue::Iri(s) => iri_local_name(s).to_string(),
    }
}

/// Similarity of two RDF object terms, each resolved in its own data set.
///
/// This is the entry point used when building similarity matrices between
/// entities of two data sets.
pub fn term_similarity(ds_a: &Dataset, a: Term, ds_b: &Dataset, b: Term) -> f64 {
    let va = typed_value(ds_a, a);
    let vb = typed_value(ds_b, b);
    value_similarity(&va, &vb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Date;
    use alex_rdf::vocab;

    #[test]
    fn text_text_uses_string_similarity() {
        let a = TypedValue::Text("LeBron James".into());
        let b = TypedValue::Text("lebron_james".into());
        assert_eq!(value_similarity(&a, &b), 1.0);
    }

    #[test]
    fn numeric_pairs() {
        assert_eq!(
            value_similarity(&TypedValue::Integer(10), &TypedValue::Integer(10)),
            1.0
        );
        assert!(value_similarity(&TypedValue::Integer(10), &TypedValue::Float(9.5)) > 0.9);
    }

    #[test]
    fn date_year_mixed() {
        let d = TypedValue::Date(Date::parse("1984-12-30").unwrap());
        let y = TypedValue::Year(1984);
        assert_eq!(value_similarity(&d, &y), 1.0);
    }

    #[test]
    fn year_integer_mixed() {
        let y = TypedValue::Year(1984);
        let i = TypedValue::Integer(1984);
        assert_eq!(value_similarity(&y, &i), 1.0);
    }

    #[test]
    fn iri_exact_and_local_name() {
        let a = TypedValue::Iri("http://a/LeBron_James".into());
        let b = TypedValue::Iri("http://b/ns#LeBron_James".into());
        assert_eq!(value_similarity(&a, &a), 1.0);
        assert_eq!(value_similarity(&a, &b), 1.0);
    }

    #[test]
    fn text_coerces_to_partner_type() {
        let t = TypedValue::Text("1984".into());
        let y = TypedValue::Year(1984);
        assert_eq!(value_similarity(&t, &y), 1.0);
    }

    #[test]
    fn text_number_fallback_to_lexical() {
        let t = TypedValue::Text("nineteen".into());
        let y = TypedValue::Year(1984);
        let s = value_similarity(&t, &y);
        assert!((0.0..1.0).contains(&s));
    }

    #[test]
    fn iri_vs_literal_compares_local_name() {
        let iri = TypedValue::Iri("http://e/Miami_Heat".into());
        let txt = TypedValue::Text("Miami Heat".into());
        assert_eq!(value_similarity(&iri, &txt), 1.0);
    }

    #[test]
    fn boolean_vs_date_is_zero() {
        let b = TypedValue::Boolean(true);
        let d = TypedValue::Date(Date::parse("2000-01-01").unwrap());
        assert_eq!(value_similarity(&b, &d), 0.0);
    }

    #[test]
    fn symmetry_across_kinds() {
        let pairs = [
            (TypedValue::Text("abc".into()), TypedValue::Integer(3)),
            (
                TypedValue::Year(1990),
                TypedValue::Date(Date::parse("1992-05-01").unwrap()),
            ),
            (
                TypedValue::Iri("http://e/X".into()),
                TypedValue::Text("X".into()),
            ),
        ];
        for (a, b) in &pairs {
            assert!((value_similarity(a, b) - value_similarity(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn term_similarity_across_datasets() {
        let mut ds1 = Dataset::new("a");
        let mut ds2 = Dataset::new("b");
        let t1 = ds1.plain("LeBron James");
        let t2 = ds2.plain("LeBron_James");
        assert_eq!(term_similarity(&ds1, t1, &ds2, t2), 1.0);

        let y1 = ds1.typed("1984", vocab::XSD_GYEAR);
        let y2 = ds2.plain("1984");
        assert_eq!(term_similarity(&ds1, y1, &ds2, y2), 1.0);
    }
}
