//! Property-based tests for the similarity measures: every measure must be
//! symmetric, bounded to [0, 1], and return 1.0 on identical inputs.

use alex_sim::{
    jaccard_tokens, jaro, jaro_winkler, levenshtein, levenshtein_similarity, normalize,
    relative_numeric, scaled_numeric, string_similarity, trigram_dice, value_similarity,
    TypedValue,
};
use proptest::prelude::*;

fn unit(x: f64) -> bool {
    (0.0..=1.0 + 1e-12).contains(&x)
}

proptest! {
    #[test]
    fn levenshtein_triangle_inequality(a in ".{0,12}", b in ".{0,12}", c in ".{0,12}") {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn levenshtein_symmetry_and_identity(a in ".{0,16}", b in ".{0,16}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
    }

    #[test]
    fn levenshtein_similarity_bounded(a in ".{0,16}", b in ".{0,16}") {
        prop_assert!(unit(levenshtein_similarity(&a, &b)));
    }

    #[test]
    fn jaro_bounded_symmetric(a in ".{0,16}", b in ".{0,16}") {
        let s1 = jaro(&a, &b);
        let s2 = jaro(&b, &a);
        prop_assert!(unit(s1));
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in ".{0,16}", b in ".{0,16}") {
        prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
        prop_assert!(unit(jaro_winkler(&a, &b)));
    }

    #[test]
    fn jaccard_bounded_symmetric(a in "[a-z ]{0,24}", b in "[a-z ]{0,24}") {
        let s1 = jaccard_tokens(&a, &b);
        let s2 = jaccard_tokens(&b, &a);
        prop_assert!(unit(s1));
        prop_assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn trigram_bounded_symmetric_identity(a in ".{0,16}", b in ".{0,16}") {
        let s = trigram_dice(&a, &b);
        prop_assert!(unit(s));
        prop_assert!((s - trigram_dice(&b, &a)).abs() < 1e-12);
        prop_assert!((trigram_dice(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn string_similarity_identity_after_normalization(a in ".{0,20}") {
        // Identical inputs always score 1.0.
        prop_assert!((string_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn string_similarity_bounded_symmetric(a in ".{0,20}", b in ".{0,20}") {
        let s1 = string_similarity(&a, &b);
        prop_assert!(unit(s1));
        prop_assert!((s1 - string_similarity(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn normalize_is_idempotent(a in ".{0,32}") {
        let once = normalize(&a);
        prop_assert_eq!(normalize(&once), once.clone());
    }

    #[test]
    fn relative_numeric_bounded_symmetric(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let s = relative_numeric(a, b);
        prop_assert!(unit(s));
        prop_assert!((s - relative_numeric(b, a)).abs() < 1e-9);
    }

    #[test]
    fn scaled_numeric_bounded(a in -1e6f64..1e6, b in -1e6f64..1e6, scale in 0.1f64..1e6) {
        prop_assert!(unit(scaled_numeric(a, b, scale)));
    }

    #[test]
    fn value_similarity_symmetric_over_ints(a in -1000i64..1000, b in -1000i64..1000) {
        let va = TypedValue::Integer(a);
        let vb = TypedValue::Integer(b);
        let s1 = value_similarity(&va, &vb);
        prop_assert!(unit(s1));
        prop_assert!((s1 - value_similarity(&vb, &va)).abs() < 1e-12);
    }

    #[test]
    fn value_similarity_text_symmetric(a in "[a-zA-Z0-9 ]{0,16}", b in "[a-zA-Z0-9 ]{0,16}") {
        let va = TypedValue::Text(a);
        let vb = TypedValue::Text(b);
        let s1 = value_similarity(&va, &vb);
        prop_assert!(unit(s1));
        prop_assert!((s1 - value_similarity(&vb, &va)).abs() < 1e-9);
    }
}
