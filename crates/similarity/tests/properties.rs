//! Property-based tests for the similarity measures: every measure must be
//! symmetric, bounded to [0, 1], and return 1.0 on identical inputs.

use alex_sim::{
    jaccard_ids, jaccard_tokens, jaro, jaro_winkler, levenshtein, levenshtein_dp,
    levenshtein_similarity, myers_levenshtein, normalize, prepared_string_similarity,
    relative_numeric, scaled_numeric, string_similarity, trigram_dice, value_similarity,
    MyersPattern, PreparedText, TokenInterner, TypedValue,
};
use proptest::prelude::*;

fn unit(x: f64) -> bool {
    (0.0..=1.0 + 1e-12).contains(&x)
}

proptest! {
    #[test]
    fn levenshtein_triangle_inequality(a in ".{0,12}", b in ".{0,12}", c in ".{0,12}") {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn levenshtein_symmetry_and_identity(a in ".{0,16}", b in ".{0,16}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
    }

    #[test]
    fn levenshtein_similarity_bounded(a in ".{0,16}", b in ".{0,16}") {
        prop_assert!(unit(levenshtein_similarity(&a, &b)));
    }

    #[test]
    fn jaro_bounded_symmetric(a in ".{0,16}", b in ".{0,16}") {
        let s1 = jaro(&a, &b);
        let s2 = jaro(&b, &a);
        prop_assert!(unit(s1));
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in ".{0,16}", b in ".{0,16}") {
        prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
        prop_assert!(unit(jaro_winkler(&a, &b)));
    }

    #[test]
    fn jaccard_bounded_symmetric(a in "[a-z ]{0,24}", b in "[a-z ]{0,24}") {
        let s1 = jaccard_tokens(&a, &b);
        let s2 = jaccard_tokens(&b, &a);
        prop_assert!(unit(s1));
        prop_assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn trigram_bounded_symmetric_identity(a in ".{0,16}", b in ".{0,16}") {
        let s = trigram_dice(&a, &b);
        prop_assert!(unit(s));
        prop_assert!((s - trigram_dice(&b, &a)).abs() < 1e-12);
        prop_assert!((trigram_dice(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn string_similarity_identity_after_normalization(a in ".{0,20}") {
        // Identical inputs always score 1.0.
        prop_assert!((string_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn string_similarity_bounded_symmetric(a in ".{0,20}", b in ".{0,20}") {
        let s1 = string_similarity(&a, &b);
        prop_assert!(unit(s1));
        prop_assert!((s1 - string_similarity(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn normalize_is_idempotent(a in ".{0,32}") {
        let once = normalize(&a);
        prop_assert_eq!(normalize(&once), once.clone());
    }

    #[test]
    fn relative_numeric_bounded_symmetric(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let s = relative_numeric(a, b);
        prop_assert!(unit(s));
        prop_assert!((s - relative_numeric(b, a)).abs() < 1e-9);
    }

    #[test]
    fn scaled_numeric_bounded(a in -1e6f64..1e6, b in -1e6f64..1e6, scale in 0.1f64..1e6) {
        prop_assert!(unit(scaled_numeric(a, b, scale)));
    }

    #[test]
    fn value_similarity_symmetric_over_ints(a in -1000i64..1000, b in -1000i64..1000) {
        let va = TypedValue::Integer(a);
        let vb = TypedValue::Integer(b);
        let s1 = value_similarity(&va, &vb);
        prop_assert!(unit(s1));
        prop_assert!((s1 - value_similarity(&vb, &va)).abs() < 1e-12);
    }

    #[test]
    fn value_similarity_text_symmetric(a in "[a-zA-Z0-9 ]{0,16}", b in "[a-zA-Z0-9 ]{0,16}") {
        let va = TypedValue::Text(a);
        let vb = TypedValue::Text(b);
        let s1 = value_similarity(&va, &vb);
        prop_assert!(unit(s1));
        prop_assert!((s1 - value_similarity(&vb, &va)).abs() < 1e-9);
    }

    /// The bit-parallel Myers kernel is exactly the classic DP on short
    /// strings (single u64 block) — including empty strings.
    #[test]
    fn myers_equals_dp_single_block(a in ".{0,24}", b in ".{0,24}") {
        prop_assert_eq!(myers_levenshtein(&a, &b), levenshtein_dp(&a, &b));
    }

    /// …and on long strings that cross the 64-character block boundary,
    /// exercising the multi-block carry chain.
    #[test]
    fn myers_equals_dp_multi_block(a in ".{55,90}", b in ".{55,90}") {
        prop_assert_eq!(myers_levenshtein(&a, &b), levenshtein_dp(&a, &b));
    }

    /// …and with combining diacritics appended/injected, so the kernel's
    /// char-level (not byte-level) handling matches the DP's.
    #[test]
    fn myers_equals_dp_combining_chars(a in ".{0,70}", b in ".{0,70}") {
        // U+0301 combining acute, U+0308 combining diaeresis — standalone
        // combining marks are valid chars the DP treats as units.
        let a = format!("e\u{0301}{a}\u{0308}");
        let b = format!("{b}\u{0301}");
        prop_assert_eq!(myers_levenshtein(&a, &b), levenshtein_dp(&a, &b));
    }

    /// A precompiled pattern answers exactly what the one-shot kernel and
    /// the DP answer, for every candidate — long or empty.
    #[test]
    fn myers_pattern_equals_dp(p in ".{0,80}", c in ".{0,80}") {
        let pat = MyersPattern::new(&p);
        prop_assert_eq!(pat.distance(&c), levenshtein_dp(&p, &c));
    }

    /// Interned sorted-id Jaccard is bitwise equal to the string-token
    /// `HashSet` formulation when both texts are prepared against one
    /// shared interner.
    #[test]
    fn interned_jaccard_equals_string_jaccard(a in ".{0,60}", b in ".{0,60}") {
        let mut interner = TokenInterner::new();
        let pa = PreparedText::prepare(&a, &mut interner);
        let pb = PreparedText::prepare(&b, &mut interner);
        let fast = jaccard_ids(pa.token_ids(), pb.token_ids());
        let slow = jaccard_tokens(&a, &b);
        prop_assert_eq!(fast.to_bits(), slow.to_bits());
    }

    /// The full prepared string kernel (batch Monge-Elkan + interned
    /// Jaccard) is bitwise equal to `string_similarity`, including on
    /// block-crossing and combining-mark inputs.
    #[test]
    fn prepared_equals_string_similarity(a in ".{0,70}", b in ".{0,70}") {
        let a = format!("{a}\u{0301}");
        let mut interner = TokenInterner::new();
        let pa = PreparedText::prepare(&a, &mut interner);
        let pb = PreparedText::prepare(&b, &mut interner);
        let fast = prepared_string_similarity(&pa, &pb);
        let slow = string_similarity(&a, &b);
        prop_assert_eq!(fast.to_bits(), slow.to_bits());
    }
}
