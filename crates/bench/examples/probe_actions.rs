//! Diagnostic: for every ground-truth state in the DBpedia-NYTimes
//! partition-0 space, what each exploration action would add and how much
//! of it is correct — the per-feature quality table that drives the
//! feature-geometry calibration documented in DESIGN.md.

use alex_core::{LinkSpace, SpaceConfig};
use alex_datagen::{generate_pair, DatasetKind, PairSpec};
use std::collections::{HashMap, HashSet};

fn main() {
    let spec = PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes);
    let pair = generate_pair(&spec.config(20160501));
    let cfg = SpaceConfig {
        partition: Some((0, 27)),
        ..SpaceConfig::default()
    };
    let space = LinkSpace::build(&pair.left, &pair.right, &cfg);
    let li = pair.left.entity_index();
    let ri = pair.right.entity_index();
    let truth: HashSet<(u32, u32)> = pair
        .ground_truth
        .iter()
        .filter_map(|&(l, r)| Some((li.id(l)?, ri.id(r)?)))
        .filter(|&(l, _)| (l as usize).is_multiple_of(27))
        .collect();
    println!("partition GT size: {}, space {}", truth.len(), space.len());
    // per-feature aggregated over GT states: avg explore size, avg correct frac
    let mut agg: HashMap<String, (usize, usize, usize)> = HashMap::new(); // (events, total_added, total_correct)
    for &(l, r) in &truth {
        let Some(id) = space.id_of(l, r) else {
            continue;
        };
        for &(f, score) in space.feature_set_of(id).iter() {
            let found = space.explore(f, score, 0.05);
            let correct = found
                .iter()
                .filter(|&&p| truth.contains(&space.pair(p)))
                .count();
            let fp = space.catalog().pair(f);
            let name = format!(
                "({}, {})",
                pair.left.resolve_sym(fp.left).rsplit('/').next().unwrap(),
                pair.right.resolve_sym(fp.right).rsplit('/').next().unwrap()
            );
            let e = agg.entry(name).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += found.len();
            e.2 += correct;
        }
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    rows.sort_by_key(|(_, (_, added, _))| std::cmp::Reverse(*added));
    for (name, (events, added, correct)) in rows {
        println!(
            "{name:<38} events={events:<4} avg_added={:<8.1} correct_frac={:.3}",
            added as f64 / events as f64,
            correct as f64 / added.max(1) as f64
        );
    }
}
