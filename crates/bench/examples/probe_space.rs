//! Diagnostic: per-feature posting counts and worst-case exploration
//! window sizes for the DBpedia-NYTimes partition-0 link space.
//! Useful when tuning the generator or the similarity calibration.

use alex_core::{LinkSpace, SpaceConfig};
use alex_datagen::{generate_pair, DatasetKind, PairSpec};

fn main() {
    let spec = PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes);
    let pair = generate_pair(&spec.config(20160501));
    println!(
        "left entities {}, right {}",
        pair.left_entities.len(),
        pair.right_entities.len()
    );
    let cfg = SpaceConfig {
        partition: Some((0, 27)),
        ..SpaceConfig::default()
    };
    let space = LinkSpace::build(&pair.left, &pair.right, &cfg);
    println!(
        "partition 0/27: blocked={} filtered={} features={}",
        space.blocked_pairs(),
        space.len(),
        space.catalog().len()
    );
    // Per-feature: total postings and biggest 0.1-window count
    let mut stats: Vec<(String, usize, usize)> = Vec::new();
    for (fid, fp) in space.catalog().iter() {
        let mut scores: Vec<f64> = Vec::new();
        for id in space.pair_ids() {
            if let Some(s) = alex_core::feature::feature_score(space.feature_set_of(id), fid) {
                scores.push(s);
            }
        }
        if scores.is_empty() {
            continue;
        }
        scores.sort_by(f64::total_cmp);
        // max count in any +-0.05 window centered at an observed score
        let mut maxw = 0;
        for (i, &c) in scores.iter().enumerate() {
            let hi = scores.partition_point(|&x| x <= c + 0.05);
            let lo = scores.partition_point(|&x| x < c - 0.05);
            maxw = maxw.max(hi - lo);
            if i > 2000 {
                break;
            }
        }
        let name = format!(
            "({}, {})",
            pair.left.resolve_sym(fp.left).rsplit('/').next().unwrap(),
            pair.right.resolve_sym(fp.right).rsplit('/').next().unwrap()
        );
        stats.push((name, scores.len(), maxw));
    }
    stats.sort_by_key(|s| std::cmp::Reverse(s.2));
    for (name, total, maxw) in stats.iter().take(25) {
        println!("{name:<40} postings={total:<8} max_window={maxw}");
    }
}
