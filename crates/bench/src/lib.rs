//! # alex-bench — experiment harness for the ALEX reproduction
//!
//! One module per table/figure of the paper's evaluation (see
//! `DESIGN.md` §2 for the index), a shared [`harness`], and the
//! `experiments` binary that regenerates everything.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
