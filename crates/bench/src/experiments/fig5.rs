//! Figure 5: filtering to reduce the search space (§6.1, §7.3).
//!
//! (a) total possible links between the first partition of DBpedia and the
//! whole NYTimes data set vs. the filtered search space (paper: filtering
//! removes ~95%);
//! (b) the filtered space vs. the ground-truth links in that partition
//! (paper: the ground truth is ~0.2% of the filtered space).

use std::fmt::Write as _;

use alex_core::{LinkSpace, SpaceConfig};
use alex_datagen::{generate_pair, DatasetKind, PairSpec};

use crate::harness::{BASE_SEED, PAPER_PARTITIONS};

/// Numbers behind Fig. 5.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Numbers {
    /// |partition entities| × |right entities|.
    pub total_possible: u64,
    /// Pairs in the θ-filtered space.
    pub filtered: usize,
    /// Ground-truth links belonging to the partition.
    pub ground_truth: usize,
}

/// Compute the Fig. 5 numbers for partition 0 of DBpedia–NYTimes.
pub fn numbers() -> Fig5Numbers {
    let spec = PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes);
    let pair = generate_pair(&spec.config(BASE_SEED));
    let cfg = SpaceConfig {
        partition: Some((0, PAPER_PARTITIONS)),
        ..SpaceConfig::default()
    };
    let space = LinkSpace::build(&pair.left, &pair.right, &cfg);
    let li = pair.left.entity_index();
    let gt_in_partition = pair
        .ground_truth
        .iter()
        .filter(|&&(l, _)| {
            li.id(l)
                .map(|id| (id as usize).is_multiple_of(PAPER_PARTITIONS))
                .unwrap_or(false)
        })
        .count();
    Fig5Numbers {
        total_possible: space.total_possible(),
        filtered: space.len(),
        ground_truth: gt_in_partition,
    }
}

/// Format the Fig. 5 report.
pub fn report() -> String {
    let n = numbers();
    let reduction = 100.0 * (1.0 - n.filtered as f64 / n.total_possible as f64);
    let gt_frac = 100.0 * n.ground_truth as f64 / n.filtered.max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 5: filtering the search space (DBpedia partition 0 vs NYTimes)"
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "(a) total possible links : {}", n.total_possible);
    let _ = writeln!(out, "    filtered search space: {}", n.filtered);
    let _ = writeln!(
        out,
        "    reduction            : {reduction:.1}%  (paper: ~95%)"
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "(b) filtered search space: {}", n.filtered);
    let _ = writeln!(out, "    ground-truth links   : {}", n.ground_truth);
    let _ = writeln!(
        out,
        "    ground truth fraction: {gt_frac:.2}%  (paper: ~0.2%)"
    );
    out
}
