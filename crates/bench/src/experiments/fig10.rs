//! Figure 10 (Appendix D): sensitivity to the step size.
//!
//! Step sizes 0.01 / 0.05 (default) / 0.1. Paper shapes: F-measure does not
//! vary much (slightly better with bigger steps); recall improves with a
//! wider search area; the percentage of negative feedback grows with the
//! step size (≈20% / <30% / ≈35% in episode 1); execution time grows
//! substantially at 0.1.

use std::fmt::Write as _;

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{text_table, ExperimentRun, Workload, BASE_SEED};

/// The step sizes compared.
pub const STEPS: [f64; 3] = [0.01, 0.05, 0.1];

/// Run the three arms.
pub fn runs() -> Vec<(f64, ExperimentRun)> {
    STEPS
        .iter()
        .map(|&step| {
            let run = Workload::batch(
                PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes),
                InitialLinksSpec::high_p_low_r(BASE_SEED + 15),
            )
            .with_step_size(step)
            .run();
            (step, run)
        })
        .collect()
}

/// Format the Fig. 10 report.
pub fn report(arms: &[(f64, ExperimentRun)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 10 (Appendix D): step-size sensitivity (DBpedia - NYTimes)"
    );
    let _ = writeln!(out);

    let headers: Vec<String> = std::iter::once("episode".to_string())
        .chain(arms.iter().map(|(s, _)| format!("F @ step {s}")))
        .chain(arms.iter().map(|(s, _)| format!("R @ step {s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let max_eps = arms
        .iter()
        .map(|(_, r)| r.run.episodes.len())
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for e in 0..max_eps {
        let mut row = vec![(e + 1).to_string()];
        for (_, r) in arms {
            row.push(
                r.f_series()
                    .get(e)
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        for (_, r) in arms {
            row.push(
                r.recall_series()
                    .get(e)
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    let _ = writeln!(
        out,
        "(a, b) F-measure and recall per episode\n{}",
        text_table(&header_refs, &rows)
    );

    let _ = writeln!(out, "(c) negative feedback per episode (first 10)");
    let mut rows = Vec::new();
    for e in 0..10 {
        let mut row = vec![(e + 1).to_string()];
        for (_, r) in arms {
            row.push(
                r.negative_pct_series()
                    .get(e)
                    .map(|v| format!("{v:.1}%"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    let neg_headers: Vec<String> = std::iter::once("episode".to_string())
        .chain(arms.iter().map(|(s, _)| format!("step {s}")))
        .collect();
    let neg_refs: Vec<&str> = neg_headers.iter().map(String::as_str).collect();
    let _ = writeln!(out, "{}", text_table(&neg_refs, &rows));

    let _ = writeln!(out, "execution time (slowest partition, total):");
    for (s, r) in arms {
        let _ = writeln!(
            out,
            "  step {s}: slowest partition {:.2?}, episodes {}",
            r.run.slowest_partition,
            r.run.episodes.len()
        );
    }
    out
}
