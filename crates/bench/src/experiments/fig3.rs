//! Figure 3: quality of links between OpenCyc and NYTimes / Drugbank /
//! Lexvo in batch mode.
//!
//! The paper reports that ALEX "performs as effectively in these experiments
//! as it did in Figure 2", so each sub-experiment uses the same starting
//! regime as its Fig. 2 counterpart with OpenCyc as the multi-domain side.
//! Ground truths: 2965 / 204 / 383 in the paper, scaled ~1/10.

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{ExperimentRun, Workload, BASE_SEED};

/// Run Fig. 3(a): OpenCyc–NYTimes.
pub fn fig3a() -> ExperimentRun {
    Workload::batch(
        PairSpec::of(DatasetKind::OpenCyc, DatasetKind::NYTimes),
        InitialLinksSpec::high_p_low_r(BASE_SEED + 4),
    )
    .run()
}

/// Run Fig. 3(b): OpenCyc–Drugbank.
pub fn fig3b() -> ExperimentRun {
    Workload::batch(
        PairSpec::of(DatasetKind::OpenCyc, DatasetKind::Drugbank),
        InitialLinksSpec::low_p_high_r(BASE_SEED + 5),
    )
    .run()
}

/// Run Fig. 3(c): OpenCyc–Lexvo.
pub fn fig3c() -> ExperimentRun {
    Workload::batch(
        PairSpec::of(DatasetKind::OpenCyc, DatasetKind::Lexvo),
        InitialLinksSpec::low_p_low_r(BASE_SEED + 6),
    )
    .run()
}

/// Format one Fig. 3 sub-experiment.
pub fn report(tag: &str, run: &ExperimentRun) -> String {
    format!(
        "## Figure 3({tag}): {}\n\n{}\n{}\n",
        run.label,
        run.quality_table(),
        run.convergence_summary()
    )
}
