//! Figure 8 (Appendix B): linking the two multi-domain data sets,
//! DBpedia–OpenCyc — the stress test.
//!
//! Paper: 41039 ground-truth links (scaled: 4100), PARIS provides 12227
//! correct starting candidates (≈30% recall), ALEX discovers 23476 more and
//! converges after 20 episodes (7 relaxed) with F > 0.9.

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{ExperimentRun, Workload, BASE_SEED};

/// Run the stress test.
pub fn run() -> ExperimentRun {
    Workload::batch(
        PairSpec::of(DatasetKind::DBpedia, DatasetKind::OpenCyc),
        InitialLinksSpec {
            precision: 0.90,
            recall: 12_227.0 / 41_039.0,
            seed: BASE_SEED + 13,
        },
    )
    // The stress pair has the largest junk tail (seven domains on both
    // sides); grant it the paper's full 100-episode budget.
    .with_max_episodes(100)
    .run()
}

/// Format the Fig. 8 report.
pub fn report(run: &ExperimentRun) -> String {
    format!(
        "## Figure 8 (Appendix B): {} — multi-domain stress test\n\n{}\n{}\n",
        run.label,
        run.quality_table(),
        run.convergence_summary()
    )
}
