//! §7.3 "Execution Time": batch mode runs minutes-scale per episode on the
//! paper's hardware (97 minutes total for DBpedia–NYTimes, ~7 min/episode,
//! 64 min average across partitions); the specific-domain setting runs in
//! seconds (~4 s total, ~1.3 s/episode). The absolute numbers differ on our
//! scaled data; the *gap* between batch and interactive mode is the shape
//! to reproduce.

use std::fmt::Write as _;

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{ExperimentRun, Workload, BASE_SEED};

/// Run the two timing workloads (batch fig2a-like, interactive fig4c-like).
pub fn runs() -> (ExperimentRun, ExperimentRun) {
    let batch = Workload::batch(
        PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes),
        InitialLinksSpec::high_p_low_r(BASE_SEED + 17),
    )
    .run();
    let interactive = Workload::specific_domain(
        PairSpec::of(DatasetKind::DBpediaNba, DatasetKind::NYTimes),
        InitialLinksSpec {
            precision: 0.92,
            recall: 0.54,
            seed: BASE_SEED + 18,
        },
    )
    .run();
    (batch, interactive)
}

/// Format the timing report.
pub fn report(batch: &ExperimentRun, interactive: &ExperimentRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Execution time (§7.3)");
    let _ = writeln!(out);
    let per_episode = |r: &ExperimentRun| {
        if r.run.episodes.is_empty() {
            std::time::Duration::ZERO
        } else {
            r.run
                .episodes
                .iter()
                .map(|e| e.duration)
                .sum::<std::time::Duration>()
                / r.run.episodes.len() as u32
        }
    };
    let _ = writeln!(
        out,
        "batch mode ({}, episode size 1000, 27 partitions):",
        batch.label
    );
    let _ = writeln!(
        out,
        "  total wall time          : {:.2?}",
        batch.run.total_duration
    );
    let _ = writeln!(
        out,
        "  slowest partition        : {:.2?}",
        batch.run.slowest_partition
    );
    let _ = writeln!(
        out,
        "  mean partition           : {:.2?}",
        batch.run.mean_partition
    );
    let _ = writeln!(
        out,
        "  mean episode (aggregate) : {:.2?}",
        per_episode(batch)
    );
    let _ = writeln!(
        out,
        "  episodes                 : {}",
        batch.run.episodes.len()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "specific domain ({}, episode size 10, 1 partition):",
        interactive.label
    );
    let _ = writeln!(
        out,
        "  total wall time          : {:.2?}",
        interactive.run.total_duration
    );
    let _ = writeln!(
        out,
        "  mean episode             : {:.2?}",
        per_episode(interactive)
    );
    let _ = writeln!(
        out,
        "  episodes                 : {}",
        interactive.run.episodes.len()
    );
    let _ = writeln!(out);
    let ratio = batch.run.total_duration.as_secs_f64()
        / interactive.run.total_duration.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "batch/interactive total-time ratio: {ratio:.0}x  (paper: 97 min vs 4 s ≈ 1455x on full-scale data)"
    );
    out
}
