//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Paper item |
//! |--------|-----------|
//! | [`table1`] | Table 1 — data-set inventory |
//! | [`fig2`] | Fig. 2 — batch quality, DBpedia vs NYTimes/Drugbank/Lexvo |
//! | [`fig3`] | Fig. 3 — batch quality, OpenCyc vs the same |
//! | [`fig4`] | Fig. 4 — specific domains (episode size 10) |
//! | [`fig5`] | Fig. 5 — search-space filtering |
//! | [`fig6`] | Fig. 6 — blacklist ablation |
//! | [`fig7`] | Fig. 7 — rollback ablation |
//! | [`fig8`] | Fig. 8 (App. B) — DBpedia–OpenCyc stress test |
//! | [`fig9`] | Fig. 9 (App. C) — 10% incorrect feedback |
//! | [`fig10`] | Fig. 10 (App. D) — step-size sensitivity |
//! | [`fig11`] | Fig. 11 (App. D) — episode-size sensitivity |
//! | [`timing`] | §7.3 — execution time |

pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod timing;
