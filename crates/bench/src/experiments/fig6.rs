//! Figure 6: effect of the blacklist (§6.3, §7.3).
//!
//! (a) F-measure with vs. without the blacklist — "a slight improvement";
//! (b) percentage of negative feedback per episode — "using a blacklist
//! significantly decreases the fraction of negative feedback".

use std::fmt::Write as _;

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{text_table, ExperimentRun, Workload, BASE_SEED};

/// Run both arms.
pub fn runs() -> (ExperimentRun, ExperimentRun) {
    let spec = || PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes);
    let regime = InitialLinksSpec::high_p_low_r(BASE_SEED + 11);
    let with = Workload::batch(spec(), regime).run();
    let without = Workload::batch(spec(), regime).with_blacklist(false).run();
    (with, without)
}

/// Format the Fig. 6 report.
pub fn report(with: &ExperimentRun, without: &ExperimentRun) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 6: effect of the blacklist (DBpedia - NYTimes)"
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "(a) F-measure per episode");
    let f_with = with.f_series();
    let f_without = without.f_series();
    let episodes = f_with.len().max(f_without.len());
    let mut rows = Vec::new();
    for e in 0..episodes {
        rows.push(vec![
            (e + 1).to_string(),
            f_with
                .get(e)
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into()),
            f_without
                .get(e)
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    let _ = writeln!(
        out,
        "{}",
        text_table(&["episode", "with blacklist", "without blacklist"], &rows)
    );

    let _ = writeln!(out, "(b) negative feedback per episode (first 10)");
    let n_with = with.negative_pct_series();
    let n_without = without.negative_pct_series();
    let mut rows = Vec::new();
    for e in 0..10.min(n_with.len()).min(n_without.len()) {
        rows.push(vec![
            (e + 1).to_string(),
            format!("{:.1}%", n_with[e]),
            format!("{:.1}%", n_without[e]),
        ]);
    }
    let _ = writeln!(
        out,
        "{}",
        text_table(&["episode", "with blacklist", "without blacklist"], &rows)
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let _ = writeln!(
        out,
        "mean negative feedback: with = {:.1}%, without = {:.1}%  (paper: blacklist significantly lower)",
        avg(&n_with),
        avg(&n_without)
    );
    let _ = writeln!(
        out,
        "final F: with = {:.3}, without = {:.3}",
        f_with.last().copied().unwrap_or(0.0),
        f_without.last().copied().unwrap_or(0.0)
    );
    out
}
