//! Figure 4: ALEX for specific domains — publications (Semantic Web
//! Dogfood) and NBA basketball players — with episode size 10 (§7.2.2).
//!
//! Starting recall per sub-experiment is derived from the paper's "new
//! links discovered" counts: 84 of 461 GT (a), 51 of 110 (b), 43 of 93 (c),
//! 19 of 35 (d). The paper converges in 2–4 episodes of 10 feedback items.

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{ExperimentRun, Workload, BASE_SEED};

fn regime(recall: f64, seed: u64) -> InitialLinksSpec {
    InitialLinksSpec {
        precision: 0.92,
        recall,
        seed,
    }
}

/// Fig. 4(a): DBpedia – Semantic Web Dogfood. Paper: 84 new / 461 GT.
pub fn fig4a() -> ExperimentRun {
    Workload::specific_domain(
        PairSpec::of(DatasetKind::DBpedia, DatasetKind::SwDogfood),
        regime(1.0 - 84.0 / 461.0, BASE_SEED + 7),
    )
    .run()
}

/// Fig. 4(b): OpenCyc – Semantic Web Dogfood. Paper: 51 new / 110 GT.
pub fn fig4b() -> ExperimentRun {
    Workload::specific_domain(
        PairSpec::of(DatasetKind::OpenCyc, DatasetKind::SwDogfood),
        regime(1.0 - 51.0 / 110.0, BASE_SEED + 8),
    )
    .run()
}

/// Fig. 4(c): DBpedia (NBA) – NYTimes. Paper: 43 new / 93 GT.
pub fn fig4c() -> ExperimentRun {
    Workload::specific_domain(
        PairSpec::of(DatasetKind::DBpediaNba, DatasetKind::NYTimes),
        regime(1.0 - 43.0 / 93.0, BASE_SEED + 9),
    )
    .run()
}

/// Fig. 4(d): OpenCyc (NBA) – NYTimes. Paper: 19 new / 35 GT.
pub fn fig4d() -> ExperimentRun {
    Workload::specific_domain(
        PairSpec::of(DatasetKind::OpenCycNba, DatasetKind::NYTimes),
        regime(1.0 - 19.0 / 35.0, BASE_SEED + 10),
    )
    .run()
}

/// Format one Fig. 4 sub-experiment.
pub fn report(tag: &str, run: &ExperimentRun) -> String {
    format!(
        "## Figure 4({tag}): {} (episode size 10)\n\n{}\n{}\n",
        run.label,
        run.quality_table(),
        run.convergence_summary()
    )
}
