//! Table 1: the data sets used in the experiments.
//!
//! The paper lists eight real data sets with their versions, fields, and
//! triple counts. We report the generated analogues' triple counts next to
//! the paper's, with the resulting scale factor (DESIGN.md §3 documents the
//! substitution).

use alex_datagen::{generate_pair, DatasetKind, PairSpec};

use crate::harness::{text_table, BASE_SEED};

/// Generate each data set's analogue (from the representative pair it
/// appears in) and tabulate sizes.
pub fn report() -> String {
    use DatasetKind as K;
    // Representative pair per kind: (kind, pair whose side realizes it,
    // whether the kind is the pair's left side).
    let reps: Vec<(K, PairSpec, bool)> = vec![
        (K::DBpedia, PairSpec::of(K::DBpedia, K::NYTimes), true),
        (K::OpenCyc, PairSpec::of(K::OpenCyc, K::NYTimes), true),
        (K::NYTimes, PairSpec::of(K::DBpedia, K::NYTimes), false),
        (K::Drugbank, PairSpec::of(K::DBpedia, K::Drugbank), false),
        (K::Lexvo, PairSpec::of(K::DBpedia, K::Lexvo), false),
        (K::SwDogfood, PairSpec::of(K::DBpedia, K::SwDogfood), false),
        (K::DBpediaNba, PairSpec::of(K::DBpediaNba, K::NYTimes), true),
        (K::OpenCycNba, PairSpec::of(K::OpenCycNba, K::NYTimes), true),
    ];
    let mut rows = Vec::new();
    for (kind, spec, is_left) in reps {
        let pair = generate_pair(&spec.config(BASE_SEED));
        let (triples, entities) = if is_left {
            (pair.left.len(), pair.left.entities().count())
        } else {
            (pair.right.len(), pair.right.entities().count())
        };
        let scale = kind.paper_triples() as f64 / triples.max(1) as f64;
        rows.push(vec![
            kind.paper_name().to_string(),
            kind.version().to_string(),
            kind.field().to_string(),
            format_count(kind.paper_triples()),
            triples.to_string(),
            entities.to_string(),
            format!("1/{:.0}", scale),
        ]);
    }
    format!(
        "## Table 1: Data sets used in the experiments\n\n{}\n",
        text_table(
            &[
                "Data Set",
                "Version",
                "Field",
                "Paper Triples",
                "Generated Triples",
                "Entities",
                "Scale",
            ],
            &rows,
        )
    )
}

fn format_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}
