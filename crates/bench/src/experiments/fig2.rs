//! Figure 2: quality of links between DBpedia and NYTimes / Drugbank /
//! Lexvo in batch mode (episode size 1000).
//!
//! Paper shapes to reproduce:
//! * (a) DBpedia–NYTimes — recall jumps from ~0.2 to ~0.9 after the first
//!   episode; precision dips in some episodes but recovers; relaxed
//!   convergence around episode 7, strict around 14.
//! * (b) DBpedia–Drugbank — starts below 0.3 precision with >0.95 recall;
//!   ALEX lifts precision within a few episodes, ending near F = 0.99.
//! * (c) DBpedia–Lexvo — both start low; recall is fixed by episode ~2,
//!   precision keeps improving until convergence around episode 5.

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{ExperimentRun, Workload, BASE_SEED};

/// Run Fig. 2(a): DBpedia–NYTimes.
pub fn fig2a() -> ExperimentRun {
    Workload::batch(
        PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes),
        InitialLinksSpec::high_p_low_r(BASE_SEED + 1),
    )
    .run()
}

/// Run Fig. 2(b): DBpedia–Drugbank.
pub fn fig2b() -> ExperimentRun {
    Workload::batch(
        PairSpec::of(DatasetKind::DBpedia, DatasetKind::Drugbank),
        InitialLinksSpec::low_p_high_r(BASE_SEED + 2),
    )
    .run()
}

/// Run Fig. 2(c): DBpedia–Lexvo.
pub fn fig2c() -> ExperimentRun {
    Workload::batch(
        PairSpec::of(DatasetKind::DBpedia, DatasetKind::Lexvo),
        InitialLinksSpec::low_p_low_r(BASE_SEED + 3),
    )
    .run()
}

/// Format one Fig. 2 sub-experiment.
pub fn report(tag: &str, run: &ExperimentRun) -> String {
    format!(
        "## Figure 2({tag}): {}\n\n{}\n{}\n",
        run.label,
        run.quality_table(),
        run.convergence_summary()
    )
}
