//! Figure 7: effect of rollback (§6.3, §7.3).
//!
//! (a) overall quality *without* rollback: precision collapses after the
//! first episode and, within the 100-episode cap, never truly recovers;
//! (b) a partition that manages to converge without rollback (slowly) —
//! compared with its rollback-enabled run, which converges much faster;
//! (c) a partition that cannot recover without rollback.

use std::fmt::Write as _;

use alex_core::PartitionTrace;
use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{text_table, ExperimentRun, Workload, BASE_SEED};

/// Run both arms: without rollback (100-episode cap) and with (default).
pub fn runs() -> (ExperimentRun, ExperimentRun) {
    let spec = || PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes);
    let regime = InitialLinksSpec::high_p_low_r(BASE_SEED + 12);
    let without = Workload::batch(spec(), regime)
        .with_rollback(false)
        .with_max_episodes(100)
        .run();
    let with = Workload::batch(spec(), regime).with_max_episodes(100).run();
    (without, with)
}

/// Episode at which a partition's local change fraction first stays below
/// 5%, if any — its (relaxed) convergence point.
fn partition_convergence(trace: &PartitionTrace) -> Option<usize> {
    trace
        .episodes
        .iter()
        .find(|e| e.change_frac < 0.05)
        .map(|e| e.episode)
}

/// Format the Fig. 7 report.
pub fn report(without: &ExperimentRun, with: &ExperimentRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 7: effect of rollback (DBpedia - NYTimes)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(a) overall quality WITHOUT rollback (cap 100 episodes)"
    );
    let _ = writeln!(out, "{}", without.quality_table());
    let _ = writeln!(out, "{}", without.convergence_summary());
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "    with rollback (same workload): final F = {:.3} after {} episodes",
        with.run.final_quality().f_measure,
        with.run.episodes.len()
    );
    let _ = writeln!(out);

    // Per-partition views: a partition that converges without rollback and
    // one that does not (the paper's (b) and (c)).
    let converging: Vec<(usize, usize)> = without
        .run
        .per_partition
        .iter()
        .filter_map(|t| partition_convergence(t).map(|e| (t.partition, e)))
        .collect();
    let stuck: Vec<usize> = without
        .run
        .per_partition
        .iter()
        .filter(|t| partition_convergence(t).is_none() && !t.episodes.is_empty())
        .map(|t| t.partition)
        .collect();

    let _ = writeln!(
        out,
        "(b) partitions that converge without rollback: {} of {}",
        converging.len(),
        without.run.per_partition.len()
    );
    if let Some(&(pidx, when)) = converging.iter().max_by_key(|&&(_, e)| e) {
        let with_when = with
            .run
            .per_partition
            .iter()
            .find(|t| t.partition == pidx)
            .and_then(partition_convergence);
        let _ = writeln!(
            out,
            "    example: partition {pidx} converges at episode {when} without rollback, \
             at episode {} with rollback",
            with_when
                .map(|e| e.to_string())
                .unwrap_or_else(|| ">cap".into())
        );
        let trace = without
            .run
            .per_partition
            .iter()
            .find(|t| t.partition == pidx)
            .expect("partition exists");
        let mut rows = Vec::new();
        for e in trace.episodes.iter().take(45) {
            rows.push(vec![
                e.episode.to_string(),
                format!("{:.3}", e.quality.precision),
                format!("{:.3}", e.quality.recall),
                format!("{:.3}", e.quality.f_measure),
            ]);
        }
        let _ = writeln!(
            out,
            "{}",
            text_table(&["episode", "precision", "recall", "f-measure"], &rows)
        );
    }

    let _ = writeln!(
        out,
        "(c) partitions that do NOT recover without rollback: {} of {}",
        stuck.len(),
        without.run.per_partition.len()
    );
    if let Some(&pidx) = stuck.first() {
        let trace = without
            .run
            .per_partition
            .iter()
            .find(|t| t.partition == pidx)
            .expect("partition exists");
        let last = trace.episodes.last().expect("non-empty");
        let _ = writeln!(
            out,
            "    example: partition {pidx} ends at episode {} with precision {:.3} \
             (change still {:.0}% per episode)",
            last.episode,
            last.quality.precision,
            last.change_frac * 100.0
        );
    }
    out
}
