//! Figure 11 (Appendix D): sensitivity to the episode size.
//!
//! Episode sizes 500 / 1000 (default) / 1500. Paper shapes: the F-measure
//! curves are close (1000 and 1500 slightly above 500); larger episodes
//! converge in fewer episodes (26 / 14 / 13 in the paper).

use std::fmt::Write as _;

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{text_table, ExperimentRun, Workload, BASE_SEED};

/// The episode sizes compared.
pub const SIZES: [usize; 3] = [500, 1000, 1500];

/// Run the three arms.
pub fn runs() -> Vec<(usize, ExperimentRun)> {
    SIZES
        .iter()
        .map(|&size| {
            let run = Workload::batch(
                PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes),
                InitialLinksSpec::high_p_low_r(BASE_SEED + 16),
            )
            .with_episode_size(size)
            .with_max_episodes(60)
            .run();
            (size, run)
        })
        .collect()
}

/// Format the Fig. 11 report.
pub fn report(arms: &[(usize, ExperimentRun)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 11 (Appendix D): episode-size sensitivity (DBpedia - NYTimes)"
    );
    let _ = writeln!(out);
    let headers: Vec<String> = std::iter::once("episode".to_string())
        .chain(arms.iter().map(|(s, _)| format!("F @ size {s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let max_eps = arms
        .iter()
        .map(|(_, r)| r.run.episodes.len())
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for e in 0..max_eps {
        let mut row = vec![(e + 1).to_string()];
        for (_, r) in arms {
            row.push(
                r.f_series()
                    .get(e)
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    let _ = writeln!(out, "{}", text_table(&header_refs, &rows));
    for (s, r) in arms {
        let f = r.f_series();
        let tail = &f[f.len().saturating_sub(5)..];
        let tail_mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        let _ = writeln!(
            out,
            "episode size {s}: relaxed convergence at {}, ran {} episodes,              final F {:.3}, mean F over last 5 episodes {:.3}",
            r.run
                .relaxed_converged_at
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".into()),
            r.run.episodes.len(),
            r.run.final_quality().f_measure,
            tail_mean
        );
    }
    let _ = writeln!(
        out,
        "paper shape: larger episodes converge in fewer episodes (26 / 14 / 13)"
    );
    out
}
