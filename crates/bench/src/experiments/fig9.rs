//! Figure 9 (Appendix C): effect of incorrect feedback.
//!
//! 10% of feedback items are flipped. Paper: recall is robust; precision is
//! slightly worse (wrongly-approved links keep receiving positive feedback
//! and stay in the candidate set); overall degradation is small.

use std::fmt::Write as _;

use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};

use crate::harness::{text_table, ExperimentRun, Workload, BASE_SEED};

/// Run the arms: all-correct feedback, 10% incorrect at the paper's episode
/// size, and 10% incorrect at a sampling-pressure-matched episode size.
///
/// The third arm exists because the scale substitution changes judgment
/// pressure: the paper's links are each judged ~1.4 times over a whole run
/// (episode 1000 over ~13k candidates x 18 episodes), while our scaled data
/// reaches ~30 judgments per link — so rare double-mistakes accumulate and
/// recall erodes more than the paper's Fig. 9(b) shows. Scaling the episode
/// to 100 items restores the paper's per-link pressure and its
/// recall-robustness shape.
pub fn runs() -> (ExperimentRun, ExperimentRun, ExperimentRun, ExperimentRun) {
    let spec = || PairSpec::of(DatasetKind::DBpedia, DatasetKind::NYTimes);
    let regime = InitialLinksSpec::high_p_low_r(BASE_SEED + 14);
    let correct = Workload::batch(spec(), regime).run();
    let noisy = Workload::batch(spec(), regime).with_error_rate(0.10).run();
    let matched_clean = Workload::batch(spec(), regime).with_episode_size(100).run();
    let matched_noisy = Workload::batch(spec(), regime)
        .with_error_rate(0.10)
        .with_episode_size(100)
        .run();
    (correct, noisy, matched_clean, matched_noisy)
}

/// Format the Fig. 9 report.
pub fn report(
    correct: &ExperimentRun,
    noisy: &ExperimentRun,
    matched_clean: &ExperimentRun,
    matched_noisy: &ExperimentRun,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 9 (Appendix C): correct feedback vs 10% incorrect feedback (DBpedia - NYTimes)"
    );
    let _ = writeln!(out);
    let (pc, rc, fc) = (
        correct.precision_series(),
        correct.recall_series(),
        correct.f_series(),
    );
    let (pn, rn, fn_) = (
        noisy.precision_series(),
        noisy.recall_series(),
        noisy.f_series(),
    );
    let episodes = pc.len().max(pn.len());
    let cell = |v: &Vec<f64>, e: usize| {
        v.get(e)
            .map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "-".into())
    };
    let mut rows = Vec::new();
    for e in 0..episodes {
        rows.push(vec![
            (e + 1).to_string(),
            cell(&pc, e),
            cell(&pn, e),
            cell(&rc, e),
            cell(&rn, e),
            cell(&fc, e),
            cell(&fn_, e),
        ]);
    }
    let _ = writeln!(
        out,
        "{}",
        text_table(
            &[
                "episode",
                "P correct",
                "P 10% err",
                "R correct",
                "R 10% err",
                "F correct",
                "F 10% err"
            ],
            &rows
        )
    );
    let final_q = |r: &ExperimentRun| r.run.final_quality();
    let qc = final_q(correct);
    let qn = final_q(noisy);
    let _ = writeln!(
        out,
        "final: correct (P {:.3}, R {:.3}, F {:.3}) vs 10% incorrect (P {:.3}, R {:.3}, F {:.3})",
        qc.precision, qc.recall, qc.f_measure, qn.precision, qn.recall, qn.f_measure
    );
    let qmc = final_q(matched_clean);
    let qmn = final_q(matched_noisy);
    let _ = writeln!(
        out,
        "sampling-pressure-matched arms (episode size 100 — paper-like per-link judgment \
         pressure, equal budgets): clean (P {:.3}, R {:.3}) vs 10% error (P {:.3}, R {:.3}); \
         recall gap {:+.3}",
        qmc.precision,
        qmc.recall,
        qmn.precision,
        qmn.recall,
        qmn.recall - qmc.recall
    );
    let _ = writeln!(
        out,
        "paper shape: recall barely changes; precision slightly lower with incorrect feedback"
    );
    out
}
