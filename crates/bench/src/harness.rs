//! Shared experiment harness: workload construction, run wrappers, and
//! plain-text table/series formatting.

use std::collections::HashSet;
use std::fmt::Write as _;

use alex_core::{
    run_partitioned, AlexConfig, PartitionedConfig, PartitionedRun, Quality, SpaceConfig,
};
use alex_datagen::{
    generate_pair, sample_initial_links, score_links, GeneratedPair, InitialLinksSpec, PairSpec,
};
use alex_rdf::Term;
use alex_telemetry::{emit, span, Event};

/// The paper runs 27 partitions; we default to the same number (threads are
/// cheap — partitions are compute-bound and independent).
pub const PAPER_PARTITIONS: usize = 27;

/// Deterministic base seed for all experiments.
pub const BASE_SEED: u64 = 20160501;

/// A fully specified experiment workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The data-set pair.
    pub spec: PairSpec,
    /// Initial candidate regime (precision/recall of the starting links).
    pub regime: InitialLinksSpec,
    /// ALEX configuration.
    pub alex: AlexConfig,
    /// Number of partitions.
    pub partitions: usize,
    /// Oracle error rate (Appendix C).
    pub error_rate: f64,
}

impl Workload {
    /// A batch-mode workload with the paper's defaults. Batch figures are
    /// capped at 40 episodes (the paper's batch runs converge by ~25; our
    /// synthetic feature geometry is noisier, see EXPERIMENTS.md).
    pub fn batch(spec: PairSpec, regime: InitialLinksSpec) -> Workload {
        Workload {
            spec,
            regime,
            alex: AlexConfig {
                seed: BASE_SEED,
                max_episodes: 40,
                ..AlexConfig::default()
            },
            partitions: PAPER_PARTITIONS,
            error_rate: 0.0,
        }
    }

    /// Override the step size (Fig. 10).
    pub fn with_step_size(mut self, step: f64) -> Self {
        self.alex.step_size = step;
        self
    }

    /// Override the episode size (Fig. 11).
    pub fn with_episode_size(mut self, size: usize) -> Self {
        self.alex.episode_size = size;
        self
    }

    /// Override the episode cap.
    pub fn with_max_episodes(mut self, n: usize) -> Self {
        self.alex.max_episodes = n;
        self
    }

    /// Toggle the blacklist optimization (Fig. 6).
    pub fn with_blacklist(mut self, enabled: bool) -> Self {
        self.alex.use_blacklist = enabled;
        self
    }

    /// Toggle the rollback optimization (Fig. 7).
    pub fn with_rollback(mut self, enabled: bool) -> Self {
        self.alex.use_rollback = enabled;
        self
    }

    /// Set the oracle error rate (Fig. 9 uses 0.10).
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Override the partition count.
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// A specific-domain workload: episode size 10, single partition
    /// (§7.2.2 — small data, interactive latency).
    pub fn specific_domain(spec: PairSpec, regime: InitialLinksSpec) -> Workload {
        Workload {
            spec,
            regime,
            alex: AlexConfig {
                episode_size: 10,
                seed: BASE_SEED,
                ..AlexConfig::default()
            },
            partitions: 1,
            error_rate: 0.0,
        }
    }

    /// Execute: generate the pair, sample the initial links, run ALEX.
    pub fn run(&self) -> ExperimentRun {
        let workload_span = span("workload");
        let (pair, initial) = {
            let _s = span("generate");
            let pair = generate_pair(&self.spec.config(BASE_SEED));
            let initial = sample_initial_links(&pair, self.regime);
            (pair, initial)
        };
        let (p0, r0, f0) = score_links(&pair, &initial);
        let cfg = PartitionedConfig {
            partitions: self.partitions,
            alex: self.alex.clone(),
            space: SpaceConfig {
                theta: self.alex.theta,
                ..SpaceConfig::default()
            },
            feedback_error_rate: self.error_rate,
        };
        let run = run_partitioned(&pair.left, &pair.right, &initial, &pair.ground_truth, &cfg);
        emit!(Event::BenchSnapshot {
            label: self.spec.label(),
            episodes: run.episodes.len() as u64,
            f_measure: run
                .episodes
                .last()
                .map(|e| e.quality.f_measure)
                .unwrap_or(run.initial_quality.f_measure),
            duration_us: workload_span.elapsed().as_micros() as u64,
        });
        ExperimentRun {
            label: self.spec.label(),
            sampled_initial_quality: Quality {
                precision: p0,
                recall: r0,
                f_measure: f0,
            },
            initial_links: initial.len(),
            ground_truth: pair.gt_len(),
            run,
            pair,
        }
    }
}

/// The result of one experiment workload.
pub struct ExperimentRun {
    /// Pair label, e.g. "DBpedia - NYTimes".
    pub label: String,
    /// Quality of the sampled initial links (term-level, before id mapping).
    pub sampled_initial_quality: Quality,
    /// Number of initial candidate links.
    pub initial_links: usize,
    /// Ground-truth size.
    pub ground_truth: usize,
    /// The partitioned run.
    pub run: PartitionedRun,
    /// The generated pair (for follow-up analyses).
    pub pair: GeneratedPair,
}

impl ExperimentRun {
    /// Number of ground-truth links discovered that were not in the initial
    /// set (the paper reports "new links discovered" per experiment).
    pub fn new_correct_links(&self) -> usize {
        let initial_correct =
            (self.sampled_initial_quality.recall * self.ground_truth as f64).round() as usize;
        let final_correct = self
            .run
            .episodes
            .last()
            .map(|e| e.correct)
            .unwrap_or(initial_correct);
        final_correct.saturating_sub(initial_correct)
    }

    /// Render the per-episode quality series as a text table, episode 0
    /// being the initial candidate set.
    pub fn quality_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "episode  precision  recall  f-measure  candidates  change"
        );
        let q0 = self.run.initial_quality;
        let _ = writeln!(
            out,
            "{:>7}  {:>9.3}  {:>6.3}  {:>9.3}  {:>10}  {:>6}",
            0, q0.precision, q0.recall, q0.f_measure, self.initial_links, "-"
        );
        for ep in &self.run.episodes {
            let _ = writeln!(
                out,
                "{:>7}  {:>9.3}  {:>6.3}  {:>9.3}  {:>10}  {:>5.1}%",
                ep.episode,
                ep.quality.precision,
                ep.quality.recall,
                ep.quality.f_measure,
                ep.candidates,
                ep.change_frac * 100.0
            );
        }
        out
    }

    /// Per-episode F-measure series (episode 1..).
    pub fn f_series(&self) -> Vec<f64> {
        self.run
            .episodes
            .iter()
            .map(|e| e.quality.f_measure)
            .collect()
    }

    /// Per-episode recall series.
    pub fn recall_series(&self) -> Vec<f64> {
        self.run.episodes.iter().map(|e| e.quality.recall).collect()
    }

    /// Per-episode precision series.
    pub fn precision_series(&self) -> Vec<f64> {
        self.run
            .episodes
            .iter()
            .map(|e| e.quality.precision)
            .collect()
    }

    /// Per-episode negative-feedback percentage series.
    pub fn negative_pct_series(&self) -> Vec<f64> {
        self.run
            .episodes
            .iter()
            .map(|e| e.negative_feedback_frac * 100.0)
            .collect()
    }

    /// One-line convergence summary.
    pub fn convergence_summary(&self) -> String {
        format!(
            "converged: {:?} after {} episodes (relaxed <5% at episode {}); \
             new correct links discovered: {}; ground truth: {}",
            self.run.stop,
            self.run.episodes.len(),
            self.run
                .relaxed_converged_at
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".to_string()),
            self.new_correct_links(),
            self.ground_truth
        )
    }
}

/// Map term-level ground truth into id pairs for a space built over the same
/// datasets (convenience for tests and analyses).
pub fn truth_id_set(
    pair: &GeneratedPair,
    left_index: &alex_rdf::EntityIndex,
    right_index: &alex_rdf::EntityIndex,
) -> HashSet<(u32, u32)> {
    pair.ground_truth
        .iter()
        .filter_map(|&(l, r): &(Term, Term)| Some((left_index.id(l)?, right_index.id(r)?)))
        .collect()
}

/// Render a simple aligned text table.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_alignment() {
        let t = text_table(
            &["name", "n"],
            &[
                vec!["alpha".to_string(), "1".to_string()],
                vec!["b".to_string(), "100".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }
}
