//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments all        # everything, in paper order
//! experiments fig2a      # one item: table1, fig2a..fig2c, fig3, fig4,
//!                        # fig5, fig6, fig7, fig8, fig9, fig10, fig11, timing
//! ```

use alex_bench::experiments::*;

fn run_one(which: &str) -> Option<String> {
    let out = match which {
        "table1" => table1::report(),
        "fig2a" => fig2::report("a", &fig2::fig2a()),
        "fig2b" => fig2::report("b", &fig2::fig2b()),
        "fig2c" => fig2::report("c", &fig2::fig2c()),
        "fig2" => [
            fig2::report("a", &fig2::fig2a()),
            fig2::report("b", &fig2::fig2b()),
            fig2::report("c", &fig2::fig2c()),
        ]
        .join("\n"),
        "fig3a" => fig3::report("a", &fig3::fig3a()),
        "fig3b" => fig3::report("b", &fig3::fig3b()),
        "fig3c" => fig3::report("c", &fig3::fig3c()),
        "fig3" => [
            fig3::report("a", &fig3::fig3a()),
            fig3::report("b", &fig3::fig3b()),
            fig3::report("c", &fig3::fig3c()),
        ]
        .join("\n"),
        "fig4a" => fig4::report("a", &fig4::fig4a()),
        "fig4b" => fig4::report("b", &fig4::fig4b()),
        "fig4c" => fig4::report("c", &fig4::fig4c()),
        "fig4d" => fig4::report("d", &fig4::fig4d()),
        "fig4" => [
            fig4::report("a", &fig4::fig4a()),
            fig4::report("b", &fig4::fig4b()),
            fig4::report("c", &fig4::fig4c()),
            fig4::report("d", &fig4::fig4d()),
        ]
        .join("\n"),
        "fig5" => fig5::report(),
        "fig6" => {
            let (with, without) = fig6::runs();
            fig6::report(&with, &without)
        }
        "fig7" => {
            let (without, with) = fig7::runs();
            fig7::report(&without, &with)
        }
        "fig8" => fig8::report(&fig8::run()),
        "fig9" => {
            let (correct, noisy, matched_clean, matched_noisy) = fig9::runs();
            fig9::report(&correct, &noisy, &matched_clean, &matched_noisy)
        }
        "fig10" => fig10::report(&fig10::runs()),
        "fig11" => fig11::report(&fig11::runs()),
        "timing" => {
            let (batch, interactive) = timing::runs();
            timing::report(&batch, &interactive)
        }
        _ => return None,
    };
    Some(out)
}

const ALL: &[&str] = &[
    "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "timing",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    if which == "all" {
        println!("# ALEX reproduction — full experiment suite\n");
        for item in ALL {
            eprintln!("[experiments] running {item} ...");
            let started = std::time::Instant::now();
            let out = run_one(item).expect("known experiment");
            println!("{out}");
            eprintln!("[experiments] {item} done in {:.1?}", started.elapsed());
        }
        return;
    }
    match run_one(which) {
        Some(out) => print!("{out}"),
        None => {
            eprintln!(
                "unknown experiment '{which}'; available: all, {}, fig2a..c, fig3a..c, fig4a..d",
                ALL.join(", ")
            );
            std::process::exit(2);
        }
    }
}
