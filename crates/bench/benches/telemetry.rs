//! Microbenches for the telemetry primitives and their cost relative to the
//! episode loop they instrument.
//!
//! The claim (see DESIGN.md) is that with no sink attached the
//! instrumentation is negligible: a disabled `emit!` is one relaxed atomic
//! load plus a branch, and a counter increment one relaxed `fetch_add` —
//! both nanoseconds against an episode that takes milliseconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use alex_bench::harness::{Workload, BASE_SEED};
use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};
use alex_telemetry::{counter, emit, Event};

fn bench_disabled_emit(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");
    group.bench_function("emit_no_sink", |b| {
        b.iter(|| {
            emit!(Event::LinkAdded {
                left: black_box(1),
                right: black_box(2)
            });
        })
    });
    group.bench_function("counter_inc", |b| {
        b.iter(|| counter!("bench_counter_total").inc())
    });
    group.finish();
}

fn bench_episode_loop(c: &mut Criterion) {
    let workload = Workload::specific_domain(
        PairSpec::of(DatasetKind::DBpediaNba, DatasetKind::NYTimes),
        InitialLinksSpec::high_p_low_r(BASE_SEED),
    )
    .with_max_episodes(3);
    c.bench_function("episode_loop_no_sink", |b| {
        b.iter(|| black_box(workload.run().run.episodes.len()))
    });
}

criterion_group!(benches, bench_disabled_emit, bench_episode_loop);
criterion_main!(benches);
