//! Durable-run overhead: what journaling every episode and snapshotting
//! periodically costs relative to a plain in-memory run.
//!
//! The fixture uses paper-scale episodes (`episode_size` 3000 on a
//! ~1500-entity space) because the durability cost per episode is a
//! near-constant couple of fsyncs — it only makes sense priced against a
//! realistic episode, not a micro one. Episode compute is measured
//! *marginally* (runs of 2 and 10 episodes, differenced) so fixed per-run
//! work cancels; the store side is priced directly by replaying the exact
//! operations the durable driver performs — an episode-record append and a
//! periodic snapshot write — with byte-identical payloads.
//!
//! In measure mode (`cargo bench`) this target also writes
//! `BENCH_store.json` at the repo root with the per-episode costs and the
//! relative overhead, and asserts the overhead stays under the 5% budget
//! so regressions show up in review diffs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use alex_core::persist::{
    encode_episode, encode_snapshot, EpisodeRecord, EpisodeStats, RunSnapshot,
};
use alex_core::{
    driver, Agent, AlexConfig, FeedbackSource, LinkSpace, OracleFeedback, SpaceConfig,
};
use alex_datagen::{generate_pair, Domain, Flavor, GeneratedPair, PairConfig, SideConfig};
use alex_store::{DirectStore, Store};

const SHORT_EPISODES: usize = 2;
const LONG_EPISODES: usize = 10;
const EPISODE_SIZE: usize = 3000;
const SNAPSHOT_EVERY: u64 = 8;
const OVERHEAD_BUDGET: f64 = 0.05;

fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 600,
        left_only: 700,
        right_only: 200,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Organization],
        left_extra_domains: Domain::ALL.to_vec(),
    })
}

struct Fixture {
    space: LinkSpace,
    truth: HashSet<(u32, u32)>,
    initial: Vec<(u32, u32)>,
}

fn fixture() -> Fixture {
    let pair = pair();
    let space = LinkSpace::build(&pair.left, &pair.right, &SpaceConfig::default());
    let truth: HashSet<(u32, u32)> = pair
        .ground_truth
        .iter()
        .filter_map(|&(l, r)| Some((space.left_index().id(l)?, space.right_index().id(r)?)))
        .collect();
    let mut initial: Vec<(u32, u32)> = truth.iter().copied().collect();
    initial.sort_unstable();
    initial.truncate(initial.len() * 2 / 5);
    Fixture {
        space,
        truth,
        initial,
    }
}

fn cfg(max_episodes: usize) -> AlexConfig {
    AlexConfig {
        episode_size: EPISODE_SIZE,
        max_episodes,
        ..AlexConfig::default()
    }
}

/// Plain in-memory run; returns the finished agent and its report.
fn run_plain(fx: &Fixture, max_episodes: usize) -> (Agent, driver::RunReport) {
    let mut agent = Agent::new(fx.space.clone(), &fx.initial, cfg(max_episodes));
    // Noisy oracle so the run does not converge before max_episodes and the
    // two drivers execute the same number of journal-worthy episodes.
    let mut oracle = OracleFeedback::with_error_rate(fx.truth.clone(), 0.1, 9);
    let report = driver::run(&mut agent, &mut oracle, &fx.truth);
    (agent, report)
}

/// Durable run against a fresh state directory; returns episodes executed.
fn run_durable(fx: &Fixture, max_episodes: usize, dir: &PathBuf) -> usize {
    let _ = std::fs::remove_dir_all(dir);
    let mut agent = Agent::new(fx.space.clone(), &fx.initial, cfg(max_episodes));
    let mut oracle = OracleFeedback::with_error_rate(fx.truth.clone(), 0.1, 9);
    let (mut store, recovery) = DirectStore::open(dir).expect("open state dir");
    let durability = driver::Durability::new(&mut store, recovery).snapshot_every(SNAPSHOT_EVERY);
    let report =
        driver::run_durable(&mut agent, &mut oracle, &fx.truth, durability).expect("durable run");
    report.episodes.len()
}

fn bench_store_overhead(c: &mut Criterion) {
    let fx = fixture();
    let dir = std::env::temp_dir().join(format!("alex-bench-store-{}", std::process::id()));

    let mut g = c.benchmark_group("store_overhead");
    g.sample_size(10);
    g.bench_function("plain_run_10_episodes", |b| {
        b.iter(|| black_box(run_plain(&fx, LONG_EPISODES).1.episodes.len()))
    });
    g.bench_function("durable_run_10_episodes", |b| {
        b.iter(|| black_box(run_durable(&fx, LONG_EPISODES, &dir)))
    });
    g.finish();

    write_bench_snapshot(&fx, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mean microseconds per iteration of `f` over a small fixed batch.
fn mean_us(iters: u32, mut f: impl FnMut()) -> f64 {
    // One unmeasured warm-up iteration.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_micros() as f64 / iters as f64
}

/// Byte-realistic payloads: the journal record and run snapshot the durable
/// driver would commit after the final episode of `report`.
fn representative_payloads(
    fx: &Fixture,
    agent: &Agent,
    report: &driver::RunReport,
) -> (Vec<u8>, Vec<u8>) {
    let oracle = OracleFeedback::with_error_rate(fx.truth.clone(), 0.1, 9);
    let source_state = oracle
        .durable_state()
        .expect("oracle feedback has durable state");
    let mut pairs: Vec<(u32, u32)> = fx.truth.iter().copied().collect();
    pairs.sort_unstable();
    let items: Vec<(u32, u32, bool, u32)> = (0..EPISODE_SIZE)
        .map(|i| {
            let (l, r) = pairs[i % pairs.len()];
            (l, r, i % 3 != 0, (i % 7) as u32)
        })
        .collect();
    let record = encode_episode(&EpisodeRecord {
        items,
        source_state: source_state.clone(),
        degraded: false,
    });
    let snapshot = encode_snapshot(&RunSnapshot {
        base_fingerprint: 0,
        last_episode: report.episodes.len() as u64,
        completed: false,
        relaxed_converged_at: None,
        episodes: report
            .episodes
            .iter()
            .map(|e| EpisodeStats {
                episode: e.episode as u64,
                precision: e.quality.precision,
                recall: e.quality.recall,
                f_measure: e.quality.f_measure,
                candidates: e.candidates as u64,
                correct: e.correct as u64,
                added: e.added as u64,
                removed: e.removed as u64,
                negative_feedback_frac: e.negative_feedback_frac,
                rollbacks: e.rollbacks as u64,
                change_frac: e.change_frac,
                degraded: e.degraded,
            })
            .collect(),
        agent: agent.capture_state(),
        source_state,
    });
    (record, snapshot)
}

fn write_bench_snapshot(fx: &Fixture, dir: &PathBuf) {
    // Snapshots are wall-clock measurements; only meaningful (and only
    // worth the time) under `cargo bench`, not the smoke pass.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    // Episode compute, marginally: fixed per-run work cancels in the
    // long-minus-short difference.
    let span = (LONG_EPISODES - SHORT_EPISODES) as f64;
    let plain_short = mean_us(3, || {
        black_box(run_plain(fx, SHORT_EPISODES));
    });
    let plain_long = mean_us(3, || {
        let (_, report) = run_plain(fx, LONG_EPISODES);
        assert_eq!(
            black_box(report.episodes.len()),
            LONG_EPISODES,
            "run must not converge early"
        );
    });
    let plain_per_episode = (plain_long - plain_short) / span;

    // Store cost, directly: the driver's per-episode commit is one journal
    // append, plus one snapshot write every SNAPSHOT_EVERY episodes.
    let (record, snapshot) = {
        let (agent, report) = run_plain(fx, LONG_EPISODES);
        representative_payloads(fx, &agent, &report)
    };
    let _ = std::fs::remove_dir_all(dir);
    let (mut store, _recovery) = DirectStore::open(dir).expect("open state dir");
    let mut seq = 0u64;
    let journal_us = mean_us(50, || {
        seq += 1;
        store.append_episode(seq, &record).expect("journal append");
    });
    let snapshot_us = mean_us(10, || {
        seq += 1;
        store
            .write_snapshot(seq, &snapshot)
            .expect("write snapshot");
    });
    let store_per_episode = journal_us + snapshot_us / SNAPSHOT_EVERY as f64;
    let overhead = store_per_episode / plain_per_episode;
    assert!(
        overhead < OVERHEAD_BUDGET,
        "journal+snapshot cost must stay under {:.0}% of episode time: \
         episode {plain_per_episode:.1}us, append {journal_us:.1}us, \
         snapshot {snapshot_us:.1}us/{SNAPSHOT_EVERY} ({:.2}%)",
        OVERHEAD_BUDGET * 100.0,
        overhead * 100.0
    );
    let json = format!(
        "{{\n  \"bench\": \"store_overhead\",\n  \"episode_size\": {EPISODE_SIZE},\n  \
         \"snapshot_every\": {SNAPSHOT_EVERY},\n  \
         \"episode_us\": {plain_per_episode:.1},\n  \
         \"journal_append_us\": {journal_us:.1},\n  \
         \"snapshot_write_us\": {snapshot_us:.1},\n  \
         \"store_us_per_episode\": {store_per_episode:.1},\n  \
         \"overhead_frac\": {overhead:.4},\n  \"budget_frac\": {OVERHEAD_BUDGET}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_store_overhead);
criterion_main!(benches);
