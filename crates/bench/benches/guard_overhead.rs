//! Supervisor overhead: what wrapping the episode loop in `alex-guard`'s
//! budget supervision costs when every budget is disabled (unlimited).
//!
//! The supervision hot path with budgets off is a handful of comparisons
//! and one `Instant` read per episode boundary, so the honest price is the
//! *marginal* per-episode difference between a plain and a supervised run
//! (runs of 2 and 10 episodes, differenced, so fixed per-run work cancels
//! — same method as `store_overhead`). The acceptance budget is 2%; in
//! practice the measured difference is noise around zero, so negatives are
//! clamped before pricing.
//!
//! In measure mode (`cargo bench`) this target also writes
//! `BENCH_guard.json` at the repo root and asserts the overhead budget so
//! regressions show up in review diffs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;

use alex_core::{driver, Agent, AlexConfig, LinkSpace, OracleFeedback, SpaceConfig};
use alex_datagen::{generate_pair, Domain, Flavor, GeneratedPair, PairConfig, SideConfig};
use alex_guard::{BreachPolicy, Budget, Supervisor};

const SHORT_EPISODES: usize = 2;
const LONG_EPISODES: usize = 10;
const EPISODE_SIZE: usize = 3000;
const OVERHEAD_BUDGET: f64 = 0.02;

fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 600,
        left_only: 700,
        right_only: 200,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Organization],
        left_extra_domains: Domain::ALL.to_vec(),
    })
}

struct Fixture {
    space: LinkSpace,
    truth: HashSet<(u32, u32)>,
    initial: Vec<(u32, u32)>,
}

fn fixture() -> Fixture {
    let pair = pair();
    let space = LinkSpace::build(&pair.left, &pair.right, &SpaceConfig::default());
    let truth: HashSet<(u32, u32)> = pair
        .ground_truth
        .iter()
        .filter_map(|&(l, r)| Some((space.left_index().id(l)?, space.right_index().id(r)?)))
        .collect();
    let mut initial: Vec<(u32, u32)> = truth.iter().copied().collect();
    initial.sort_unstable();
    initial.truncate(initial.len() * 2 / 5);
    Fixture {
        space,
        truth,
        initial,
    }
}

fn cfg(max_episodes: usize) -> AlexConfig {
    AlexConfig {
        episode_size: EPISODE_SIZE,
        max_episodes,
        ..AlexConfig::default()
    }
}

/// Plain run; noisy oracle so the run executes exactly `max_episodes`.
fn run_plain(fx: &Fixture, max_episodes: usize) -> usize {
    let mut agent = Agent::new(fx.space.clone(), &fx.initial, cfg(max_episodes));
    let mut oracle = OracleFeedback::with_error_rate(fx.truth.clone(), 0.1, 9);
    driver::run(&mut agent, &mut oracle, &fx.truth)
        .episodes
        .len()
}

/// The same run under an unlimited-budget supervisor — the disabled-mode
/// configuration whose overhead this bench prices.
fn run_supervised(fx: &Fixture, max_episodes: usize) -> usize {
    let mut agent = Agent::new(fx.space.clone(), &fx.initial, cfg(max_episodes));
    let mut oracle = OracleFeedback::with_error_rate(fx.truth.clone(), 0.1, 9);
    let mut sup = Supervisor::new(Budget::unlimited(), BreachPolicy::Stop);
    let report = driver::run_supervised(&mut agent, &mut oracle, &fx.truth, &mut sup);
    assert_eq!(sup.breaches(), 0, "unlimited budget must never breach");
    report.episodes.len()
}

fn bench_guard_overhead(c: &mut Criterion) {
    let fx = fixture();

    let mut g = c.benchmark_group("guard_overhead");
    g.sample_size(10);
    g.bench_function("plain_run_10_episodes", |b| {
        b.iter(|| black_box(run_plain(&fx, LONG_EPISODES)))
    });
    g.bench_function("supervised_run_10_episodes", |b| {
        b.iter(|| black_box(run_supervised(&fx, LONG_EPISODES)))
    });
    g.finish();

    write_bench_snapshot(&fx);
}

/// Mean microseconds per iteration of `f` over a small fixed batch.
fn mean_us(iters: u32, mut f: impl FnMut()) -> f64 {
    // One unmeasured warm-up iteration.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_micros() as f64 / iters as f64
}

fn write_bench_snapshot(fx: &Fixture) {
    // Wall-clock measurement; only meaningful under `cargo bench`.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let span = (LONG_EPISODES - SHORT_EPISODES) as f64;
    let plain_short = mean_us(3, || {
        black_box(run_plain(fx, SHORT_EPISODES));
    });
    let plain_long = mean_us(3, || {
        assert_eq!(
            black_box(run_plain(fx, LONG_EPISODES)),
            LONG_EPISODES,
            "run must not converge early"
        );
    });
    let sup_short = mean_us(3, || {
        black_box(run_supervised(fx, SHORT_EPISODES));
    });
    let sup_long = mean_us(3, || {
        black_box(run_supervised(fx, LONG_EPISODES));
    });
    let plain_per_episode = (plain_long - plain_short) / span;
    let sup_per_episode = (sup_long - sup_short) / span;
    // The marginal difference is dominated by run-to-run noise; clamp so a
    // lucky supervised run does not report a negative cost.
    let overhead = ((sup_per_episode - plain_per_episode) / plain_per_episode).max(0.0);
    assert!(
        overhead < OVERHEAD_BUDGET,
        "disabled supervision must stay under {:.0}% of episode time: \
         plain {plain_per_episode:.1}us, supervised {sup_per_episode:.1}us ({:.2}%)",
        OVERHEAD_BUDGET * 100.0,
        overhead * 100.0
    );
    let json = format!(
        "{{\n  \"bench\": \"guard_overhead\",\n  \"episode_size\": {EPISODE_SIZE},\n  \
         \"plain_episode_us\": {plain_per_episode:.1},\n  \
         \"supervised_episode_us\": {sup_per_episode:.1},\n  \
         \"overhead_frac\": {overhead:.4},\n  \"budget_frac\": {OVERHEAD_BUDGET}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_guard.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_guard_overhead);
criterion_main!(benches);
