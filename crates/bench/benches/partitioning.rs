//! Equal-size partitioning (§6.2): end-to-end run cost at 1 / 2 / 4
//! partitions. On a multi-core host the wall-clock per episode drops with
//! partition count; the slowest-partition metric mirrors the paper's
//! execution-time accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use alex_core::{run_partitioned, AlexConfig, PartitionedConfig};
use alex_datagen::{
    generate_pair, sample_initial_links, Domain, Flavor, GeneratedPair, InitialLinksSpec,
    PairConfig, SideConfig,
};

fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 120,
        left_only: 200,
        right_only: 60,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Place],
        left_extra_domains: Domain::ALL.to_vec(),
    })
}

fn bench_partitioning(c: &mut Criterion) {
    let pair = pair();
    let initial = sample_initial_links(&pair, InitialLinksSpec::high_p_low_r(5));
    let mut g = c.benchmark_group("partitioning");
    g.sample_size(10);
    for partitions in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("run_5_episodes", partitions),
            &partitions,
            |b, &partitions| {
                let cfg = PartitionedConfig {
                    partitions,
                    alex: AlexConfig {
                        episode_size: 100,
                        max_episodes: 5,
                        ..AlexConfig::default()
                    },
                    ..PartitionedConfig::default()
                };
                b.iter(|| {
                    black_box(run_partitioned(
                        &pair.left,
                        &pair.right,
                        &initial,
                        &pair.ground_truth,
                        &cfg,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
