//! SPARQL engine: parsing, single-source BGP evaluation, and federated
//! joins through sameAs links with provenance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alex_rdf::Dataset;
use alex_sparql::{parse, DatasetEndpoint, FederatedEngine, SameAsLinks};

fn engines() -> FederatedEngine {
    let mut left = Dataset::new("L");
    let mut right = Dataset::new("R");
    let mut links = Vec::new();
    for i in 0..500 {
        let li = format!("http://l/e{i}");
        let ri = format!("http://r/e{i}");
        left.add_str(&li, "http://l/label", &format!("Entity Number {i}"));
        left.add_str(&li, "http://l/group", &format!("g{}", i % 10));
        right.add_iri(&format!("http://r/doc{i}"), "http://r/about", &ri);
        right.add_str(
            &format!("http://r/doc{i}"),
            "http://r/title",
            &format!("Doc {i}"),
        );
        if i % 2 == 0 {
            links.push((li, ri));
        }
    }
    let mut engine = FederatedEngine::new();
    engine.add_endpoint(Box::new(DatasetEndpoint::new(left)));
    engine.add_endpoint(Box::new(DatasetEndpoint::new(right)));
    engine.set_links(SameAsLinks::from_pairs(links));
    engine
}

fn bench_sparql(c: &mut Criterion) {
    let engine = engines();
    let mut g = c.benchmark_group("sparql");
    g.bench_function("parse", |b| {
        b.iter(|| {
            black_box(
                parse(
                    "PREFIX l: <http://l/> SELECT DISTINCT ?s ?o WHERE { \
                     ?s l:label ?o . ?s l:group \"g3\" \
                     FILTER(CONTAINS(STR(?o), \"42\") || ?o >= \"Entity Number 9\") } LIMIT 50",
                )
                .unwrap(),
            )
        })
    });
    let single =
        parse("SELECT ?s ?o WHERE { ?s <http://l/group> \"g3\" . ?s <http://l/label> ?o }")
            .unwrap();
    g.bench_function("bgp_single_source", |b| {
        b.iter(|| black_box(engine.execute(&single).unwrap()))
    });
    let federated = parse(
        "SELECT ?doc ?o WHERE { \
           ?s <http://l/group> \"g4\" . ?s <http://l/label> ?o . \
           ?doc <http://r/about> ?s }",
    )
    .unwrap();
    g.bench_function("federated_sameas_join", |b| {
        b.iter(|| black_box(engine.execute(&federated).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_sparql);
criterion_main!(benches);
