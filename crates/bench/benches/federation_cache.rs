//! Answer-cache economics: what a cache hit costs relative to a cold
//! dispatch, and what the cache buys the episode loop.
//!
//! The fixture injects a deterministic per-call latency into both
//! endpoints (FaultProfile, no failures) so dispatch has a realistic
//! network-shaped price; without it an in-process endpoint answers in
//! microseconds and the comparison is meaningless. The episode loop is
//! modeled the way `QueryFeedback` drives the engine: the same workload
//! re-executed pass after pass, links unchanged between passes — exactly
//! the regime the cache is built for (only link *mutations* invalidate).
//!
//! In measure mode (`cargo bench`) this target writes `BENCH_cache.json`
//! at the repo root with the hit-path and cold-dispatch per-query costs
//! and the episode-loop speedup, and asserts the speedup stays ≥ 2x so a
//! caching regression shows up in review diffs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use alex_datagen::{generate_pair, Domain, Flavor, GeneratedPair, PairConfig, SideConfig};
use alex_sparql::{parse, DatasetEndpoint, FaultProfile, FaultyEndpoint, FederatedEngine, Query};

/// Injected per-call endpoint latency. Small enough to keep the bench
/// quick, large enough to dominate in-process evaluation noise.
const LATENCY: Duration = Duration::from_micros(200);
const WORKLOAD: usize = 20;
const EPISODE_PASSES: usize = 5;
const CACHE_CAPACITY: usize = 4096;
const SPEEDUP_FLOOR: f64 = 2.0;

fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.05,
            drop_prob: 0.1,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.05,
            drop_prob: 0.1,
            sparse: false,
        },
        shared: 120,
        left_only: 80,
        right_only: 40,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Organization],
        left_extra_domains: vec![Domain::Place],
    })
}

struct Fixture {
    pair: GeneratedPair,
    queries: Vec<Query>,
}

fn fixture() -> Fixture {
    let pair = pair();
    let queries: Vec<Query> = alex_datagen::federated_queries(&pair, WORKLOAD, 3)
        .iter()
        .map(|q| parse(&q.sparql).expect("generated SPARQL parses"))
        .collect();
    assert!(!queries.is_empty(), "workload must not be empty");
    Fixture { pair, queries }
}

/// Engine over latency-injected endpoints, bridged by the ground-truth
/// links, with or without the answer cache.
fn engine(fx: &Fixture, cache: bool) -> FederatedEngine {
    let profile = |seed: u64| FaultProfile {
        seed,
        latency: LATENCY,
        ..FaultProfile::none()
    };
    let mut engine = FederatedEngine::new();
    engine.add_endpoint(Box::new(FaultyEndpoint::new(
        DatasetEndpoint::new(fx.pair.left.clone()),
        profile(1),
    )));
    engine.add_endpoint(Box::new(FaultyEndpoint::new(
        DatasetEndpoint::new(fx.pair.right.clone()),
        profile(2),
    )));
    engine.set_links(alex_sparql::SameAsLinks::from_pairs(
        fx.pair
            .ground_truth
            .iter()
            .map(|&(l, r)| (fx.pair.left.resolve(l), fx.pair.right.resolve(r))),
    ));
    if cache {
        engine.enable_cache(CACHE_CAPACITY);
    }
    engine
}

/// One workload pass; returns total answers (a cheap correctness anchor).
fn run_pass(engine: &FederatedEngine, queries: &[Query]) -> usize {
    queries
        .iter()
        .map(|q| engine.execute_full(q).expect("evaluates").answers.len())
        .sum()
}

fn bench_federation_cache(c: &mut Criterion) {
    let fx = fixture();

    let mut g = c.benchmark_group("federation_cache");
    g.sample_size(10);
    g.bench_function("cold_dispatch_pass", |b| {
        // A fresh uncached engine per measurement would re-pay setup; the
        // uncached engine re-dispatches every pass anyway, so reuse it.
        let cold = engine(&fx, false);
        b.iter(|| black_box(run_pass(&cold, &fx.queries)))
    });
    g.bench_function("warm_hit_pass", |b| {
        let warm = engine(&fx, true);
        let expected = run_pass(&warm, &fx.queries); // populate the cache
        b.iter(|| {
            let answers = run_pass(&warm, &fx.queries);
            assert_eq!(answers, expected, "hits must reproduce cold answers");
            black_box(answers)
        })
    });
    g.finish();

    write_bench_snapshot(&fx);
}

/// Mean microseconds per iteration of `f` over a small fixed batch.
fn mean_us(iters: u32, mut f: impl FnMut()) -> f64 {
    // One unmeasured warm-up iteration.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_micros() as f64 / iters as f64
}

fn write_bench_snapshot(fx: &Fixture) {
    // Wall-clock measurements; only meaningful (and only worth the sleeps)
    // under `cargo bench`, not the smoke pass.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }

    // Per-query costs: cold dispatch vs warm hit path.
    let cold = engine(fx, false);
    let cold_pass_us = mean_us(3, || {
        black_box(run_pass(&cold, &fx.queries));
    });
    let warm = engine(fx, true);
    let expected = run_pass(&warm, &fx.queries);
    let warm_pass_us = mean_us(3, || {
        assert_eq!(black_box(run_pass(&warm, &fx.queries)), expected);
    });
    let cold_query_us = cold_pass_us / fx.queries.len() as f64;
    let hit_query_us = warm_pass_us / fx.queries.len() as f64;

    // Episode loop: EPISODE_PASSES workload passes, links unchanged. The
    // cached side pays its misses on pass one and hits thereafter — that
    // first pass is *included*, so the speedup is end-to-end honest.
    let uncached = engine(fx, false);
    let loop_cold_us = mean_us(2, || {
        for _ in 0..EPISODE_PASSES {
            black_box(run_pass(&uncached, &fx.queries));
        }
    });
    let loop_warm_us = mean_us(2, || {
        let cached = engine(fx, true);
        for _ in 0..EPISODE_PASSES {
            assert_eq!(black_box(run_pass(&cached, &fx.queries)), expected);
        }
    });
    let speedup = loop_cold_us / loop_warm_us;
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "warm cache must speed the episode loop by at least {SPEEDUP_FLOOR}x: \
         cold {loop_cold_us:.0}us vs warm {loop_warm_us:.0}us ({speedup:.2}x)"
    );

    let stats = warm.cache_stats().expect("cache enabled");
    let json = format!(
        "{{\n  \"bench\": \"federation_cache\",\n  \
         \"workload_queries\": {},\n  \
         \"endpoint_latency_us\": {},\n  \
         \"episode_passes\": {EPISODE_PASSES},\n  \
         \"cold_query_us\": {cold_query_us:.1},\n  \
         \"hit_query_us\": {hit_query_us:.1},\n  \
         \"episode_loop_cold_us\": {loop_cold_us:.0},\n  \
         \"episode_loop_warm_us\": {loop_warm_us:.0},\n  \
         \"episode_loop_speedup\": {speedup:.2},\n  \
         \"speedup_floor\": {SPEEDUP_FLOOR},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {}\n}}\n",
        fx.queries.len(),
        LATENCY.as_micros(),
        stats.hits,
        stats.misses,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_federation_cache);
criterion_main!(benches);
