//! Resilience overhead: the same federated join evaluated on a bare
//! engine, through a no-op fault injector (measures the decorator +
//! breaker/deadline bookkeeping alone), and under live transient faults
//! with retries masking them (the full recovery path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use alex_rdf::Dataset;
use alex_sparql::{
    parse, BreakerConfig, DatasetEndpoint, FaultProfile, FaultyEndpoint, FederatedEngine, Query,
    ResilienceConfig, RetryPolicy, SameAsLinks,
};

fn datasets() -> (Dataset, Dataset, Vec<(String, String)>) {
    let mut left = Dataset::new("L");
    let mut right = Dataset::new("R");
    let mut links = Vec::new();
    for i in 0..500 {
        let li = format!("http://l/e{i}");
        let ri = format!("http://r/e{i}");
        left.add_str(&li, "http://l/label", &format!("Entity Number {i}"));
        left.add_str(&li, "http://l/group", &format!("g{}", i % 10));
        right.add_iri(&format!("http://r/doc{i}"), "http://r/about", &ri);
        right.add_str(
            &format!("http://r/doc{i}"),
            "http://r/title",
            &format!("Doc {i}"),
        );
        if i % 2 == 0 {
            links.push((li, ri));
        }
    }
    (left, right, links)
}

fn engine(profile: Option<FaultProfile>, resilience: Option<ResilienceConfig>) -> FederatedEngine {
    let (left, right, links) = datasets();
    let mut engine = FederatedEngine::new();
    match profile {
        Some(p) => {
            engine.add_endpoint(Box::new(FaultyEndpoint::new(
                DatasetEndpoint::new(left),
                p.clone(),
            )));
            engine.add_endpoint(Box::new(FaultyEndpoint::new(
                DatasetEndpoint::new(right),
                p,
            )));
        }
        None => {
            engine.add_endpoint(Box::new(DatasetEndpoint::new(left)));
            engine.add_endpoint(Box::new(DatasetEndpoint::new(right)));
        }
    }
    engine.set_links(SameAsLinks::from_pairs(links));
    if let Some(r) = resilience {
        engine.set_resilience(r);
    }
    engine
}

fn federated_join() -> Query {
    parse(
        "SELECT ?doc ?o WHERE { \
           ?s <http://l/group> \"g4\" . ?s <http://l/label> ?o . \
           ?doc <http://r/about> ?s }",
    )
    .expect("query parses")
}

fn bench_federation_faults(c: &mut Criterion) {
    let query = federated_join();
    let mut g = c.benchmark_group("federation_faults");

    // Baseline: no decorator, default resilience (no budget, no faults).
    let bare = engine(None, None);
    g.bench_function("bare", |b| {
        b.iter(|| black_box(bare.execute(&query).expect("evaluates")))
    });

    // No-op profile: decorator in place, zero rates — measures the pure
    // overhead of the fault-injection and resilience plumbing.
    let noop = engine(Some(FaultProfile::none()), None);
    g.bench_function("noop_profile", |b| {
        b.iter(|| black_box(noop.execute(&query).expect("evaluates")))
    });

    // Deadline bookkeeping on every call, still fault-free.
    let budget = ResilienceConfig {
        endpoint_budget: Some(Duration::from_secs(5)),
        ..ResilienceConfig::default()
    };
    let with_budget = engine(Some(FaultProfile::none()), Some(budget));
    g.bench_function("noop_profile_with_budget", |b| {
        b.iter(|| black_box(with_budget.execute(&query).expect("evaluates")))
    });

    // Live 20% transients masked by retries: the full recovery path.
    let resilience = ResilienceConfig {
        retry: RetryPolicy {
            max_retries: 4,
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(80),
            ..RetryPolicy::default()
        },
        breaker: BreakerConfig {
            failure_threshold: 50,
            ..BreakerConfig::default()
        },
        ..ResilienceConfig::default()
    };
    let faulty = engine(
        Some(FaultProfile {
            seed: 0xFA17,
            transient_rate: 0.2,
            ..FaultProfile::none()
        }),
        Some(resilience),
    );
    g.bench_function("transient_20pct_retried", |b| {
        b.iter(|| black_box(faulty.execute(&query).expect("retries mask the faults")))
    });

    g.finish();
}

criterion_group!(benches, bench_federation_faults);
criterion_main!(benches);
