//! Kernel throughput and the alignment performance gate.
//!
//! Microbenches the bit-parallel Myers Levenshtein against the classic DP,
//! interned Jaccard against the `HashSet` formulation, and the batch
//! scorer against the naive per-call loop. In measure mode (`cargo bench`)
//! it also writes `BENCH_kernels.json` at the repo root and **enforces**
//! the performance gates:
//!
//! * single-thread `paris_align` must be ≥ 3x faster than the PR-7
//!   baseline recorded on this same datagen profile;
//! * at 4 threads, `paris_align` and `space_build` must be ≥ 3x over one
//!   thread — asserted only when `host_cores ≥ 4`, otherwise recorded as
//!   `scaling_gate: "skipped"` with `host_cores` (a 1-core sweep proves
//!   nothing and must say so);
//! * the `paris_functionality` pool's mean chunk time must exceed
//!   dispatch overhead (the chunk-size-floor regression guard).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use alex_core::{LinkSpace, SpaceConfig};
use alex_datagen::{generate_pair, Domain, Flavor, GeneratedPair, PairConfig, SideConfig};
use alex_linking::Paris;
use alex_sim::{
    jaccard_tokens, levenshtein_dp, myers_levenshtein, string_similarity, BatchScorer,
    PreparedCorpus, PreparedText, TokenInterner,
};

/// `paris_align_us` at one thread from PR-7's `BENCH_parallel.json`,
/// measured on this exact datagen profile (seed 42, 120 shared / 200
/// left-only / 60 right-only, Person+Drug, 0.25 confusable).
const PR7_PARIS_ALIGN_US: f64 = 368_054.0;

/// Estimated per-chunk dispatch overhead (spawn amortization, cursor and
/// slot traffic, reassembly) — the floor a chunk's mean work must clear
/// for parallelism to pay.
const DISPATCH_OVERHEAD_US: f64 = 50.0;

/// The datagen profile shared with `space_build.rs` — the gate compares
/// against PR-7 numbers recorded on this exact profile.
fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 120,
        left_only: 200,
        right_only: 60,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Drug],
        left_extra_domains: Domain::ALL.to_vec(),
    })
}

const STRING_PAIRS: &[(&str, &str)] = &[
    ("LeBron James", "James, LeBron"),
    ("Quantum Meridian Systems", "Quantum Meridian Sys."),
    (
        "International Conference on Linked Data 2013",
        "Workshop on Linked Data 2013",
    ),
    // Cross the u64 block boundary: > 64 chars on both sides.
    (
        "A very long entity label that easily exceeds the sixty-four character single block limit",
        "Another very long entity label that also exceeds the sixty-four character block limit",
    ),
    ("Silverford", "North Silverford"),
];

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.bench_function("levenshtein_myers", |b| {
        b.iter(|| {
            for (x, y) in STRING_PAIRS {
                black_box(myers_levenshtein(black_box(x), black_box(y)));
            }
        })
    });
    g.bench_function("levenshtein_dp", |b| {
        b.iter(|| {
            for (x, y) in STRING_PAIRS {
                black_box(levenshtein_dp(black_box(x), black_box(y)));
            }
        })
    });
    g.bench_function("jaccard_hashset", |b| {
        b.iter(|| {
            for (x, y) in STRING_PAIRS {
                black_box(jaccard_tokens(black_box(x), black_box(y)));
            }
        })
    });
    g.bench_function("jaccard_interned", |b| {
        let mut interner = TokenInterner::new();
        let prepared: Vec<(PreparedText, PreparedText)> = STRING_PAIRS
            .iter()
            .map(|(x, y)| {
                (
                    PreparedText::prepare(x, &mut interner),
                    PreparedText::prepare(y, &mut interner),
                )
            })
            .collect();
        b.iter(|| {
            for (px, py) in &prepared {
                black_box(alex_sim::jaccard_ids(
                    black_box(px.token_ids()),
                    black_box(py.token_ids()),
                ));
            }
        })
    });
    g.bench_function("batch_scorer_100", |b| {
        let mut interner = TokenInterner::new();
        let mut corpus = PreparedCorpus::new();
        for i in 0..100 {
            corpus.push(&format!("Candidate Entity Number {i}"), &mut interner);
        }
        let scorer = BatchScorer::new("Candidate Entity Number 42", &mut interner);
        b.iter(|| {
            let mut out = Vec::with_capacity(100);
            scorer.score_batch(black_box(&corpus), &mut out);
            black_box(out);
        })
    });
    g.finish();
    write_snapshot();
}

/// Mean microseconds per iteration of `f` over a small fixed batch, with
/// one unmeasured warm-up iteration.
fn mean_us(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_micros() as f64 / iters as f64
}

/// Mean nanoseconds per call of `f` over `iters` calls.
fn mean_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn write_snapshot() {
    // Wall-clock gates: only meaningful (and only worth the time) under
    // `cargo bench`, not the smoke pass.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let pair = pair();
    let cfg = SpaceConfig::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Kernel micro-ratios on the mixed pair set (one long pair crosses the
    // u64 block boundary, so the multi-block path is in the mix).
    let myers_ns = mean_ns(2000, || {
        for (x, y) in STRING_PAIRS {
            black_box(myers_levenshtein(black_box(x), black_box(y)));
        }
    });
    let dp_ns = mean_ns(2000, || {
        for (x, y) in STRING_PAIRS {
            black_box(levenshtein_dp(black_box(x), black_box(y)));
        }
    });
    let mut interner = TokenInterner::new();
    let prepared: Vec<(PreparedText, PreparedText)> = STRING_PAIRS
        .iter()
        .map(|(x, y)| {
            (
                PreparedText::prepare(x, &mut interner),
                PreparedText::prepare(y, &mut interner),
            )
        })
        .collect();
    let jaccard_hash_ns = mean_ns(2000, || {
        for (x, y) in STRING_PAIRS {
            black_box(jaccard_tokens(black_box(x), black_box(y)));
        }
    });
    let jaccard_interned_ns = mean_ns(2000, || {
        for (px, py) in &prepared {
            black_box(alex_sim::jaccard_ids(px.token_ids(), py.token_ids()));
        }
    });
    let mut corpus = PreparedCorpus::new();
    let candidates: Vec<String> = (0..100)
        .map(|i| format!("Candidate Entity Number {i}"))
        .collect();
    for cand in &candidates {
        corpus.push(cand, &mut interner);
    }
    let probe = "Candidate Entity Number 42";
    let scorer = BatchScorer::new(probe, &mut interner);
    let batch_ns = mean_ns(200, || {
        let mut out = Vec::with_capacity(100);
        scorer.score_batch(&corpus, &mut out);
        black_box(out);
    });
    let naive_ns = mean_ns(200, || {
        for cand in &candidates {
            black_box(string_similarity(probe, cand));
        }
    });

    // Single-thread alignment gate vs the PR-7 recorded baseline.
    alex_parallel::set_threads(1);
    let paris_1t_us = mean_us(3, || {
        black_box(Paris::new().link(&pair.left, &pair.right));
    });
    let space_1t_us = mean_us(5, || {
        black_box(LinkSpace::build(&pair.left, &pair.right, &cfg));
    });
    alex_parallel::set_threads(0);
    let st_speedup = PR7_PARIS_ALIGN_US / paris_1t_us;

    // 4-thread scaling gate — only meaningful with ≥ 4 real cores.
    let (scaling_gate, scaling_row) = if cores >= 4 {
        alex_parallel::set_threads(4);
        let paris_4t_us = mean_us(3, || {
            black_box(Paris::new().link(&pair.left, &pair.right));
        });
        let space_4t_us = mean_us(5, || {
            black_box(LinkSpace::build(&pair.left, &pair.right, &cfg));
        });
        alex_parallel::set_threads(0);
        let paris_scale = paris_1t_us / paris_4t_us;
        let space_scale = space_1t_us / space_4t_us;
        assert!(
            paris_scale >= 3.0,
            "paris_align 4-thread speedup {paris_scale:.2}x below the 3x gate"
        );
        assert!(
            space_scale >= 3.0,
            "space_build 4-thread speedup {space_scale:.2}x below the 3x gate"
        );
        (
            "passed",
            format!(
                ",\n  \"scaling\": {{\"paris_align_4t_us\": {paris_4t_us:.1}, \
                 \"paris_align_4t_speedup\": {paris_scale:.2}, \
                 \"space_build_4t_us\": {space_4t_us:.1}, \
                 \"space_build_4t_speedup\": {space_scale:.2}}}"
            ),
        )
    } else {
        ("skipped", String::new())
    };

    // Chunk-floor gate: the paris_functionality pool's mean chunk time
    // must exceed dispatch overhead (it was 22.5µs — 0.15 efficiency —
    // before the floor).
    alex_telemetry::timeline::enable();
    alex_parallel::set_threads(4);
    black_box(Paris::new().link(&pair.left, &pair.right));
    alex_parallel::set_threads(0);
    let traces = alex_telemetry::timeline::drain();
    alex_telemetry::timeline::disable();
    let attribution = alex_telemetry::attribute(&traces);
    let fun_chunk_us = attribution
        .pools
        .iter()
        .find(|p| p.pool == "paris_functionality")
        .map(|p| p.mean_chunk_us)
        .unwrap_or(0.0);
    assert!(
        fun_chunk_us > DISPATCH_OVERHEAD_US,
        "paris_functionality mean chunk {fun_chunk_us:.1}µs does not clear \
         dispatch overhead {DISPATCH_OVERHEAD_US}µs — chunk floor regressed"
    );

    assert!(
        st_speedup >= 3.0,
        "single-thread paris_align {paris_1t_us:.0}µs is only {st_speedup:.2}x \
         over the PR-7 baseline {PR7_PARIS_ALIGN_US:.0}µs — below the 3x gate"
    );

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"host_cores\": {cores},\n  \
         \"pr7_paris_align_us\": {PR7_PARIS_ALIGN_US:.1},\n  \
         \"paris_align_us\": {paris_1t_us:.1},\n  \
         \"space_build_us\": {space_1t_us:.1},\n  \
         \"single_thread_speedup_vs_pr7\": {st_speedup:.2},\n  \
         \"single_thread_gate\": \"passed\",\n  \
         \"scaling_gate\": \"{scaling_gate}\"{scaling_row},\n  \
         \"paris_functionality_mean_chunk_us\": {fun_chunk_us:.1},\n  \
         \"dispatch_overhead_us\": {DISPATCH_OVERHEAD_US:.1},\n  \
         \"kernels\": {{\n    \"myers_ns_per_sweep\": {myers_ns:.0},\n    \
         \"dp_ns_per_sweep\": {dp_ns:.0},\n    \
         \"myers_vs_dp_speedup\": {:.2},\n    \
         \"jaccard_hashset_ns_per_sweep\": {jaccard_hash_ns:.0},\n    \
         \"jaccard_interned_ns_per_sweep\": {jaccard_interned_ns:.0},\n    \
         \"jaccard_interned_speedup\": {:.2},\n    \
         \"batch_ns_per_100\": {batch_ns:.0},\n    \
         \"naive_ns_per_100\": {naive_ns:.0},\n    \
         \"batch_vs_naive_speedup\": {:.2}\n  }}\n}}\n",
        dp_ns / myers_ns,
        jaccard_hash_ns / jaccard_interned_ns,
        naive_ns / batch_ns,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
