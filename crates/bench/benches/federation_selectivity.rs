//! Source-selection economics: what the endpoint coverage catalog saves
//! over broadcast dispatch, and what sameAs recall the closure buys.
//!
//! The fixture is the coverage-skewed federation scenario from
//! `alex-datagen` (one anchor hub + four attribute shards with disjoint
//! predicate coverage): every workload query anchors on the hub and asks
//! for a shard attribute, so a broadcast probes all five endpoints per
//! pattern while the catalog can prove four of them empty. The harness
//! counts *issued* sub-queries (probes actually dispatched, i.e. logical
//! probes minus catalog-pruned ones) via the global metrics registry and
//! asserts the catalog saves at least [`REDUCTION_FLOOR`] of them while
//! answers stay byte-identical.
//!
//! In measure mode (`cargo bench`) this target writes
//! `BENCH_federation.json` at the repo root with the sub-query reduction,
//! per-pass latencies, and the recall curve as the sameAs closure
//! converges (recall with the catalog must never trail broadcast).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use alex_datagen::{federation_scenario, FederationConfig, FederationScenario};
use alex_sparql::{parse, DatasetEndpoint, FederatedEngine, Query, SameAsLinks};
use alex_telemetry::counter;

/// Minimum fraction of sub-queries the catalog must prune on the
/// coverage-skewed fixture (the acceptance floor is 30%).
const REDUCTION_FLOOR: f64 = 0.30;

/// Closure convergence points for the recall curve, in percent.
const CLOSURE_POINTS: [usize; 5] = [0, 25, 50, 75, 100];

struct Fixture {
    scenario: FederationScenario,
    queries: Vec<Query>,
}

fn fixture() -> Fixture {
    let scenario = federation_scenario(&FederationConfig {
        entities: 40,
        shards: 4,
        seed: 7,
    });
    let queries: Vec<Query> = scenario
        .queries
        .iter()
        .map(|q| parse(&q.sparql).expect("generated SPARQL parses"))
        .collect();
    Fixture { scenario, queries }
}

/// Engine over the scenario endpoints with the first `n_links` links of
/// the ground-truth closure, with or without the coverage catalog.
fn engine(fx: &Fixture, n_links: usize, catalog: bool) -> FederatedEngine {
    let mut engine = FederatedEngine::new();
    for ds in fx.scenario.endpoints() {
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds.clone())));
    }
    engine.set_links(SameAsLinks::from_pairs(
        fx.scenario.links[..n_links]
            .iter()
            .map(|(l, r)| (l.as_str(), r.as_str())),
    ));
    if catalog {
        let built = engine.build_catalog().expect("in-process probe succeeds");
        engine.set_catalog(Some(built));
    }
    engine
}

/// One workload pass; returns the per-query answer multisets (sorted debug
/// forms) so broadcast and pruned passes can be compared exactly.
fn run_pass(engine: &FederatedEngine, queries: &[Query]) -> Vec<Vec<String>> {
    queries
        .iter()
        .map(|q| {
            let mut rows: Vec<String> = engine
                .execute_full(q)
                .expect("evaluates")
                .answers
                .iter()
                .map(|a| format!("{a:?}"))
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

/// Sub-queries actually dispatched during `f`: logical source-selection
/// probes minus the catalog-pruned ones, read from the global counters.
fn issued_during(f: impl FnOnce()) -> u64 {
    let probes0 = counter!("alex_source_selection_probes_total").get();
    let pruned0 = counter!("federation_pruned_probes_total").get();
    f();
    let probes = counter!("alex_source_selection_probes_total").get() - probes0;
    let pruned = counter!("federation_pruned_probes_total").get() - pruned0;
    probes - pruned
}

/// Fraction of the workload answered with the given closure prefix.
fn recall(fx: &Fixture, engine: &FederatedEngine) -> f64 {
    let answered = fx
        .queries
        .iter()
        .filter(|q| {
            !engine
                .execute_full(q)
                .expect("evaluates")
                .answers
                .is_empty()
        })
        .count();
    answered as f64 / fx.queries.len() as f64
}

fn bench_federation_selectivity(c: &mut Criterion) {
    let fx = fixture();
    let full = fx.scenario.links.len();

    // Correctness anchor: catalog-pruned answers are identical to
    // broadcast, and the pruning saves at least the floor.
    let broadcast = engine(&fx, full, false);
    let pruned = engine(&fx, full, true);
    let mut reference = Vec::new();
    let issued_broadcast = issued_during(|| reference = run_pass(&broadcast, &fx.queries));
    let mut via_catalog = Vec::new();
    let issued_pruned = issued_during(|| via_catalog = run_pass(&pruned, &fx.queries));
    assert_eq!(reference, via_catalog, "pruning must not change answers");
    let reduction = 1.0 - issued_pruned as f64 / issued_broadcast as f64;
    assert!(
        reduction >= REDUCTION_FLOOR,
        "catalog must prune at least {:.0}% of sub-queries: broadcast {} vs pruned {} ({:.0}%)",
        REDUCTION_FLOOR * 100.0,
        issued_broadcast,
        issued_pruned,
        reduction * 100.0
    );

    let mut g = c.benchmark_group("federation_selectivity");
    g.sample_size(10);
    g.bench_function("broadcast_pass", |b| {
        b.iter(|| black_box(run_pass(&broadcast, &fx.queries)))
    });
    g.bench_function("catalog_pruned_pass", |b| {
        b.iter(|| black_box(run_pass(&pruned, &fx.queries)))
    });
    g.finish();

    write_bench_snapshot(&fx, issued_broadcast, issued_pruned, reduction);
}

/// Mean microseconds per iteration of `f` over a small fixed batch.
fn mean_us(iters: u32, mut f: impl FnMut()) -> f64 {
    f(); // one unmeasured warm-up iteration
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_micros() as f64 / iters as f64
}

fn write_bench_snapshot(fx: &Fixture, issued_broadcast: u64, issued_pruned: u64, reduction: f64) {
    // Only meaningful under `cargo bench`, not the smoke pass.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let full = fx.scenario.links.len();

    // Recall curve: as the closure converges, both modes must recover the
    // same growing fraction of the workload, with the catalog never
    // issuing more sub-queries than broadcast.
    let mut curve = Vec::new();
    for pct in CLOSURE_POINTS {
        let n = full * pct / 100;
        let broadcast = engine(fx, n, false);
        let pruned = engine(fx, n, true);
        let mut r_broadcast = 0.0;
        let issued_b = issued_during(|| r_broadcast = recall(fx, &broadcast));
        let mut r_pruned = 0.0;
        let issued_p = issued_during(|| r_pruned = recall(fx, &pruned));
        assert!(
            r_pruned >= r_broadcast,
            "catalog recall must never trail broadcast at {pct}% closure"
        );
        assert!(
            issued_p <= issued_b,
            "catalog must never issue more sub-queries at {pct}% closure"
        );
        curve.push(format!(
            "    {{\"closure_pct\": {pct}, \"recall\": {r_pruned:.3}, \
             \"issued_pruned\": {issued_p}, \"issued_broadcast\": {issued_b}}}"
        ));
    }

    let broadcast = engine(fx, full, false);
    let pruned = engine(fx, full, true);
    let broadcast_pass_us = mean_us(3, || {
        black_box(run_pass(&broadcast, &fx.queries));
    });
    let pruned_pass_us = mean_us(3, || {
        black_box(run_pass(&pruned, &fx.queries));
    });

    let json = format!(
        "{{\n  \"bench\": \"federation_selectivity\",\n  \
         \"endpoints\": {},\n  \
         \"workload_queries\": {},\n  \
         \"issued_broadcast\": {issued_broadcast},\n  \
         \"issued_pruned\": {issued_pruned},\n  \
         \"subquery_reduction\": {reduction:.3},\n  \
         \"reduction_floor\": {REDUCTION_FLOOR},\n  \
         \"broadcast_pass_us\": {broadcast_pass_us:.0},\n  \
         \"pruned_pass_us\": {pruned_pass_us:.0},\n  \
         \"recall_curve\": [\n{}\n  ]\n}}\n",
        fx.scenario.endpoint_count(),
        fx.queries.len(),
        curve.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_federation.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_federation_selectivity);
criterion_main!(benches);
