//! Microbenches for the similarity kernels — the innermost loop of link-
//! space construction (millions of calls per experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alex_sim::{
    jaro_winkler, levenshtein, monge_elkan_jw, string_similarity, value_similarity, TypedValue,
};

const PAIRS: &[(&str, &str)] = &[
    ("LeBron James", "James, LeBron"),
    ("Quantum Meridian Systems", "Quantum Meridian Sys."),
    (
        "International Conference on Linked Data 2013",
        "Workshop on Linked Data 2013",
    ),
    ("Silverford", "North Silverford"),
    ("completely unrelated", "something else entirely"),
];

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity");
    g.bench_function("levenshtein", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(levenshtein(black_box(x), black_box(y)));
            }
        })
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(jaro_winkler(black_box(x), black_box(y)));
            }
        })
    });
    g.bench_function("monge_elkan", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(monge_elkan_jw(black_box(x), black_box(y)));
            }
        })
    });
    g.bench_function("string_similarity", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(string_similarity(black_box(x), black_box(y)));
            }
        })
    });
    g.bench_function("value_similarity_mixed", |b| {
        let values = [
            TypedValue::Text("LeBron James".into()),
            TypedValue::Year(1984),
            TypedValue::Integer(2_000_000),
            TypedValue::Float(98.25),
            TypedValue::Iri("http://e/Miami_Heat".into()),
        ];
        b.iter(|| {
            for x in &values {
                for y in &values {
                    black_box(value_similarity(black_box(x), black_box(y)));
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
