//! The exploration query (§4.2): indexed binary-search range scan vs the
//! linear-scan reference — the ablation for the per-feature score indexes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alex_core::{LinkSpace, SpaceConfig};
use alex_datagen::{generate_pair, Domain, Flavor, PairConfig, SideConfig};

fn space() -> LinkSpace {
    let pair = generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 200,
        left_only: 300,
        right_only: 100,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Place],
        left_extra_domains: Domain::ALL.to_vec(),
    });
    LinkSpace::build(&pair.left, &pair.right, &SpaceConfig::default())
}

fn bench_explore(c: &mut Criterion) {
    let space = space();
    let features: Vec<_> = space.catalog().iter().map(|(id, _)| id).collect();
    assert!(!features.is_empty());
    let mut g = c.benchmark_group("exploration");
    g.bench_function("explore_indexed", |b| {
        b.iter(|| {
            for &f in &features {
                for center in [0.5, 0.8, 0.95] {
                    black_box(space.explore(f, black_box(center), 0.05));
                }
            }
        })
    });
    g.bench_function("explore_scan_ablation", |b| {
        b.iter(|| {
            for &f in &features {
                for center in [0.5, 0.8, 0.95] {
                    black_box(space.explore_scan(f, black_box(center), 0.05));
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
