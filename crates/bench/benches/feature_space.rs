//! Link-space construction: similarity matrices, θ-filtering, and the
//! per-feature score indexes (§6.1). Includes the θ ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use alex_core::{LinkSpace, SpaceConfig};
use alex_datagen::{generate_pair, Domain, Flavor, GeneratedPair, PairConfig, SideConfig};

fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 150,
        left_only: 250,
        right_only: 80,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Place, Domain::Organization],
        left_extra_domains: Domain::ALL.to_vec(),
    })
}

fn bench_space_build(c: &mut Criterion) {
    let pair = pair();
    let mut g = c.benchmark_group("feature_space");
    g.sample_size(10);
    for theta in [0.3, 0.5, 0.7] {
        g.bench_with_input(
            BenchmarkId::new("build_theta", theta),
            &theta,
            |b, &theta| {
                let cfg = SpaceConfig {
                    theta,
                    ..SpaceConfig::default()
                };
                b.iter(|| black_box(LinkSpace::build(&pair.left, &pair.right, &cfg)))
            },
        );
    }
    // Partitioned build: one partition's share of the work.
    g.bench_function("build_partition_1_of_4", |b| {
        let cfg = SpaceConfig {
            partition: Some((0, 4)),
            ..SpaceConfig::default()
        };
        b.iter(|| black_box(LinkSpace::build(&pair.left, &pair.right, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_space_build);
criterion_main!(benches);
