//! Adversarial-robustness economics: what the trust gate buys under a
//! seeded poisoning attack, and what it costs per episode.
//!
//! Four improve runs over the NBA pair — {clean, 30% targeted poisoners}
//! × {trust gate on, off} — produce per-episode F curves. The acceptance
//! criteria from the robustness issue are asserted here so a regression
//! shows up in review diffs: with the gate on, poisoned F may degrade at
//! most 5 points from the clean baseline, and the ungated run must
//! degrade strictly more. The full curves land in `BENCH_trust.json` at
//! the repo root. A Criterion group additionally prices the gate's
//! bookkeeping (gated vs ungated clean episodes).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use alex_core::{
    driver, AdversarialPopulation, Agent, AlexConfig, LinkSpace, RunReport, SpaceConfig,
    TrustConfig,
};
use alex_datagen::{assign_roles, generate_pair, AdversaryProfile, DatasetKind, PairSpec};

const SOURCES: usize = 10;
const SEED: u64 = 42;
const POISON_FRACTION: f64 = 0.3;
/// The issue's acceptance bound: gated degradation ≤ 5 F-points.
const MAX_GATED_DEGRADATION: f64 = 0.05;

struct Fixture {
    space: LinkSpace,
    truth: HashSet<(u32, u32)>,
    initial: Vec<(u32, u32)>,
}

fn fixture() -> Fixture {
    let spec = PairSpec::of(DatasetKind::DBpediaNba, DatasetKind::NYTimes);
    let pair = generate_pair(&spec.config(7));
    let space = LinkSpace::build(&pair.left, &pair.right, &SpaceConfig::default());
    let truth: HashSet<(u32, u32)> = pair
        .ground_truth
        .iter()
        .filter_map(|&(l, r)| Some((space.left_index().id(l)?, space.right_index().id(r)?)))
        .collect();
    let mut initial: Vec<(u32, u32)> = truth.iter().copied().collect();
    initial.sort_unstable();
    let keep = initial.len() * 2 / 5;
    initial.truncate(keep);
    initial.extend([(0, 1), (1, 2), (2, 0)]);
    Fixture {
        space,
        truth,
        initial,
    }
}

fn cfg(trust: bool) -> AlexConfig {
    AlexConfig {
        episode_size: 400,
        max_episodes: 12,
        trust: trust.then(TrustConfig::default),
        ..AlexConfig::default()
    }
}

/// One full improve run; `poisoned` seeds 30% targeted poisoners into the
/// source population.
fn run(fx: &Fixture, poisoned: bool, trust: bool) -> RunReport {
    let profile = poisoned
        .then(|| AdversaryProfile::parse(&format!("poisoner:{POISON_FRACTION}")))
        .transpose()
        .expect("profile parses");
    let roles = assign_roles(profile.as_ref(), SOURCES, SEED);
    let mut population = AdversarialPopulation::new(fx.truth.clone(), roles, 0.0, SEED);
    let mut agent = Agent::new(fx.space.clone(), &fx.initial, cfg(trust));
    driver::run(&mut agent, &mut population, &fx.truth)
}

/// Initial quality followed by each episode's F.
fn curve(report: &RunReport) -> Vec<f64> {
    std::iter::once(report.initial_quality.f_measure)
        .chain(report.episodes.iter().map(|e| e.quality.f_measure))
        .collect()
}

fn json_curve(curve: &[f64]) -> String {
    let points: Vec<String> = curve.iter().map(|f| format!("{f:.4}")).collect();
    format!("[{}]", points.join(", "))
}

fn bench_trust_robustness(c: &mut Criterion) {
    let fx = fixture();

    // Quality curves + acceptance criteria. Deterministic (no wall clock),
    // so this runs in the smoke pass too: a defense regression fails
    // `cargo test` on the bench targets, not just `cargo bench`.
    let clean_on = run(&fx, false, true);
    let poisoned_on = run(&fx, true, true);
    let clean_off = run(&fx, false, false);
    let poisoned_off = run(&fx, true, false);

    let final_f = |r: &RunReport| r.final_quality().f_measure;
    let deg_on = final_f(&clean_on) - final_f(&poisoned_on);
    let deg_off = final_f(&clean_off) - final_f(&poisoned_off);
    assert!(
        deg_on <= MAX_GATED_DEGRADATION + 1e-9,
        "trust-gated degradation exceeds the {MAX_GATED_DEGRADATION} bound: \
         clean {:.4} vs poisoned {:.4} ({deg_on:.4})",
        final_f(&clean_on),
        final_f(&poisoned_on),
    );
    assert!(
        deg_off > deg_on,
        "the ungated run must degrade strictly more than the gated one: \
         gated {deg_on:.4}, ungated {deg_off:.4}"
    );

    let json = format!(
        "{{\n  \"bench\": \"trust_robustness\",\n  \
         \"pair\": \"nba\",\n  \"sources\": {SOURCES},\n  \
         \"poison_fraction\": {POISON_FRACTION},\n  \
         \"episodes\": {},\n  \"episode_size\": 400,\n  \
         \"f_curve_clean_trust_on\": {},\n  \
         \"f_curve_poisoned_trust_on\": {},\n  \
         \"f_curve_clean_trust_off\": {},\n  \
         \"f_curve_poisoned_trust_off\": {},\n  \
         \"degradation_trust_on\": {deg_on:.4},\n  \
         \"degradation_trust_off\": {deg_off:.4},\n  \
         \"max_gated_degradation\": {MAX_GATED_DEGRADATION}\n}}\n",
        clean_on.episode_count(),
        json_curve(&curve(&clean_on)),
        json_curve(&curve(&poisoned_on)),
        json_curve(&curve(&clean_off)),
        json_curve(&curve(&poisoned_off)),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trust.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Price the gate itself: clean episodes with and without admission
    // bookkeeping (buffering, posterior updates, discredit sweeps).
    let mut g = c.benchmark_group("trust_robustness");
    g.sample_size(10);
    g.bench_function("clean_run_ungated", |b| {
        b.iter(|| black_box(run(&fx, false, false).episode_count()))
    });
    g.bench_function("clean_run_gated", |b| {
        b.iter(|| black_box(run(&fx, false, true).episode_count()))
    });
    g.bench_function("poisoned_run_gated", |b| {
        b.iter(|| black_box(run(&fx, true, true).episode_count()))
    });
    g.finish();
}

criterion_group!(benches, bench_trust_robustness);
criterion_main!(benches);
