//! Automatic-linking substrate: token blocking, the PARIS-like aligner, and
//! the label baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use alex_datagen::{generate_pair, Domain, Flavor, GeneratedPair, PairConfig, SideConfig};
use alex_linking::{candidate_pairs, BlockingConfig, LabelBaseline, Paris};

fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 120,
        left_only: 200,
        right_only: 60,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Drug],
        left_extra_domains: Domain::ALL.to_vec(),
    })
}

fn bench_linking(c: &mut Criterion) {
    let pair = pair();
    let mut g = c.benchmark_group("linking");
    g.sample_size(10);
    g.bench_function("token_blocking", |b| {
        let li = pair.left.entity_index();
        let ri = pair.right.entity_index();
        let cfg = BlockingConfig::default();
        b.iter(|| black_box(candidate_pairs(&pair.left, &li, &pair.right, &ri, &cfg)))
    });
    g.bench_function("label_baseline", |b| {
        let linker = LabelBaseline::default();
        b.iter(|| black_box(linker.link(&pair.left, &pair.right)))
    });
    g.bench_function("paris_like", |b| {
        let linker = Paris::new();
        b.iter(|| black_box(linker.link(&pair.left, &pair.right)))
    });
    // Thread sweep: the aligner's pair scoring and relation-equivalence
    // estimation run on the deterministic pool, so the output is
    // byte-identical at every width — only the wall clock moves.
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("paris_like_threads", threads),
            &threads,
            |b, &t| {
                alex_parallel::set_threads(t);
                let linker = Paris::new();
                b.iter(|| black_box(linker.link(&pair.left, &pair.right)));
            },
        );
    }
    alex_parallel::set_threads(0);
    g.finish();
}

criterion_group!(benches, bench_linking);
criterion_main!(benches);
