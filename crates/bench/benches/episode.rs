//! Episode throughput: feedback items processed per second through the full
//! policy-evaluation path (sampling, credit assignment, exploration,
//! blacklist, rollback).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use alex_core::{Agent, AlexConfig, LinkSpace, OracleFeedback, SpaceConfig};
use alex_datagen::{generate_pair, Domain, Flavor, GeneratedPair, PairConfig, SideConfig};

fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 150,
        left_only: 250,
        right_only: 80,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Organization],
        left_extra_domains: Domain::ALL.to_vec(),
    })
}

fn bench_episode(c: &mut Criterion) {
    let pair = pair();
    let space = LinkSpace::build(&pair.left, &pair.right, &SpaceConfig::default());
    let truth: HashSet<(u32, u32)> = pair
        .ground_truth
        .iter()
        .filter_map(|&(l, r)| Some((space.left_index().id(l)?, space.right_index().id(r)?)))
        .collect();
    let initial: Vec<(u32, u32)> = truth.iter().copied().take(40).collect();

    let mut g = c.benchmark_group("episode");
    g.sample_size(10);
    g.bench_function("run_episode_200_items", |b| {
        b.iter_with_setup(
            || {
                let agent = Agent::new(
                    space.clone(),
                    &initial,
                    AlexConfig {
                        episode_size: 200,
                        ..AlexConfig::default()
                    },
                );
                let oracle = OracleFeedback::new(truth.clone(), 9);
                (agent, oracle)
            },
            |(mut agent, mut oracle)| {
                black_box(agent.run_episode(&mut oracle));
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench_episode);
criterion_main!(benches);
