//! Link-space construction: the blocked-candidate feature pass that the
//! deterministic worker pool parallelizes, swept over thread counts.
//!
//! In measure mode (`cargo bench`) this target also writes
//! `BENCH_parallel.json` at the repo root: a machine-readable snapshot of
//! the thread sweep (mean per-iteration time and speedup vs one thread)
//! for the space build and the PARIS aligner, so scaling regressions show
//! up in review diffs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use alex_core::{LinkSpace, SpaceConfig};
use alex_datagen::{generate_pair, Domain, Flavor, GeneratedPair, PairConfig, SideConfig};
use alex_linking::Paris;

const SWEEP: [usize; 4] = [1, 2, 4, 8];

fn pair() -> GeneratedPair {
    generate_pair(&PairConfig {
        seed: 42,
        left: SideConfig {
            name: "L".into(),
            ns: "http://l.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.1,
            drop_prob: 0.12,
            sparse: false,
        },
        right: SideConfig {
            name: "R".into(),
            ns: "http://r.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.12,
            drop_prob: 0.12,
            sparse: false,
        },
        shared: 120,
        left_only: 200,
        right_only: 60,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Drug],
        left_extra_domains: Domain::ALL.to_vec(),
    })
}

fn bench_space_build(c: &mut Criterion) {
    let pair = pair();
    let cfg = SpaceConfig::default();
    let mut g = c.benchmark_group("space_build");
    g.sample_size(10);
    for threads in SWEEP {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            alex_parallel::set_threads(t);
            b.iter(|| black_box(LinkSpace::build(&pair.left, &pair.right, &cfg)));
        });
    }
    alex_parallel::set_threads(0);
    g.finish();
    write_snapshot(&pair, &cfg);
}

/// Mean microseconds per iteration of `f` over a small fixed batch.
fn mean_us(iters: u32, mut f: impl FnMut()) -> f64 {
    // One unmeasured warm-up iteration.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_micros() as f64 / iters as f64
}

fn write_snapshot(pair: &GeneratedPair, cfg: &SpaceConfig) {
    // Snapshots are wall-clock measurements; only meaningful (and only
    // worth the time) under `cargo bench`, not the smoke pass.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let mut base = (0.0f64, 0.0f64);
    for threads in SWEEP {
        alex_parallel::set_threads(threads);
        let build_us = mean_us(5, || {
            black_box(LinkSpace::build(&pair.left, &pair.right, cfg));
        });
        let paris_us = mean_us(3, || {
            black_box(Paris::new().link(&pair.left, &pair.right));
        });
        if threads == 1 {
            base = (build_us, paris_us);
        }
        // Rows oversubscribing the host (threads > cores) can't show real
        // scaling — label them so a 1-core CI run doesn't read as a
        // regression and an 8-core box doesn't over-trust its 8-way row.
        let trusted = threads <= cores;
        rows.push(format!(
            "    {{\"threads\":{threads},\"trusted\":{trusted},\
             \"space_build_us\":{build_us:.1},\
             \"space_build_speedup\":{:.2},\"paris_align_us\":{paris_us:.1},\
             \"paris_align_speedup\":{:.2}}}",
            base.0 / build_us,
            base.1 / paris_us,
        ));
    }
    alex_parallel::set_threads(0);
    let scaling_gate = if cores >= 4 { "measured" } else { "skipped" };

    // Worker-attribution snapshot: one PARIS alignment at 4 threads with
    // the timeline recorder on, reduced to per-phase self time, per-worker
    // busy/idle, chunk skew, and the critical-path estimate.
    alex_telemetry::timeline::enable();
    alex_parallel::set_threads(4);
    black_box(Paris::new().link(&pair.left, &pair.right));
    alex_parallel::set_threads(0);
    let traces = alex_telemetry::timeline::drain();
    alex_telemetry::timeline::disable();
    let attribution = alex_telemetry::attribute(&traces).to_json();

    let json = format!(
        "{{\n  \"bench\": \"parallel_sweep\",\n  \"host_cores\": {cores},\n  \
         \"scaling_gate\": \"{scaling_gate}\",\n  \
         \"results\": [\n{}\n  ],\n  \"attribution\": {attribution}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_space_build);
criterion_main!(benches);
