//! Demonstrates the disabled-path cost model from DESIGN.md: with no event
//! sink attached, the telemetry instrumentation adds well under 2% to the
//! episode loop.
//!
//! Rather than comparing two binaries (the un-instrumented code no longer
//! exists), this measures the per-operation cost of the disabled primitives
//! directly, multiplies by a generous over-estimate of how many such
//! operations one episode performs, and compares against the measured
//! episode wall-clock time.

use std::time::Instant;

use alex_bench::harness::{Workload, BASE_SEED};
use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};
use alex_telemetry::{counter, emit, Event};

#[test]
fn disabled_telemetry_overhead_is_under_two_percent_of_episode_loop() {
    assert!(
        !alex_telemetry::global().events().is_attached(),
        "test requires the no-sink configuration"
    );
    assert!(
        !alex_telemetry::timeline::enabled(),
        "test requires the timeline recorder to be off"
    );

    // Per-op cost of the three hot-path primitives, amortized over many
    // calls: a disabled event emit, a counter increment, and a disabled
    // timeline record (one relaxed atomic load).
    const OPS: u32 = 1_000_000;
    let start = Instant::now();
    for i in 0..OPS {
        emit!(Event::LinkAdded {
            left: i as u64,
            right: i as u64
        });
        counter!("overhead_test_total").inc();
        alex_telemetry::timeline::instant("overhead_probe");
    }
    // Each iteration did one disabled emit + one counter increment + one
    // disabled timeline record.
    let per_feedback_item = start.elapsed() / OPS;

    // One real episode loop, telemetry compiled in but un-sinked.
    let workload = Workload::specific_domain(
        PairSpec::of(DatasetKind::DBpediaNba, DatasetKind::NYTimes),
        InitialLinksSpec::high_p_low_r(BASE_SEED),
    )
    .with_max_episodes(5);
    let start = Instant::now();
    let run = workload.run();
    let episode_time = start.elapsed();
    let episodes = run.run.episodes.len().max(1) as u32;

    // Over-estimate: every feedback item costs at most ~6 instrumented
    // operations (feedback event, link add/remove event + counter,
    // exploration action, blacklist check), and the per-episode span/event
    // bookkeeping is bounded by another episode_size worth of ops.
    let ops_per_episode = (workload.alex.episode_size as u32) * 12;
    let overhead = per_feedback_item * ops_per_episode * episodes;

    let limit = episode_time.mul_f64(0.02);
    assert!(
        overhead < limit,
        "estimated disabled-telemetry overhead {overhead:?} exceeds 2% of the \
         episode loop ({episode_time:?} for {episodes} episodes)"
    );
}
