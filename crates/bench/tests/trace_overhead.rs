//! Enabled-mode timeline overhead guard: with the recorder on, span
//! recording stays under 5% of the episode loop. The measured numbers are
//! written to `BENCH_trace.json` at the repo root so the cost shows up in
//! review diffs.
//!
//! Lives in its own test binary: it flips the global recorder on, which
//! must not interleave with the disabled-cost measurement in
//! `telemetry_overhead.rs` (cargo runs test binaries one at a time).

use std::sync::Arc;
use std::time::Instant;

use alex_bench::harness::{Workload, BASE_SEED};
use alex_datagen::{DatasetKind, InitialLinksSpec, PairSpec};
use alex_telemetry::timeline;

#[test]
fn enabled_timeline_overhead_is_under_five_percent_of_episode_loop() {
    timeline::enable();

    // Per-span cost with the recorder on: a begin/end pair appended to the
    // thread-local buffer, drained often enough that the buffer never
    // fills (a full buffer takes the cheap drop path, which would
    // understate the cost). The drains stay inside the measured region, so
    // the per-span figure amortizes collection too — an over-estimate of
    // what a real run pays.
    let probe_path: Arc<str> = Arc::from("bench/probe");
    const BATCHES: u32 = 20;
    const PAIRS: u32 = 10_000;
    let start = Instant::now();
    for _ in 0..BATCHES {
        for _ in 0..PAIRS {
            let began = timeline::begin("probe", &probe_path, None);
            timeline::end(began);
        }
        let _ = timeline::drain();
    }
    let per_span = start.elapsed() / (BATCHES * PAIRS);

    // One real episode loop with the recorder on, recording for real
    // (spans, pool dispatches, worker chunks).
    let workload = Workload::specific_domain(
        PairSpec::of(DatasetKind::DBpediaNba, DatasetKind::NYTimes),
        InitialLinksSpec::high_p_low_r(BASE_SEED),
    )
    .with_max_episodes(5);
    let start = Instant::now();
    let run = workload.run();
    let episode_time = start.elapsed();
    let episodes = run.run.episodes.len().max(1) as u32;

    let traces = timeline::drain();
    timeline::disable();
    let recorded: u64 = traces.iter().map(|t| t.events.len() as u64).sum();
    let dropped: u64 = traces.iter().map(|t| t.dropped).sum();

    // Same generous over-estimate as the disabled guard: bound the spans
    // one episode can open by episode_size * 12, even though spans sit at
    // episode/phase/dispatch granularity, far coarser than feedback items.
    let ops_per_episode = (workload.alex.episode_size as u32) * 12;
    let overhead = per_span * ops_per_episode * episodes;
    let limit = episode_time.mul_f64(0.05);
    let overhead_pct = 100.0 * overhead.as_secs_f64() / episode_time.as_secs_f64();

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \
         \"enabled_span_ns\": {span_ns},\n  \
         \"episodes\": {episodes},\n  \
         \"episode_loop_us\": {loop_us},\n  \
         \"est_spans_per_episode\": {ops_per_episode},\n  \
         \"est_enabled_overhead_pct\": {overhead_pct:.3},\n  \
         \"bound_pct\": 5.0,\n  \
         \"events_recorded\": {recorded},\n  \
         \"events_dropped\": {dropped}\n}}\n",
        span_ns = per_span.as_nanos(),
        loop_us = episode_time.as_micros(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }

    assert!(
        overhead < limit,
        "estimated enabled-timeline overhead {overhead:?} exceeds 5% of the \
         episode loop ({episode_time:?} for {episodes} episodes)"
    );
}
