//! Unit tests for the telemetry crate: histogram boundary/percentile math,
//! concurrent span nesting, Prometheus export format, and JSONL round-trips.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use alex_telemetry::{
    span, Event, EventLog, JsonlFileSink, MemorySink, MetricsRegistry, DURATION_BUCKETS,
};

// ---------------------------------------------------------------- histograms

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("h_bounds", &[1.0, 2.0, 4.0]);
    // Exactly on a bound lands in that bound's bucket (le semantics).
    h.observe(1.0);
    h.observe(2.0);
    h.observe(4.0);
    // Above the last bound lands in +Inf.
    h.observe(100.0);
    assert_eq!(h.count(), 4);
    assert!((h.sum() - 107.0).abs() < 1e-9);

    let text = registry.render_prometheus();
    // Cumulative bucket counts: le="1" 1, le="2" 2, le="4" 3, le="+Inf" 4.
    assert!(text.contains("h_bounds_bucket{le=\"1\"} 1"), "{text}");
    assert!(text.contains("h_bounds_bucket{le=\"2\"} 2"), "{text}");
    assert!(text.contains("h_bounds_bucket{le=\"4\"} 3"), "{text}");
    assert!(text.contains("h_bounds_bucket{le=\"+Inf\"} 4"), "{text}");
    assert!(text.contains("h_bounds_count 4"), "{text}");
}

#[test]
fn histogram_percentiles_interpolate_within_bucket() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("h_pct", &[1.0, 2.0, 4.0]);
    for _ in 0..4 {
        h.observe(0.5); // bucket le=1
    }
    for _ in 0..4 {
        h.observe(3.0); // bucket le=4
    }
    // p50: target rank 4 falls at the end of the first bucket → 1.0.
    assert!((h.p50() - 1.0).abs() < 1e-9, "p50 = {}", h.p50());
    // p95: target rank 7.6, bucket (2, 4] holds ranks 5..=8;
    // 2 + 2 * (7.6 - 4) / 4 = 3.8.
    assert!((h.p95() - 3.8).abs() < 1e-9, "p95 = {}", h.p95());
}

#[test]
fn histogram_inf_bucket_clamps_to_last_bound() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("h_inf", &[1.0, 2.0, 4.0]);
    h.observe(1000.0);
    assert!((h.p99() - 4.0).abs() < 1e-9);
}

#[test]
fn empty_histogram_reports_zero() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("h_empty", DURATION_BUCKETS);
    assert_eq!(h.count(), 0);
    assert_eq!(h.p50(), 0.0);
}

// ------------------------------------------------------------------- spans

#[test]
fn concurrent_span_nesting_keeps_paths_per_thread() {
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                let _outer = span("tst_outer");
                for _ in 0..3 {
                    let inner = span("tst_inner");
                    assert_eq!(inner.path(), "tst_outer/tst_inner");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let spans = alex_telemetry::global().spans();
    let outer = spans.get("tst_outer").expect("outer span recorded");
    let inner = spans
        .get("tst_outer/tst_inner")
        .expect("inner span recorded");
    assert_eq!(outer.count, 8);
    assert_eq!(inner.count, 24);
    assert!(
        outer.total >= inner.total / 8,
        "outer spans contain their inners"
    );
    assert!(outer.min <= outer.max);
    assert!(inner.mean() <= inner.max);
}

#[test]
fn sibling_spans_do_not_nest() {
    {
        let first = span("tst_sib_a");
        assert_eq!(first.path(), "tst_sib_a");
    }
    let second = span("tst_sib_b");
    assert_eq!(
        second.path(),
        "tst_sib_b",
        "dropped sibling must not remain on the stack"
    );
}

// -------------------------------------------------------------- prometheus

#[test]
fn prometheus_export_escapes_label_values() {
    let registry = MetricsRegistry::default();
    registry
        .counter_with_labels("requests_total", &[("path", "a\\b\"c\nd")])
        .add(3);
    let text = registry.render_prometheus();
    assert!(text.contains("# TYPE requests_total counter"), "{text}");
    assert!(
        text.contains("requests_total{path=\"a\\\\b\\\"c\\nd\"} 3"),
        "backslash, quote and newline must be escaped: {text}"
    );
}

#[test]
fn prometheus_export_has_one_type_line_per_family() {
    let registry = MetricsRegistry::default();
    registry
        .counter_with_labels("hits_total", &[("route", "a")])
        .inc();
    registry
        .counter_with_labels("hits_total", &[("route", "b")])
        .add(2);
    registry.gauge("depth").set(-4);
    let text = registry.render_prometheus();
    assert_eq!(
        text.matches("# TYPE hits_total counter").count(),
        1,
        "{text}"
    );
    assert!(text.contains("hits_total{route=\"a\"} 1"), "{text}");
    assert!(text.contains("hits_total{route=\"b\"} 2"), "{text}");
    assert!(text.contains("# TYPE depth gauge"), "{text}");
    assert!(text.contains("depth -4"), "{text}");
}

#[test]
fn json_export_includes_percentiles() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("lat", &[1.0, 2.0]);
    h.observe(0.5);
    let json = registry.render_json();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains("\"name\":\"lat\""), "{json}");
    assert!(json.contains("\"p50\""), "{json}");
}

// ------------------------------------------------------------------ events

fn all_event_variants() -> Vec<Event> {
    vec![
        Event::EpisodeStart { episode: 1 },
        Event::EpisodeEnd {
            episode: 1,
            precision: 0.875,
            recall: 0.5,
            f_measure: 0.6363,
            added: 10,
            removed: 3,
            rollbacks: 1,
            threads: 4,
            duration_us: 1234,
            recovered_from: 0,
            trust_admitted: 5,
            trust_deferred: 2,
            trust_cascades: 1,
            degraded: true,
        },
        Event::FeedbackApplied {
            positive: true,
            added: 2,
            removed: 0,
        },
        Event::ExplorationAction {
            action: "Approve(7)".to_string(),
        },
        Event::LinkAdded { left: 4, right: 9 },
        Event::LinkRemoved { left: 4, right: 9 },
        Event::BlacklistHit { left: 1, right: 2 },
        Event::Rollback { removed: 5 },
        Event::FederatedQuery {
            patterns: 2,
            answers: 7,
            provenance_answers: 3,
            probes: 40,
            pruned_probes: 12,
            bound_join_iterations: 9,
            sameas_expansions: 4,
            retries: 3,
            skipped_sources: 1,
            cache: true,
            cache_hits: 5,
            cache_misses: 2,
            catalog: true,
            rewrites: 1,
            threads: 2,
            duration_us: 99,
        },
        Event::ParisIteration {
            iteration: 2,
            matches: 117,
            duration_us: 5000,
        },
        Event::EndpointBatch {
            endpoint: "dbpedia \"live\"".to_string(),
            jobs: 6,
            duration_us: 4200,
            retries: 1,
            circuit_opens: 0,
            circuit_rejections: 2,
            failures: 1,
            skipped: false,
            cache_hit: true,
            pruned: true,
        },
        Event::BenchSnapshot {
            label: "fig4 \"dbpedia\"\n".to_string(),
            episodes: 40,
            f_measure: 0.91,
            duration_us: 7_000_000,
        },
    ]
}

#[test]
fn every_event_variant_round_trips_through_json() {
    for event in all_event_variants() {
        let line = event.to_json();
        let parsed = Event::parse(&line).unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
        assert_eq!(parsed, event, "round-trip mismatch for {line}");
    }
}

/// The parallel execution layer records its configured thread count on
/// the episode and federated-query events.
#[test]
fn episode_and_query_events_carry_thread_count() {
    for event in all_event_variants() {
        match &event {
            Event::EpisodeEnd { threads, .. } => {
                assert_eq!(*threads, 4);
                assert!(event.to_json().contains("\"threads\":4"));
            }
            Event::FederatedQuery { threads, .. } => {
                assert_eq!(*threads, 2);
                assert!(event.to_json().contains("\"threads\":2"));
            }
            _ => {}
        }
    }
    // A line without the field fails to parse — the schema is mandatory,
    // not best-effort, so dashboards can rely on it.
    let missing = "{\"type\":\"episode_end\",\"episode\":1,\"precision\":1.0,\
                   \"recall\":1.0,\"f_measure\":1.0,\"added\":0,\"removed\":0,\
                   \"rollbacks\":0,\"duration_us\":1}";
    assert!(Event::parse(missing).is_err());
}

#[test]
fn jsonl_file_sink_round_trips_through_disk() {
    let path = std::env::temp_dir().join(format!("alex-telemetry-{}.jsonl", std::process::id()));
    let log = EventLog::default();
    log.attach(Arc::new(JsonlFileSink::create(&path).unwrap()));
    let events = all_event_variants();
    for event in &events {
        let e = event.clone();
        log.emit_with(move || e);
    }
    log.detach();

    let content = std::fs::read_to_string(&path).unwrap();
    let parsed: Vec<Event> = content.lines().map(|l| Event::parse(l).unwrap()).collect();
    assert_eq!(parsed, events);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn emit_with_is_lazy_without_a_sink() {
    let log = EventLog::default();
    let built = AtomicBool::new(false);
    log.emit_with(|| {
        built.store(true, Ordering::Relaxed);
        Event::EpisodeStart { episode: 1 }
    });
    assert!(
        !built.load(Ordering::Relaxed),
        "closure must not run without a sink"
    );

    let sink = Arc::new(MemorySink::new());
    log.attach(sink.clone());
    log.emit_with(|| {
        built.store(true, Ordering::Relaxed);
        Event::EpisodeStart { episode: 2 }
    });
    assert!(built.load(Ordering::Relaxed));
    assert_eq!(sink.events(), vec![Event::EpisodeStart { episode: 2 }]);
}

// --------------------------------------------------- prometheus edge cases

#[test]
fn prometheus_histogram_inf_sum_count_are_consistent() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("hh", &[1.0, 2.0]);
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0); // +Inf bucket
    let text = registry.render_prometheus();
    // The +Inf bucket is cumulative over everything, so it must equal
    // _count; _sum is the exact observation total.
    assert!(text.contains("hh_bucket{le=\"+Inf\"} 3"), "{text}");
    assert!(text.contains("hh_count 3"), "{text}");
    assert!(text.contains("hh_sum 11"), "{text}");
    // Bucket counts never decrease down the le ladder.
    let bucket = |le: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("hh_bucket{{le=\"{le}\"}} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("bucket le={le} missing:\n{text}"))
    };
    assert!(bucket("1") <= bucket("2"));
    assert!(bucket("2") <= bucket("+Inf"));
}

#[test]
fn prometheus_render_is_deterministically_ordered() {
    let build = |reversed: bool| {
        let registry = MetricsRegistry::default();
        let mut names = ["a_total", "m_total", "z_total"];
        if reversed {
            names.reverse();
        }
        for (i, name) in names.iter().enumerate() {
            registry.counter(name).add(i as u64 + 1);
        }
        registry
            .counter_with_labels("lbl_total", &[("route", "b")])
            .inc();
        registry
            .counter_with_labels("lbl_total", &[("route", "a")])
            .inc();
        registry
    };
    let a = build(false);
    let b = build(true);
    // Same metrics, different registration order — byte-identical except
    // for the values, and stable across repeated renders.
    assert_eq!(a.render_prometheus(), a.render_prometheus());
    let (ta, tb) = (a.render_prometheus(), b.render_prometheus());
    let series = |t: &str| -> Vec<String> {
        t.lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split(' ').next().unwrap_or("").to_string())
            .collect()
    };
    assert_eq!(series(&ta), series(&tb), "{ta}\nvs\n{tb}");
    let pos = |t: &str, s: &str| t.find(s).unwrap_or_else(|| panic!("{s} missing:\n{t}"));
    assert!(pos(&ta, "a_total") < pos(&ta, "m_total"));
    assert!(pos(&ta, "m_total") < pos(&ta, "z_total"));
    assert!(pos(&ta, "route=\"a\"") < pos(&ta, "route=\"b\""));
}

// ----------------------------------------------------- trace + attribution

use alex_telemetry::timeline::{PoolLabels, PoolRole, ThreadTrace, TimelineEvent, TimelineKind};

fn begin_kind(name: &'static str, path: &str, pool: Option<PoolLabels>) -> TimelineKind {
    TimelineKind::Begin {
        name,
        path: Arc::from(path),
        pool: pool.map(Box::new),
    }
}

fn ev(ts_us: u64, kind: TimelineKind) -> TimelineEvent {
    TimelineEvent { ts_us, kind }
}

/// A hand-built two-worker dispatch: `improve` on the main thread wraps a
/// pool-`p` dispatch (seq 1, 2 chunks / 2 workers); worker threads run one
/// chunk each (40µs and 70µs) inside the dispatch window [10, 110].
fn sample_traces() -> Vec<ThreadTrace> {
    let dispatch = PoolLabels {
        pool: "p",
        seq: 1,
        role: PoolRole::Dispatch {
            chunks: 2,
            workers: 2,
        },
    };
    let chunk = |worker, chunk, items| PoolLabels {
        pool: "p",
        seq: 1,
        role: PoolRole::Chunk {
            worker,
            chunk,
            items,
        },
    };
    vec![
        ThreadTrace {
            tid: 1,
            events: vec![
                ev(0, begin_kind("improve", "improve", None)),
                ev(10, begin_kind("p", "improve/p", Some(dispatch))),
                ev(110, TimelineKind::End),
                ev(200, TimelineKind::End),
            ],
            dropped: 0,
        },
        ThreadTrace {
            tid: 2,
            events: vec![
                ev(20, begin_kind("p", "improve/p", Some(chunk(0, 0, 5)))),
                ev(60, TimelineKind::End),
            ],
            dropped: 0,
        },
        ThreadTrace {
            tid: 3,
            events: vec![
                ev(20, begin_kind("p", "improve/p", Some(chunk(1, 1, 5)))),
                ev(90, TimelineKind::End),
            ],
            dropped: 0,
        },
    ]
}

#[test]
fn attribution_computes_self_time_skew_and_critical_path() {
    let attribution = alex_telemetry::attribute(&sample_traces());

    // Phase self time: the 200µs improve span minus its 100µs dispatch.
    assert_eq!(attribution.phases.len(), 1);
    let phase = &attribution.phases[0];
    assert_eq!(phase.path, "improve");
    assert_eq!(phase.count, 1);
    assert_eq!(phase.total_us, 200);
    assert_eq!(phase.self_us, 100);

    assert_eq!(attribution.pools.len(), 1);
    let pool = &attribution.pools[0];
    assert_eq!(pool.pool, "p");
    assert_eq!(pool.dispatches, 1);
    assert_eq!(pool.wall_us, 100);
    assert_eq!(pool.busy_us, 110);
    assert_eq!(pool.max_chunk_us, 70);
    assert!((pool.mean_chunk_us - 55.0).abs() < 1e-9);
    assert!((pool.chunk_skew - 70.0 / 55.0).abs() < 1e-9);
    // Critical path: the busiest worker of the single dispatch.
    assert_eq!(pool.critical_path_us, 70);
    // Efficiency: 110µs busy over 100µs wall × 2 workers.
    assert!((pool.parallel_efficiency - 0.55).abs() < 1e-9);

    assert_eq!(pool.workers.len(), 2);
    assert_eq!(
        (
            pool.workers[0].worker,
            pool.workers[0].chunks,
            pool.workers[0].busy_us
        ),
        (0, 1, 40)
    );
    assert!((pool.workers[0].busy_frac - 0.4).abs() < 1e-9);
    assert!((pool.workers[1].busy_frac - 0.7).abs() < 1e-9);

    let table = attribution.render_table();
    assert!(table.contains("improve"), "{table}");
    assert!(table.contains("pool p: 1 dispatch(es)"), "{table}");
    assert!(table.contains("busy%"), "{table}");

    let json = attribution.to_json();
    let value = alex_telemetry::json::parse_value_str(&json)
        .unwrap_or_else(|e| panic!("attribution json: {e}\n{json}"));
    let obj = value.as_obj().expect("object");
    assert!(
        obj.contains_key("phases") && obj.contains_key("pools"),
        "{json}"
    );
}

#[test]
fn chrome_trace_round_trips_through_validation() {
    let traces = sample_traces();
    let json = alex_telemetry::chrome_trace_json(&traces);
    let check = alex_telemetry::validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("invalid trace: {e}\n{json}"));
    assert_eq!(check.threads, 3);
    assert_eq!(check.events, 8);
    assert_eq!(check.spans, 4);
    assert_eq!(check.dispatch_spans, 1);
    assert_eq!(check.chunk_spans, 2);
    assert_eq!(check.pools, vec!["p".to_string()]);
    // Thread tracks are named from their role.
    assert!(json.contains("\"name\":\"main\""), "{json}");
    assert!(json.contains("\"name\":\"p worker 0\""), "{json}");
    assert!(json.contains("\"name\":\"p worker 1\""), "{json}");
}

#[test]
fn trace_validation_rejects_chunk_outside_dispatch() {
    let mut traces = sample_traces();
    // Worker 1's chunk now ends after the dispatch window closes.
    traces[2].events[1].ts_us = 120;
    let json = alex_telemetry::chrome_trace_json(&traces);
    let err = alex_telemetry::validate_chrome_trace(&json).unwrap_err();
    assert!(err.contains("outside dispatch"), "{err}");
}

#[test]
fn trace_validation_rejects_unbalanced_begins() {
    let traces = vec![ThreadTrace {
        tid: 1,
        events: vec![ev(0, begin_kind("open", "open", None))],
        dropped: 0,
    }];
    let json = alex_telemetry::chrome_trace_json(&traces);
    let err = alex_telemetry::validate_chrome_trace(&json).unwrap_err();
    assert!(err.contains("without matching E"), "{err}");
}

// ------------------------------------------------------------- run reports

#[test]
fn run_report_percentiles_exclude_cached_and_skipped_batches() {
    let mut events: Vec<Event> = (1..=100)
        .map(|i| Event::EndpointBatch {
            endpoint: "e".to_string(),
            jobs: 1,
            duration_us: i,
            retries: 0,
            circuit_opens: 0,
            circuit_rejections: 0,
            failures: 0,
            skipped: false,
            cache_hit: false,
            pruned: false,
        })
        .collect();
    // A cache hit and a skip: counted as batches, never as latency samples
    // (their duration is 0 and would drag the percentiles down).
    events.push(Event::EndpointBatch {
        endpoint: "e".to_string(),
        jobs: 1,
        duration_us: 0,
        retries: 0,
        circuit_opens: 0,
        circuit_rejections: 0,
        failures: 0,
        skipped: false,
        cache_hit: true,
        pruned: false,
    });
    events.push(Event::EndpointBatch {
        endpoint: "e".to_string(),
        jobs: 1,
        duration_us: 0,
        retries: 2,
        circuit_opens: 1,
        circuit_rejections: 3,
        failures: 1,
        skipped: true,
        cache_hit: false,
        pruned: false,
    });

    let mut report = alex_telemetry::RunReport::new();
    report.add_events(&events);
    assert_eq!(report.endpoints.len(), 1);
    let e = &report.endpoints[0];
    assert_eq!(e.batches, 102);
    assert_eq!(e.cache_hits, 1);
    assert_eq!(e.skipped, 1);
    // Nearest-rank percentiles over the exact 1..=100 samples.
    assert_eq!(e.p50_us, 50);
    assert_eq!(e.p95_us, 95);
    assert_eq!(e.p99_us, 99);
    assert_eq!(e.max_us, 100);
    assert_eq!(
        (e.retries, e.circuit_opens, e.circuit_rejections, e.failures),
        (2, 1, 3, 1)
    );
}

#[test]
fn run_report_aggregates_convergence_federation_and_metrics() {
    let events = vec![
        Event::EpisodeEnd {
            episode: 1,
            precision: 0.8,
            recall: 0.5,
            f_measure: 0.6154,
            added: 10,
            removed: 4,
            rollbacks: 1,
            threads: 2,
            duration_us: 1500,
            recovered_from: 0,
            trust_admitted: 0,
            trust_deferred: 0,
            trust_cascades: 0,
            degraded: false,
        },
        Event::EpisodeEnd {
            episode: 2,
            precision: 0.9,
            recall: 0.6,
            f_measure: 0.72,
            added: 6,
            removed: 1,
            rollbacks: 0,
            threads: 2,
            duration_us: 1200,
            recovered_from: 0,
            trust_admitted: 0,
            trust_deferred: 0,
            trust_cascades: 0,
            degraded: false,
        },
        Event::FederatedQuery {
            patterns: 2,
            answers: 7,
            provenance_answers: 3,
            probes: 40,
            pruned_probes: 0,
            bound_join_iterations: 9,
            sameas_expansions: 4,
            retries: 3,
            skipped_sources: 1,
            cache: true,
            cache_hits: 5,
            cache_misses: 5,
            catalog: false,
            rewrites: 0,
            threads: 2,
            duration_us: 99,
        },
        Event::ParisIteration {
            iteration: 1,
            matches: 117,
            duration_us: 5000,
        },
        Event::BlacklistHit { left: 1, right: 2 },
    ];
    let mut report = alex_telemetry::RunReport::new();
    report.add_events(&events);
    report.add_metrics_dump("# TYPE alex_links_added_total counter\nalex_links_added_total 16\n");
    report.add_metrics_dump("alex_links_added_total 4\n");

    assert_eq!(report.runs, 1);
    assert_eq!(report.episodes.len(), 2);
    assert_eq!(report.episodes[1].churn, 7);
    assert_eq!(report.federation.queries, 1);
    assert_eq!(report.federation.degraded_queries, 1);
    assert!((report.federation.cache_hit_ratio() - 0.5).abs() < 1e-9);
    assert!((report.federation.completeness() - 0.0).abs() < 1e-9);
    assert_eq!(report.paris_iterations, 1);
    assert_eq!(report.paris_final_matches, 117);
    assert_eq!(report.blacklist_hits, 1);
    // Metrics dumps accumulate across runs.
    assert_eq!(report.metrics.get("alex_links_added_total"), Some(&20.0));

    let table = report.render_table();
    assert!(
        table.contains("run report: 1 run(s), 2 episode(s)"),
        "{table}"
    );
    assert!(table.contains("precision"), "{table}");
    assert!(table.contains("federation: 1 queries"), "{table}");
    assert!(
        table.contains("paris: 1 iteration(s), final matches 117"),
        "{table}"
    );
    assert!(table.contains("alex_links_added_total"), "{table}");

    let json = report.to_json();
    let value = alex_telemetry::json::parse_value_str(&json)
        .unwrap_or_else(|e| panic!("report json: {e}\n{json}"));
    let obj = value.as_obj().expect("object");
    for key in ["episodes", "federation", "endpoints", "paris", "metrics"] {
        assert!(obj.contains_key(key), "{key} missing:\n{json}");
    }
}

#[test]
fn detach_stops_emission() {
    let log = EventLog::default();
    let sink = Arc::new(MemorySink::new());
    log.attach(sink.clone());
    log.emit_with(|| Event::Rollback { removed: 1 });
    let detached = log.detach();
    assert!(detached.is_some());
    assert!(!log.is_attached());
    log.emit_with(|| Event::Rollback { removed: 2 });
    assert_eq!(
        sink.events().len(),
        1,
        "events after detach must be dropped"
    );
}
