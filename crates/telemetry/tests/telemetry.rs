//! Unit tests for the telemetry crate: histogram boundary/percentile math,
//! concurrent span nesting, Prometheus export format, and JSONL round-trips.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use alex_telemetry::{
    span, Event, EventLog, JsonlFileSink, MemorySink, MetricsRegistry, DURATION_BUCKETS,
};

// ---------------------------------------------------------------- histograms

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("h_bounds", &[1.0, 2.0, 4.0]);
    // Exactly on a bound lands in that bound's bucket (le semantics).
    h.observe(1.0);
    h.observe(2.0);
    h.observe(4.0);
    // Above the last bound lands in +Inf.
    h.observe(100.0);
    assert_eq!(h.count(), 4);
    assert!((h.sum() - 107.0).abs() < 1e-9);

    let text = registry.render_prometheus();
    // Cumulative bucket counts: le="1" 1, le="2" 2, le="4" 3, le="+Inf" 4.
    assert!(text.contains("h_bounds_bucket{le=\"1\"} 1"), "{text}");
    assert!(text.contains("h_bounds_bucket{le=\"2\"} 2"), "{text}");
    assert!(text.contains("h_bounds_bucket{le=\"4\"} 3"), "{text}");
    assert!(text.contains("h_bounds_bucket{le=\"+Inf\"} 4"), "{text}");
    assert!(text.contains("h_bounds_count 4"), "{text}");
}

#[test]
fn histogram_percentiles_interpolate_within_bucket() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("h_pct", &[1.0, 2.0, 4.0]);
    for _ in 0..4 {
        h.observe(0.5); // bucket le=1
    }
    for _ in 0..4 {
        h.observe(3.0); // bucket le=4
    }
    // p50: target rank 4 falls at the end of the first bucket → 1.0.
    assert!((h.p50() - 1.0).abs() < 1e-9, "p50 = {}", h.p50());
    // p95: target rank 7.6, bucket (2, 4] holds ranks 5..=8;
    // 2 + 2 * (7.6 - 4) / 4 = 3.8.
    assert!((h.p95() - 3.8).abs() < 1e-9, "p95 = {}", h.p95());
}

#[test]
fn histogram_inf_bucket_clamps_to_last_bound() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("h_inf", &[1.0, 2.0, 4.0]);
    h.observe(1000.0);
    assert!((h.p99() - 4.0).abs() < 1e-9);
}

#[test]
fn empty_histogram_reports_zero() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("h_empty", DURATION_BUCKETS);
    assert_eq!(h.count(), 0);
    assert_eq!(h.p50(), 0.0);
}

// ------------------------------------------------------------------- spans

#[test]
fn concurrent_span_nesting_keeps_paths_per_thread() {
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                let _outer = span("tst_outer");
                for _ in 0..3 {
                    let inner = span("tst_inner");
                    assert_eq!(inner.path(), "tst_outer/tst_inner");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let spans = alex_telemetry::global().spans();
    let outer = spans.get("tst_outer").expect("outer span recorded");
    let inner = spans
        .get("tst_outer/tst_inner")
        .expect("inner span recorded");
    assert_eq!(outer.count, 8);
    assert_eq!(inner.count, 24);
    assert!(
        outer.total >= inner.total / 8,
        "outer spans contain their inners"
    );
    assert!(outer.min <= outer.max);
    assert!(inner.mean() <= inner.max);
}

#[test]
fn sibling_spans_do_not_nest() {
    {
        let first = span("tst_sib_a");
        assert_eq!(first.path(), "tst_sib_a");
    }
    let second = span("tst_sib_b");
    assert_eq!(
        second.path(),
        "tst_sib_b",
        "dropped sibling must not remain on the stack"
    );
}

// -------------------------------------------------------------- prometheus

#[test]
fn prometheus_export_escapes_label_values() {
    let registry = MetricsRegistry::default();
    registry
        .counter_with_labels("requests_total", &[("path", "a\\b\"c\nd")])
        .add(3);
    let text = registry.render_prometheus();
    assert!(text.contains("# TYPE requests_total counter"), "{text}");
    assert!(
        text.contains("requests_total{path=\"a\\\\b\\\"c\\nd\"} 3"),
        "backslash, quote and newline must be escaped: {text}"
    );
}

#[test]
fn prometheus_export_has_one_type_line_per_family() {
    let registry = MetricsRegistry::default();
    registry
        .counter_with_labels("hits_total", &[("route", "a")])
        .inc();
    registry
        .counter_with_labels("hits_total", &[("route", "b")])
        .add(2);
    registry.gauge("depth").set(-4);
    let text = registry.render_prometheus();
    assert_eq!(
        text.matches("# TYPE hits_total counter").count(),
        1,
        "{text}"
    );
    assert!(text.contains("hits_total{route=\"a\"} 1"), "{text}");
    assert!(text.contains("hits_total{route=\"b\"} 2"), "{text}");
    assert!(text.contains("# TYPE depth gauge"), "{text}");
    assert!(text.contains("depth -4"), "{text}");
}

#[test]
fn json_export_includes_percentiles() {
    let registry = MetricsRegistry::default();
    let h = registry.histogram("lat", &[1.0, 2.0]);
    h.observe(0.5);
    let json = registry.render_json();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains("\"name\":\"lat\""), "{json}");
    assert!(json.contains("\"p50\""), "{json}");
}

// ------------------------------------------------------------------ events

fn all_event_variants() -> Vec<Event> {
    vec![
        Event::EpisodeStart { episode: 1 },
        Event::EpisodeEnd {
            episode: 1,
            precision: 0.875,
            recall: 0.5,
            f_measure: 0.6363,
            added: 10,
            removed: 3,
            rollbacks: 1,
            threads: 4,
            duration_us: 1234,
            recovered_from: 0,
        },
        Event::FeedbackApplied {
            positive: true,
            added: 2,
            removed: 0,
        },
        Event::ExplorationAction {
            action: "Approve(7)".to_string(),
        },
        Event::LinkAdded { left: 4, right: 9 },
        Event::LinkRemoved { left: 4, right: 9 },
        Event::BlacklistHit { left: 1, right: 2 },
        Event::Rollback { removed: 5 },
        Event::FederatedQuery {
            patterns: 2,
            answers: 7,
            provenance_answers: 3,
            probes: 40,
            bound_join_iterations: 9,
            sameas_expansions: 4,
            retries: 3,
            skipped_sources: 1,
            cache: true,
            cache_hits: 5,
            cache_misses: 2,
            threads: 2,
            duration_us: 99,
        },
        Event::ParisIteration {
            iteration: 2,
            matches: 117,
            duration_us: 5000,
        },
        Event::BenchSnapshot {
            label: "fig4 \"dbpedia\"\n".to_string(),
            episodes: 40,
            f_measure: 0.91,
            duration_us: 7_000_000,
        },
    ]
}

#[test]
fn every_event_variant_round_trips_through_json() {
    for event in all_event_variants() {
        let line = event.to_json();
        let parsed = Event::parse(&line).unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
        assert_eq!(parsed, event, "round-trip mismatch for {line}");
    }
}

/// The parallel execution layer records its configured thread count on
/// the episode and federated-query events.
#[test]
fn episode_and_query_events_carry_thread_count() {
    for event in all_event_variants() {
        match &event {
            Event::EpisodeEnd { threads, .. } => {
                assert_eq!(*threads, 4);
                assert!(event.to_json().contains("\"threads\":4"));
            }
            Event::FederatedQuery { threads, .. } => {
                assert_eq!(*threads, 2);
                assert!(event.to_json().contains("\"threads\":2"));
            }
            _ => {}
        }
    }
    // A line without the field fails to parse — the schema is mandatory,
    // not best-effort, so dashboards can rely on it.
    let missing = "{\"type\":\"episode_end\",\"episode\":1,\"precision\":1.0,\
                   \"recall\":1.0,\"f_measure\":1.0,\"added\":0,\"removed\":0,\
                   \"rollbacks\":0,\"duration_us\":1}";
    assert!(Event::parse(missing).is_err());
}

#[test]
fn jsonl_file_sink_round_trips_through_disk() {
    let path = std::env::temp_dir().join(format!("alex-telemetry-{}.jsonl", std::process::id()));
    let log = EventLog::default();
    log.attach(Arc::new(JsonlFileSink::create(&path).unwrap()));
    let events = all_event_variants();
    for event in &events {
        let e = event.clone();
        log.emit_with(move || e);
    }
    log.detach();

    let content = std::fs::read_to_string(&path).unwrap();
    let parsed: Vec<Event> = content.lines().map(|l| Event::parse(l).unwrap()).collect();
    assert_eq!(parsed, events);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn emit_with_is_lazy_without_a_sink() {
    let log = EventLog::default();
    let built = AtomicBool::new(false);
    log.emit_with(|| {
        built.store(true, Ordering::Relaxed);
        Event::EpisodeStart { episode: 1 }
    });
    assert!(
        !built.load(Ordering::Relaxed),
        "closure must not run without a sink"
    );

    let sink = Arc::new(MemorySink::new());
    log.attach(sink.clone());
    log.emit_with(|| {
        built.store(true, Ordering::Relaxed);
        Event::EpisodeStart { episode: 2 }
    });
    assert!(built.load(Ordering::Relaxed));
    assert_eq!(sink.events(), vec![Event::EpisodeStart { episode: 2 }]);
}

#[test]
fn detach_stops_emission() {
    let log = EventLog::default();
    let sink = Arc::new(MemorySink::new());
    log.attach(sink.clone());
    log.emit_with(|| Event::Rollback { removed: 1 });
    let detached = log.detach();
    assert!(detached.is_some());
    assert!(!log.is_attached());
    log.emit_with(|| Event::Rollback { removed: 2 });
    assert_eq!(
        sink.events().len(),
        1,
        "events after detach must be dropped"
    );
}
