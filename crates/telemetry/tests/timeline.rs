//! Tests for the global timeline recorder. The recorder is process-wide
//! state (enable flag, capacity, finished-buffer collector), so every test
//! here serializes on one mutex and drains leftovers before recording.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use alex_telemetry::timeline::{self, TimelineKind, DEFAULT_CAPACITY};

fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn begin_end_round_trips_through_drain() {
    let _guard = exclusive();
    let _ = timeline::drain();
    timeline::enable();

    let path: Arc<str> = Arc::from("t/outer");
    let began = timeline::begin("outer", &path, None);
    assert!(began, "begin admitted while enabled");
    timeline::instant("mark");
    timeline::end(began);

    timeline::disable();
    let traces = timeline::drain();
    assert_eq!(traces.len(), 1, "only this thread recorded");
    let events = &traces[0].events;
    assert_eq!(events.len(), 3);
    assert!(matches!(
        &events[0].kind,
        TimelineKind::Begin { name: "outer", .. }
    ));
    assert!(matches!(
        &events[1].kind,
        TimelineKind::Instant { name: "mark" }
    ));
    assert!(matches!(&events[2].kind, TimelineKind::End));
    assert!(events[0].ts_us <= events[2].ts_us, "timestamps monotone");
    assert_eq!(traces[0].dropped, 0);
}

#[test]
fn full_buffer_drops_whole_spans_and_stays_balanced() {
    let _guard = exclusive();
    let _ = timeline::drain();
    timeline::set_capacity(8);
    timeline::enable();

    let path: Arc<str> = Arc::from("t/deep");
    // Nested begins: admission reserves an End slot per Begin, so with
    // capacity 8 exactly four begins fit and the fifth is rejected.
    let admitted: Vec<bool> = (0..5)
        .map(|_| timeline::begin("deep", &path, None))
        .collect();
    assert_eq!(admitted, vec![true, true, true, true, false]);
    // No room left for an instant either: 4 events + 4 reserved ends.
    timeline::instant("squeezed");
    // Close them all, passing each begin's own admission result back.
    for &began in admitted.iter().rev() {
        timeline::end(began);
    }

    timeline::disable();
    let traces = timeline::drain();
    timeline::set_capacity(DEFAULT_CAPACITY);
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    // Exactly at capacity, and balanced: 4 begins, 4 ends, nothing else.
    assert_eq!(trace.events.len(), 8);
    let begins = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, TimelineKind::Begin { .. }))
        .count();
    let ends = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, TimelineKind::End))
        .count();
    assert_eq!((begins, ends), (4, 4));
    // The rejected begin and the rejected instant were counted.
    assert_eq!(trace.dropped, 2);
}

#[test]
fn end_still_records_when_disabled_mid_span() {
    let _guard = exclusive();
    let _ = timeline::drain();
    timeline::enable();

    let path: Arc<str> = Arc::from("t/crossing");
    let began = timeline::begin("crossing", &path, None);
    assert!(began);
    timeline::disable();
    // The recorder is off, but the admitted begin reserved this slot — the
    // end must land so the exported trace stays balanced.
    timeline::end(began);
    // A begin after disable records nothing and returns false.
    assert!(!timeline::begin("late", &path, None));

    let traces = timeline::drain();
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].events.len(), 2);
    assert!(matches!(&traces[0].events[1].kind, TimelineKind::End));
}

#[test]
fn drain_merges_worker_thread_buffers() {
    let _guard = exclusive();
    let _ = timeline::drain();
    timeline::enable();

    let path: Arc<str> = Arc::from("t/main");
    let began = timeline::begin("main", &path, None);
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let wpath: Arc<str> = Arc::from("t/worker");
                let began = timeline::begin("worker", &wpath, None);
                timeline::end(began);
                // Scoped threads must flush before returning: the scope
                // unblocks before TLS destructors run, so the drop flush
                // alone would race the drain below (this mirrors what the
                // worker pool does).
                timeline::flush_current_thread();
            });
        }
    });
    timeline::end(began);

    timeline::disable();
    let traces = timeline::drain();
    // Main plus two workers, each with a balanced begin/end pair.
    assert_eq!(traces.len(), 3);
    for trace in &traces {
        assert_eq!(trace.events.len(), 2);
    }
    // Tids are unique and sorted.
    let tids: Vec<u64> = traces.iter().map(|t| t.tid).collect();
    let mut sorted = tids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(tids, sorted);
}
