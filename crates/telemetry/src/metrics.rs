//! Global metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms, exportable as Prometheus text format or JSON.
//!
//! Handles are `Arc`s onto plain atomics, so the hot path touches only a
//! relaxed `fetch_add` — registration (name lookup under a mutex) happens
//! once per call site via the [`counter!`](crate::counter) /
//! [`histogram!`](crate::histogram) macros, which cache the handle in a
//! `OnceLock`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::ObjectWriter;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram with fixed, caller-supplied bucket upper bounds.
///
/// Observations land in the first bucket whose upper bound is `>=` the
/// value; values above the last bound land in the implicit `+Inf` bucket.
/// Percentiles are estimated by linear interpolation inside the bucket
/// containing the target rank.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// One per bound plus the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    /// Sum of observations, stored as f64 bits.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// Default bucket bounds for durations in seconds: 1µs … 10s, roughly
/// quadrupling.
pub const DURATION_BUCKETS: &[f64] = &[
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1e-3, 4e-3, 1.6e-2, 6.4e-2, 0.25, 1.0, 4.0, 10.0,
];

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop to accumulate the f64 sum without a lock.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Record a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `p`-th percentile (`0.0..=100.0`).
    ///
    /// Interpolates linearly within the bucket containing the target rank
    /// `p/100 · count`. The first bucket's lower edge is 0; observations in
    /// the `+Inf` bucket are clamped to the last finite bound.
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (p / 100.0).clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    // +Inf bucket: clamp to the last finite bound.
                    None => return *self.bounds.last().expect("non-empty bounds"),
                };
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
            cum += c;
        }
        *self.bounds.last().expect("non-empty bounds")
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }
}

/// Metric name plus labels, used as the registry key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The registry: a name→metric map guarded by a mutex. Lookups happen at
/// handle-registration time only; updates go straight to the atomics.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// Get or create the counter `name` (no labels).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with_labels(name, &[])
    }

    /// Get or create a labeled counter.
    ///
    /// Panics if `name` with these labels is already registered as a
    /// different metric type.
    pub fn counter_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let key = MetricKey::new(name, &[]);
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or create the histogram `name` with the given bucket bounds.
    /// Bounds are fixed by the first registration; later callers get the
    /// existing histogram regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let key = MetricKey::new(name, &[]);
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Render every metric in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_typed: Option<(String, &str)> = None;
        for (key, metric) in metrics.iter() {
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            // One TYPE line per metric family, even with many label sets.
            if last_typed.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((key.name.as_str(), kind))
            {
                let _ = writeln!(out, "# TYPE {} {kind}", key.name);
                last_typed = Some((key.name.clone(), kind));
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_series(&key.name, &key.labels, None),
                        c.get()
                    );
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_series(&key.name, &key.labels, None),
                        g.get()
                    );
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, bucket) in h.buckets.iter().enumerate() {
                        cum += bucket.load(Ordering::Relaxed);
                        let le = match h.bounds.get(i) {
                            Some(b) => format_f64(*b),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{} {cum}",
                            render_series(&format!("{}_bucket", key.name), &key.labels, Some(&le)),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_series(&format!("{}_sum", key.name), &key.labels, None),
                        format_f64(h.sum()),
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_series(&format!("{}_count", key.name), &key.labels, None),
                        h.count(),
                    );
                }
            }
        }
        out
    }

    /// Render every metric as a JSON array of flat objects.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::from("[");
        for (i, (key, metric)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut w = ObjectWriter::new();
            w.str("name", &key.name);
            for (k, v) in &key.labels {
                w.str(&format!("label_{k}"), v);
            }
            match metric {
                Metric::Counter(c) => {
                    w.str("type", "counter").u64("value", c.get());
                }
                Metric::Gauge(g) => {
                    w.str("type", "gauge");
                    let v = g.get();
                    if v >= 0 {
                        w.u64("value", v as u64);
                    } else {
                        w.f64("value", v as f64);
                    }
                }
                Metric::Histogram(h) => {
                    w.str("type", "histogram")
                        .u64("count", h.count())
                        .f64("sum", h.sum())
                        .f64("p50", h.p50())
                        .f64("p95", h.p95())
                        .f64("p99", h.p99());
                }
            }
            out.push_str(&w.finish());
        }
        out.push(']');
        out
    }
}

/// Render `name{labels...}` with Prometheus label-value escaping; `le`
/// (for histogram buckets) is appended after the user labels.
fn render_series(name: &str, labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, &mut out);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
    out
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Prometheus-style float formatting (Rust's shortest round-trip display).
fn format_f64(v: f64) -> String {
    format!("{v}")
}
