//! Minimal hand-rolled JSON support for the event log and trace tooling:
//! a string escaper, an object writer, and a recursive-descent parser.
//!
//! The event log itself emits *flat* objects (string / integer / float /
//! bool values only) and [`parse_object`] keeps rejecting non-object
//! top-level input for it. The nested [`JsonValue::Obj`] / [`JsonValue::Arr`]
//! variants exist for the trace validator ([`crate::trace`]), which must
//! read back full Chrome trace-event files. This is still deliberately not
//! a general JSON library — just enough for our own round-trips.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (always serialized with a decimal point or exponent).
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A nested object.
    Obj(BTreeMap<String, JsonValue>),
    /// An array.
    Arr(Vec<JsonValue>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as f64 (accepts both int and float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape `s` into `out` as JSON string *contents* (no surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Incremental writer for one flat JSON object.
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    /// Start an object: `{`.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Write a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Write an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Write a float field. Non-finite values serialize as `null`-free
    /// sentinels (`0.0`) — the event log never produces them.
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        let v = if value.is_finite() { value } else { 0.0 };
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep a decimal point so ints and floats round-trip distinctly.
            let _ = write!(self.buf, "{v:.1}");
        } else {
            let _ = write!(self.buf, "{v}");
        }
        self
    }

    /// Write a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Write a pre-rendered JSON value verbatim — used to nest an object
    /// built by another writer (the caller guarantees it is valid JSON).
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the rendered line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Parse one JSON object (as produced by [`ObjectWriter`]). The top level
/// must be an object — arrays and scalars are rejected, which is what the
/// event-log parser wants; use [`parse_value_str`] for arbitrary values.
pub fn parse_object(input: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let map = p.parse_object_body()?;
    p.finish(map)
}

/// Parse a whole JSON value of any type (object, array, or scalar),
/// requiring that it spans the entire input.
pub fn parse_value_str(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.finish(value)
}

/// Nesting cap for the recursive parser — far above anything our trace
/// files produce, low enough to fail before a stack overflow on garbage.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn finish<T>(&mut self, value: T) -> Result<T, String> {
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(value)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", b as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b'{') => {
                self.pos += 1;
                self.parse_object_body().map(JsonValue::Obj)
            }
            Some(b'[') => self.parse_array(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    /// Parse object fields after the opening `{` has been consumed.
    fn parse_object_body(&mut self) -> Result<BTreeMap<String, JsonValue>, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(map);
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected keyword {word}"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|e| format!("bad float {text}: {e}"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|e| format!("bad int {text}: {e}"))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex}"))?;
                        self.pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err("bad utf-8 in string".into()),
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return Err("truncated utf-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "bad utf-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_parser_restores() {
        let mut w = ObjectWriter::new();
        w.str("name", "a\"b\\c\nd\te\u{1}f\u{e9}\u{4e16}")
            .u64("n", 42)
            .f64("x", 2.5)
            .f64("whole", 3.0)
            .bool("ok", true);
        let line = w.finish();
        let map = parse_object(&line).unwrap();
        assert_eq!(
            map["name"].as_str().unwrap(),
            "a\"b\\c\nd\te\u{1}f\u{e9}\u{4e16}"
        );
        assert_eq!(map["n"].as_u64(), Some(42));
        assert_eq!(map["x"].as_f64(), Some(2.5));
        assert_eq!(map["whole"], JsonValue::Float(3.0));
        assert_eq!(map["ok"].as_bool(), Some(true));
    }

    #[test]
    fn empty_object_round_trips() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object(" { } ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("{").is_err());
        assert!(parse_object("{\"a\":}").is_err());
        assert!(parse_object("{\"a\":1} extra").is_err());
        assert!(parse_object("[1,2]").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let map = parse_object("{\"a\":-7,\"b\":1.5e3}").unwrap();
        assert_eq!(map["a"], JsonValue::Int(-7));
        assert_eq!(map["b"], JsonValue::Float(1500.0));
    }

    #[test]
    fn nested_objects_and_arrays_parse() {
        let v = parse_value_str("[{\"a\":[1,2,{\"b\":true}]},[],{}]").unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        let inner = arr[0].as_obj().unwrap()["a"].as_arr().unwrap();
        assert_eq!(inner[0], JsonValue::Int(1));
        assert_eq!(inner[2].as_obj().unwrap()["b"].as_bool(), Some(true));
        assert_eq!(arr[1], JsonValue::Arr(Vec::new()));
        assert_eq!(arr[2], JsonValue::Obj(BTreeMap::new()));

        // parse_object still rejects non-object top level.
        assert!(parse_object("[{\"a\":1}]").is_err());
        // Unterminated nesting and depth bombs fail, not overflow.
        assert!(parse_value_str("[[[").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_value_str(&deep).is_err());
    }
}
