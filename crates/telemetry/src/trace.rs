//! Chrome trace-event export and validation.
//!
//! [`chrome_trace_json`] renders drained [`ThreadTrace`]s as a Chrome
//! trace-event JSON array (the format `chrome://tracing` and Perfetto
//! load): `B`/`E` duration events per thread, `i` instants, and `M`
//! metadata naming the process and each thread. Pool dispatch and chunk
//! spans carry their [`PoolLabels`](crate::timeline::PoolLabels) in
//! `args`, so a worker's chunks are visibly tied to the dispatch that
//! issued them.
//!
//! [`validate_chrome_trace`] is the reverse direction, used by tests and
//! the CI trace-schema gate: parse a trace file, check every `B` has a
//! matching `E` on the same thread with non-decreasing timestamps, and
//! check every chunk span lies inside a dispatch span with the same
//! `(pool, seq)`.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::json::{parse_value_str, JsonValue, ObjectWriter};
use crate::timeline::{PoolRole, ThreadTrace, TimelineKind};

/// Render thread traces as a Chrome trace-event JSON array, one event per
/// line (valid JSON *and* greppable).
pub fn chrome_trace_json(traces: &[ThreadTrace]) -> String {
    let mut lines: Vec<String> = Vec::new();

    let mut meta = ObjectWriter::new();
    meta.str("ph", "M")
        .u64("pid", 1)
        .u64("tid", 0)
        .str("name", "process_name")
        .raw("args", "{\"name\":\"alex\"}");
    lines.push(meta.finish());

    let min_tid = traces.iter().map(|t| t.tid).min().unwrap_or(0);
    for trace in traces {
        let mut w = ObjectWriter::new();
        let mut args = ObjectWriter::new();
        args.str("name", &thread_label(trace, min_tid));
        w.str("ph", "M")
            .u64("pid", 1)
            .u64("tid", trace.tid)
            .str("name", "thread_name")
            .raw("args", &args.finish());
        lines.push(w.finish());
    }

    for trace in traces {
        for event in &trace.events {
            let mut w = ObjectWriter::new();
            match &event.kind {
                TimelineKind::Begin { name, path, pool } => {
                    w.str("ph", "B")
                        .u64("pid", 1)
                        .u64("tid", trace.tid)
                        .u64("ts", event.ts_us)
                        .str("name", name)
                        .str("cat", if pool.is_some() { "pool" } else { "span" });
                    let mut args = ObjectWriter::new();
                    args.str("path", path);
                    if let Some(labels) = pool {
                        args.str("pool", labels.pool).u64("seq", labels.seq);
                        match labels.role {
                            PoolRole::Dispatch { chunks, workers } => {
                                args.str("role", "dispatch")
                                    .u64("chunks", chunks as u64)
                                    .u64("workers", workers as u64);
                            }
                            PoolRole::Chunk {
                                worker,
                                chunk,
                                items,
                            } => {
                                args.str("role", "chunk")
                                    .u64("worker", worker as u64)
                                    .u64("chunk", chunk as u64)
                                    .u64("items", items as u64);
                            }
                        }
                    }
                    w.raw("args", &args.finish());
                }
                TimelineKind::End => {
                    w.str("ph", "E")
                        .u64("pid", 1)
                        .u64("tid", trace.tid)
                        .u64("ts", event.ts_us);
                }
                TimelineKind::Instant { name } => {
                    w.str("ph", "i")
                        .u64("pid", 1)
                        .u64("tid", trace.tid)
                        .u64("ts", event.ts_us)
                        .str("name", name)
                        .str("s", "t");
                }
            }
            lines.push(w.finish());
        }
    }

    let mut out = String::from("[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Human label for one thread's track: derived from its first chunk-role
/// begin (`{pool} worker {w}`), else `main` for the lowest tid, else
/// `thread {tid}`.
fn thread_label(trace: &ThreadTrace, min_tid: u64) -> String {
    for event in &trace.events {
        if let TimelineKind::Begin {
            pool: Some(labels), ..
        } = &event.kind
        {
            if let PoolRole::Chunk { worker, .. } = labels.role {
                return format!("{} worker {worker}", labels.pool);
            }
        }
    }
    if trace.tid == min_tid {
        String::from("main")
    } else {
        format!("thread {}", trace.tid)
    }
}

/// Write [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &str, traces: &[ThreadTrace]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(traces))
}

/// What [`validate_chrome_trace`] verified, summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Distinct threads with at least one non-metadata event.
    pub threads: usize,
    /// Total non-metadata events.
    pub events: usize,
    /// Completed B/E span pairs.
    pub spans: usize,
    /// Spans labelled as pool chunks.
    pub chunk_spans: usize,
    /// Spans labelled as pool dispatches.
    pub dispatch_spans: usize,
    /// Pool names seen, sorted.
    pub pools: Vec<String>,
}

struct OpenSpan {
    ts: u64,
    pool: Option<(String, u64, bool)>, // (pool, seq, is_dispatch)
}

struct DoneSpan {
    ts: u64,
    end: u64,
    pool: Option<(String, u64, bool)>,
}

/// Parse and structurally validate a Chrome trace-event JSON string.
///
/// Checks: top level is an array of objects; every event has a known `ph`;
/// `B`/`E` pairs balance per `(pid, tid)` with `E.ts >= B.ts`; and every
/// chunk span is enclosed by a dispatch span with the same `(pool, seq)`.
pub fn validate_chrome_trace(json: &str) -> Result<TraceCheck, String> {
    let value = parse_value_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = value.as_arr().ok_or("top level is not an array")?;

    let mut stacks: HashMap<(u64, u64), Vec<OpenSpan>> = HashMap::new();
    let mut done: Vec<DoneSpan> = Vec::new();
    let mut threads: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut pools: BTreeSet<String> = BTreeSet::new();
    let mut non_meta = 0usize;

    let field_u64 = |obj: &BTreeMap<String, JsonValue>, key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event missing numeric {key:?}"))
    };

    for (i, event) in events.iter().enumerate() {
        let obj = event
            .as_obj()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} missing \"ph\""))?;
        let pid = field_u64(obj, "pid")?;
        let tid = field_u64(obj, "tid")?;
        match ph {
            "M" => continue,
            "B" => {
                non_meta += 1;
                threads.insert((pid, tid));
                let ts = field_u64(obj, "ts")?;
                obj.get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("B event {i} missing \"name\""))?;
                let pool = match obj.get("args").and_then(JsonValue::as_obj) {
                    Some(args) => pool_labels(args, i)?,
                    None => None,
                };
                if let Some((name, _, _)) = &pool {
                    pools.insert(name.clone());
                }
                stacks
                    .entry((pid, tid))
                    .or_default()
                    .push(OpenSpan { ts, pool });
            }
            "E" => {
                non_meta += 1;
                threads.insert((pid, tid));
                let ts = field_u64(obj, "ts")?;
                let open = stacks
                    .get_mut(&(pid, tid))
                    .and_then(Vec::pop)
                    .ok_or_else(|| format!("event {i}: E without open B on tid {tid}"))?;
                if ts < open.ts {
                    return Err(format!(
                        "event {i}: span ends at {ts} before it began at {}",
                        open.ts
                    ));
                }
                done.push(DoneSpan {
                    ts: open.ts,
                    end: ts,
                    pool: open.pool,
                });
            }
            "i" => {
                non_meta += 1;
                threads.insert((pid, tid));
                field_u64(obj, "ts")?;
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }

    for ((_, tid), stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} B event(s) without matching E",
                stack.len()
            ));
        }
    }

    // Every chunk must sit inside a dispatch with the same (pool, seq).
    let mut dispatches: HashMap<(String, u64), (u64, u64)> = HashMap::new();
    let mut dispatch_spans = 0usize;
    let mut chunk_spans = 0usize;
    for span in &done {
        if let Some((pool, seq, true)) = &span.pool {
            dispatches.insert((pool.clone(), *seq), (span.ts, span.end));
            dispatch_spans += 1;
        }
    }
    for span in &done {
        if let Some((pool, seq, false)) = &span.pool {
            chunk_spans += 1;
            let (d_ts, d_end) = dispatches
                .get(&(pool.clone(), *seq))
                .ok_or_else(|| format!("chunk span in pool {pool:?} seq {seq} has no dispatch"))?;
            if span.ts < *d_ts || span.end > *d_end {
                return Err(format!(
                    "chunk [{}, {}] outside dispatch [{d_ts}, {d_end}] (pool {pool:?} seq {seq})",
                    span.ts, span.end
                ));
            }
        }
    }

    Ok(TraceCheck {
        threads: threads.len(),
        events: non_meta,
        spans: done.len(),
        chunk_spans,
        dispatch_spans,
        pools: pools.into_iter().collect(),
    })
}

/// Extract `(pool, seq, is_dispatch)` from a B event's args, if the span
/// is pool-labelled.
fn pool_labels(
    args: &BTreeMap<String, JsonValue>,
    i: usize,
) -> Result<Option<(String, u64, bool)>, String> {
    let Some(role) = args.get("role").and_then(JsonValue::as_str) else {
        return Ok(None);
    };
    let pool = args
        .get("pool")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("event {i}: role without pool"))?;
    let seq = args
        .get("seq")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("event {i}: role without seq"))?;
    let is_dispatch = match role {
        "dispatch" => true,
        "chunk" => false,
        other => return Err(format!("event {i}: unknown role {other:?}")),
    };
    Ok(Some((pool.to_string(), seq, is_dispatch)))
}
