//! Post-run attribution over drained timeline traces.
//!
//! [`attribute`] replays each thread's begin/end events with a stack and
//! produces:
//!
//! * **Phase self time** — for every plain span path, total wall time and
//!   *self* time (total minus enclosed children, including enclosed pool
//!   dispatches), so the table answers "where does wall-clock actually
//!   go" rather than double-counting nested spans.
//! * **Per-pool attribution** — per-worker busy time and busy fraction,
//!   chunk-cost skew (max/mean chunk duration), a critical-path estimate
//!   (per dispatch, the busiest worker's summed chunk time — the floor on
//!   wall time any schedule of those chunks could reach), and parallel
//!   efficiency (busy time over worker-seconds available).
//!
//! Rendered as the `--profile` exit table ([`Attribution::render_table`])
//! and embedded in `BENCH_parallel.json` ([`Attribution::to_json`]).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;

use crate::json::ObjectWriter;
use crate::timeline::{PoolLabels, PoolRole, ThreadTrace, TimelineKind};

/// One worker's share of a pool's work.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStat {
    /// Worker index within the pool.
    pub worker: u32,
    /// Chunks this worker executed.
    pub chunks: u64,
    /// Summed chunk execution time.
    pub busy_us: u64,
    /// `busy_us` over the pool's total dispatch wall time.
    pub busy_frac: f64,
}

/// Attribution for one named pool, aggregated over all its dispatches.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolAttribution {
    /// Pool name.
    pub pool: String,
    /// Dispatches observed.
    pub dispatches: u64,
    /// Summed caller-side dispatch wall time.
    pub wall_us: u64,
    /// Summed chunk execution time across workers.
    pub busy_us: u64,
    /// Per-worker breakdown, by worker index.
    pub workers: Vec<WorkerStat>,
    /// Longest single chunk.
    pub max_chunk_us: u64,
    /// Mean chunk duration.
    pub mean_chunk_us: f64,
    /// Chunk-cost skew: max over mean chunk duration (1.0 = uniform).
    pub chunk_skew: f64,
    /// Per dispatch, the busiest worker's summed chunk time, summed over
    /// dispatches — the wall-time floor for this chunk assignment.
    pub critical_path_us: u64,
    /// `busy_us` over worker-seconds available (Σ dispatch wall × workers).
    pub parallel_efficiency: f64,
}

/// Self-time statistics for one plain span path.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Full slash-joined span path.
    pub path: String,
    /// Completed spans at this path.
    pub count: u64,
    /// Summed wall time.
    pub total_us: u64,
    /// Summed wall time minus enclosed child spans.
    pub self_us: u64,
}

/// The full attribution result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attribution {
    /// Plain span paths, sorted by self time descending.
    pub phases: Vec<PhaseStat>,
    /// Pools, sorted by name.
    pub pools: Vec<PoolAttribution>,
    /// Timeline events dropped by full buffers (a non-zero value means
    /// the numbers below undercount).
    pub dropped_events: u64,
}

#[derive(Default)]
struct PoolAgg {
    dispatches: u64,
    wall_us: u64,
    /// Σ dispatch wall × workers, for the efficiency denominator.
    worker_us_available: u64,
    workers: BTreeMap<u32, (u64, u64)>, // worker -> (chunks, busy_us)
    chunk_count: u64,
    chunk_total_us: u64,
    max_chunk_us: u64,
    /// (seq, worker) -> busy, for the per-dispatch critical path.
    per_dispatch_worker: BTreeMap<(u64, u32), u64>,
}

struct Frame {
    path: Option<String>,
    ts: u64,
    child_us: u64,
    pool: Option<Box<PoolLabels>>,
}

/// Compute phase self-time and per-pool worker attribution from drained
/// thread traces. Tolerates unbalanced input: stray ends are ignored and
/// spans still open at the end of a trace contribute nothing.
pub fn attribute(traces: &[ThreadTrace]) -> Attribution {
    let mut phases: BTreeMap<String, PhaseStat> = BTreeMap::new();
    let mut pools: BTreeMap<&'static str, PoolAgg> = BTreeMap::new();
    let mut dropped = 0u64;

    for trace in traces {
        dropped += trace.dropped;
        let mut stack: Vec<Frame> = Vec::new();
        for event in &trace.events {
            match &event.kind {
                TimelineKind::Begin { path, pool, .. } => {
                    stack.push(Frame {
                        path: pool.is_none().then(|| path.to_string()),
                        ts: event.ts_us,
                        child_us: 0,
                        pool: pool.clone(),
                    });
                }
                TimelineKind::End => {
                    let Some(frame) = stack.pop() else { continue };
                    let dur = event.ts_us.saturating_sub(frame.ts);
                    if let Some(parent) = stack.last_mut() {
                        parent.child_us += dur;
                    }
                    match frame.pool {
                        None => {
                            if let Some(path) = frame.path {
                                let stat =
                                    phases.entry(path.clone()).or_insert_with(|| PhaseStat {
                                        path,
                                        count: 0,
                                        total_us: 0,
                                        self_us: 0,
                                    });
                                stat.count += 1;
                                stat.total_us += dur;
                                stat.self_us += dur.saturating_sub(frame.child_us);
                            }
                        }
                        Some(labels) => {
                            let agg = pools.entry(labels.pool).or_default();
                            match labels.role {
                                PoolRole::Dispatch { workers, .. } => {
                                    agg.dispatches += 1;
                                    agg.wall_us += dur;
                                    agg.worker_us_available += dur * workers as u64;
                                }
                                PoolRole::Chunk { worker, .. } => {
                                    let w = agg.workers.entry(worker).or_insert((0, 0));
                                    w.0 += 1;
                                    w.1 += dur;
                                    agg.chunk_count += 1;
                                    agg.chunk_total_us += dur;
                                    agg.max_chunk_us = agg.max_chunk_us.max(dur);
                                    *agg.per_dispatch_worker
                                        .entry((labels.seq, worker))
                                        .or_insert(0) += dur;
                                }
                            }
                        }
                    }
                }
                TimelineKind::Instant { .. } => {}
            }
        }
    }

    let mut phase_list: Vec<PhaseStat> = phases.into_values().collect();
    phase_list.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.path.cmp(&b.path)));

    let pool_list = pools
        .into_iter()
        .map(|(name, agg)| {
            let busy_us: u64 = agg.workers.values().map(|(_, b)| b).sum();
            let mean_chunk_us = if agg.chunk_count > 0 {
                agg.chunk_total_us as f64 / agg.chunk_count as f64
            } else {
                0.0
            };
            // Per dispatch, the busiest worker bounds that dispatch's wall
            // time from below; summed over dispatches.
            let mut per_dispatch_max: BTreeMap<u64, u64> = BTreeMap::new();
            for (&(seq, _), &busy) in &agg.per_dispatch_worker {
                let slot = per_dispatch_max.entry(seq).or_insert(0);
                *slot = (*slot).max(busy);
            }
            PoolAttribution {
                pool: name.to_string(),
                dispatches: agg.dispatches,
                wall_us: agg.wall_us,
                busy_us,
                workers: agg
                    .workers
                    .iter()
                    .map(|(&worker, &(chunks, busy))| WorkerStat {
                        worker,
                        chunks,
                        busy_us: busy,
                        busy_frac: if agg.wall_us > 0 {
                            busy as f64 / agg.wall_us as f64
                        } else {
                            0.0
                        },
                    })
                    .collect(),
                max_chunk_us: agg.max_chunk_us,
                mean_chunk_us,
                chunk_skew: if mean_chunk_us > 0.0 {
                    agg.max_chunk_us as f64 / mean_chunk_us
                } else {
                    0.0
                },
                critical_path_us: per_dispatch_max.values().sum(),
                parallel_efficiency: if agg.worker_us_available > 0 {
                    busy_us as f64 / agg.worker_us_available as f64
                } else {
                    0.0
                },
            }
        })
        .collect();

    Attribution {
        phases: phase_list,
        pools: pool_list,
        dropped_events: dropped,
    }
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl Attribution {
    /// Render the `--profile` exit table: phase self time, then per-pool
    /// worker busy/idle and chunk-skew numbers.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.phases.is_empty() && self.pools.is_empty() {
            out.push_str("no timeline events recorded\n");
            return out;
        }

        if !self.phases.is_empty() {
            let width = self
                .phases
                .iter()
                .map(|p| p.path.len())
                .max()
                .unwrap_or(5)
                .max("phase".len());
            out.push_str(&format!(
                "{:<width$}  {:>7}  {:>11}  {:>11}\n",
                "phase", "count", "total", "self"
            ));
            for p in &self.phases {
                out.push_str(&format!(
                    "{:<width$}  {:>7}  {:>11}  {:>11}\n",
                    p.path,
                    p.count,
                    fmt_us(p.total_us),
                    fmt_us(p.self_us)
                ));
            }
        }

        for pool in &self.pools {
            out.push_str(&format!(
                "\npool {}: {} dispatch(es), wall {}, busy {}, efficiency {:.1}%, \
                 chunk skew {:.2} (max {} / mean {}), critical path {}\n",
                pool.pool,
                pool.dispatches,
                fmt_us(pool.wall_us),
                fmt_us(pool.busy_us),
                pool.parallel_efficiency * 100.0,
                pool.chunk_skew,
                fmt_us(pool.max_chunk_us),
                fmt_us(pool.mean_chunk_us.round() as u64),
                fmt_us(pool.critical_path_us),
            ));
            out.push_str(&format!(
                "  {:>6}  {:>7}  {:>11}  {:>6}  {:>6}\n",
                "worker", "chunks", "busy", "busy%", "idle%"
            ));
            for w in &pool.workers {
                out.push_str(&format!(
                    "  {:>6}  {:>7}  {:>11}  {:>5.1}%  {:>5.1}%\n",
                    w.worker,
                    w.chunks,
                    fmt_us(w.busy_us),
                    w.busy_frac * 100.0,
                    (1.0 - w.busy_frac).max(0.0) * 100.0,
                ));
            }
        }

        if self.dropped_events > 0 {
            out.push_str(&format!(
                "\nwarning: {} timeline event(s) dropped (buffers full); numbers undercount\n",
                self.dropped_events
            ));
        }
        out
    }

    /// Serialize as a JSON object (embedded under `"attribution"` in
    /// `BENCH_parallel.json`).
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                let mut w = ObjectWriter::new();
                w.str("path", &p.path)
                    .u64("count", p.count)
                    .u64("total_us", p.total_us)
                    .u64("self_us", p.self_us);
                w.finish()
            })
            .collect();
        let pools: Vec<String> = self
            .pools
            .iter()
            .map(|p| {
                let workers: Vec<String> = p
                    .workers
                    .iter()
                    .map(|w| {
                        let mut o = ObjectWriter::new();
                        o.u64("worker", w.worker as u64)
                            .u64("chunks", w.chunks)
                            .u64("busy_us", w.busy_us)
                            .f64("busy_frac", w.busy_frac);
                        o.finish()
                    })
                    .collect();
                let mut o = ObjectWriter::new();
                o.str("pool", &p.pool)
                    .u64("dispatches", p.dispatches)
                    .u64("wall_us", p.wall_us)
                    .u64("busy_us", p.busy_us)
                    .u64("max_chunk_us", p.max_chunk_us)
                    .f64("mean_chunk_us", p.mean_chunk_us)
                    .f64("chunk_skew", p.chunk_skew)
                    .u64("critical_path_us", p.critical_path_us)
                    .f64("parallel_efficiency", p.parallel_efficiency)
                    .raw("workers", &format!("[{}]", workers.join(",")));
                o.finish()
            })
            .collect();
        let mut w = ObjectWriter::new();
        w.raw("phases", &format!("[{}]", phases.join(",")))
            .raw("pools", &format!("[{}]", pools.join(",")))
            .u64("dropped_events", self.dropped_events);
        w.finish()
    }
}
