//! Lock-free per-thread timeline recorder.
//!
//! The timeline is the raw material for the Chrome-trace exporter
//! ([`crate::trace`]) and the worker-attribution pass
//! ([`crate::attribution`]): a time-ordered log of span begin/end and
//! instant events per thread, with pool worker chunks labelled
//! `{pool, worker, chunk}` so parallel work can be attributed back to the
//! caller that dispatched it.
//!
//! # Cost model
//!
//! * **Disabled** (the default): every recording entry point first calls
//!   [`enabled`], which is a single relaxed atomic load — nothing else
//!   runs. This is the property the bench guard
//!   (`crates/bench/tests/telemetry_overhead.rs`) holds under 2%.
//! * **Enabled**: recording appends to a *thread-local* bounded buffer —
//!   no lock, no atomic RMW, no cross-thread traffic. A thread's buffer is
//!   handed to the global collector exactly once: at thread exit, on an
//!   explicit [`flush_current_thread`] (scoped pool workers flush before
//!   their scope joins — the scope unblocks before TLS destructors run),
//!   or when [`drain`] flushes the calling thread. The only mutex in the
//!   system is touched once per thread lifetime rather than per event.
//!
//! # Bounded buffers and balance
//!
//! Each thread's buffer holds at most [`capacity`] events. Admission
//! reserves a slot for the matching `End` of every admitted `Begin`, so a
//! full buffer drops whole spans (begin *and* end) and instants — never
//! just one half of a pair. Exported traces therefore always have balanced
//! B/E events per thread, which the CI trace-schema check asserts.
//! Dropped events are counted per thread and globally ([`dropped_total`]).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread event capacity.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
/// Monotonic thread ids, assigned on a thread's first recorded event.
/// Starts at 1 so the first recording thread (normally main) is tid 1.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Dispatch sequence numbers, shared by all pools so a (pool, seq) pair
/// uniquely names one dispatch.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// The process-wide time origin for timeline timestamps, fixed at the
/// first [`enable`] call.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn finished() -> &'static Mutex<Vec<ThreadTrace>> {
    static FINISHED: OnceLock<Mutex<Vec<ThreadTrace>>> = OnceLock::new();
    FINISHED.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Whether the recorder is on. One relaxed atomic load — the entire cost
/// of every disabled recording call.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on (fixing the timestamp epoch on first use).
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the recorder off. Already-recorded events stay buffered until
/// [`drain`]; spans that began while enabled still record their end.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Set the per-thread buffer capacity (floored at 8). Affects buffers
/// created after the call; intended for tests exercising the bound.
pub fn set_capacity(n: usize) {
    CAPACITY.store(n.max(8), Ordering::SeqCst);
}

/// Microseconds since the recorder epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Total events dropped by full buffers, across all threads so far.
pub fn dropped_total() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Fresh dispatch sequence number (unique per pool dispatch).
pub fn next_seq() -> u64 {
    NEXT_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// What a pool-labelled span represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolRole {
    /// The caller-side span covering one whole pool dispatch.
    Dispatch {
        /// Chunks the dispatch was split into.
        chunks: u32,
        /// Worker threads the dispatch ran on.
        workers: u32,
    },
    /// One chunk executed by one worker.
    Chunk {
        /// Worker index within the dispatch (0-based).
        worker: u32,
        /// Chunk index within the dispatch (0-based).
        chunk: u32,
        /// Items in the chunk.
        items: u32,
    },
}

/// Labels attached to pool dispatch/chunk spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolLabels {
    /// Pool name (`paris`, `space_build`, `federation`, ...).
    pub pool: &'static str,
    /// Dispatch sequence number tying chunks to their dispatch.
    pub seq: u64,
    /// Dispatch- or chunk-level detail.
    pub role: PoolRole,
}

/// The kind half of one timeline event.
#[derive(Debug, Clone)]
pub enum TimelineKind {
    /// A span opened. `path` is the full slash-joined span path; `pool`
    /// labels pool dispatch/chunk spans.
    Begin {
        /// Leaf span name.
        name: &'static str,
        /// Full slash-joined path.
        path: Arc<str>,
        /// Pool labels for dispatch/chunk spans; `None` for plain spans.
        pool: Option<Box<PoolLabels>>,
    },
    /// The innermost open span on this thread closed.
    End,
    /// A point event.
    Instant {
        /// Event name.
        name: &'static str,
    },
}

/// One recorded event: a timestamp (µs since the recorder epoch) plus kind.
#[derive(Debug, Clone)]
pub struct TimelineEvent {
    /// Microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Begin/End/Instant payload.
    pub kind: TimelineKind,
}

/// Everything one thread recorded: events in chronological order plus the
/// count of events its full buffer dropped.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Recorder-assigned thread id (1-based, in first-event order).
    pub tid: u64,
    /// Events in record order (chronological within the thread).
    pub events: Vec<TimelineEvent>,
    /// Events rejected because the buffer was full.
    pub dropped: u64,
}

struct LocalBuf {
    tid: u64,
    events: Vec<TimelineEvent>,
    /// Begins whose reserved End slot is still pending.
    open: usize,
    dropped: u64,
}

impl LocalBuf {
    fn flush_into_global(&mut self) {
        if self.events.is_empty() && self.dropped == 0 {
            return;
        }
        let batch = ThreadTrace {
            tid: self.tid,
            events: std::mem::take(&mut self.events),
            dropped: std::mem::take(&mut self.dropped),
        };
        lock_unpoisoned(finished()).push(batch);
    }
}

/// Thread-local holder whose drop hands the buffer to the global
/// collector — this is how scoped worker threads' events survive the end
/// of their `thread::scope`.
struct Local {
    buf: RefCell<Option<LocalBuf>>,
}

impl Drop for Local {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.borrow_mut().as_mut() {
            buf.flush_into_global();
        }
    }
}

thread_local! {
    static LOCAL: Local = const {
        Local {
            buf: RefCell::new(None),
        }
    };
}

fn with_buf<R>(f: impl FnOnce(&mut LocalBuf) -> R) -> Option<R> {
    LOCAL
        .try_with(|local| {
            let mut slot = local.buf.borrow_mut();
            let buf = slot.get_or_insert_with(|| LocalBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Vec::new(),
                open: 0,
                dropped: 0,
            });
            f(buf)
        })
        .ok()
}

/// Record a span begin. Returns whether the event was admitted; the caller
/// must record the matching [`end`] **iff** this returned `true`, which
/// keeps per-thread B/E events balanced even under buffer pressure.
pub fn begin(name: &'static str, path: &Arc<str>, pool: Option<PoolLabels>) -> bool {
    if !enabled() {
        return false;
    }
    let ts_us = now_us();
    with_buf(|buf| {
        let cap = CAPACITY.load(Ordering::Relaxed);
        // Admit only if this begin AND the pending ends (including ours)
        // all still fit: cap - len stays >= open.
        if buf.events.len() + buf.open + 2 <= cap {
            buf.events.push(TimelineEvent {
                ts_us,
                kind: TimelineKind::Begin {
                    name,
                    path: path.clone(),
                    pool: pool.map(Box::new),
                },
            });
            buf.open += 1;
            true
        } else {
            buf.dropped += 1;
            DROPPED.fetch_add(1, Ordering::Relaxed);
            false
        }
    })
    .unwrap_or(false)
}

/// Record the end of the innermost admitted begin. `began` is the value
/// the matching [`begin`] returned; a `false` begin records nothing.
/// Always admitted when `began` is true — the begin reserved the slot —
/// and recorded even if the recorder was disabled mid-span, so traces
/// stay balanced.
pub fn end(began: bool) {
    if !began {
        return;
    }
    let ts_us = now_us();
    with_buf(|buf| {
        buf.events.push(TimelineEvent {
            ts_us,
            kind: TimelineKind::End,
        });
        buf.open = buf.open.saturating_sub(1);
    });
}

/// Record a point event.
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    let ts_us = now_us();
    with_buf(|buf| {
        let cap = CAPACITY.load(Ordering::Relaxed);
        if buf.events.len() + buf.open < cap {
            buf.events.push(TimelineEvent {
                ts_us,
                kind: TimelineKind::Instant { name },
            });
        } else {
            buf.dropped += 1;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Flush the calling thread's buffer into the global collector (worker
/// threads flush automatically on exit).
pub fn flush_current_thread() {
    with_buf(LocalBuf::flush_into_global);
}

/// Collect everything recorded so far: flushes the calling thread, then
/// takes all finished buffers, merged per thread id and sorted by id.
/// Buffers of *other* still-running threads are not visible — callers
/// drain after their worker scopes have joined.
pub fn drain() -> Vec<ThreadTrace> {
    flush_current_thread();
    let batches: Vec<ThreadTrace> = std::mem::take(&mut *lock_unpoisoned(finished()));
    let mut merged: std::collections::BTreeMap<u64, ThreadTrace> =
        std::collections::BTreeMap::new();
    for batch in batches {
        let entry = merged.entry(batch.tid).or_insert_with(|| ThreadTrace {
            tid: batch.tid,
            events: Vec::new(),
            dropped: 0,
        });
        // Batches from one thread are pushed in chronological order, so
        // concatenation preserves event order.
        entry.events.extend(batch.events);
        entry.dropped += batch.dropped;
    }
    merged.into_values().collect()
}
