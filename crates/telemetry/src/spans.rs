//! Hierarchical wall-clock spans.
//!
//! [`span`] returns an RAII guard; while it lives, further spans opened on
//! the same thread nest under it, and the full slash-joined path (e.g.
//! `improve/episode/feedback`) is what gets aggregated. On drop, the
//! elapsed time folds into per-path statistics (count/total/min/max) in a
//! global registry, which [`SpanRegistry::render_summary`] renders as the
//! `--verbose` exit table.
//!
//! Paths are *interned*: the registry assigns each distinct
//! (parent, name) pair a small integer id and builds the joined path
//! string exactly once, when the pair is first seen anywhere in the
//! process. Entering a span after that is a thread-local cache hit (no
//! lock, no allocation), and recording on drop indexes the stats slot by
//! id — the hot path never re-joins or re-allocates the path.
//!
//! Guards also expose [`SpanGuard::elapsed`], so code that previously kept
//! its own `Instant` (the driver's `RunReport` durations) reads the same
//! clock the registry records.
//!
//! [`SpanContext`] captures the innermost open span as a cloneable,
//! thread-portable handle. `alex-parallel` hands it to every worker task
//! so spans opened inside a worker nest under the pool's caller instead of
//! starting a fresh root on the worker thread; the timeline recorder
//! ([`crate::timeline`]) uses the same context to label worker chunks.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Sentinel parent id for root spans (no enclosing span).
const ROOT: usize = usize::MAX;

/// Intern-cache value: (node id, full path).
type InternedNode = (usize, Arc<str>);

thread_local! {
    /// Open spans on this thread, outermost first: (node id, full path).
    static SPAN_STACK: RefCell<Vec<InternedNode>> = const { RefCell::new(Vec::new()) };
    /// Thread-local intern cache: (parent id, name) → (node id, path).
    /// Hits bypass the registry mutex entirely.
    static INTERN_CACHE: RefCell<HashMap<(usize, &'static str), InternedNode>> =
        RefCell::new(HashMap::new());
}

fn empty_path() -> Arc<str> {
    static EMPTY: OnceLock<Arc<str>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from("")).clone()
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy)]
pub struct SpanStats {
    /// Completed spans at this path.
    pub count: u64,
    /// Total wall-clock time.
    pub total: Duration,
    /// Shortest single span.
    pub min: Duration,
    /// Longest single span.
    pub max: Duration,
}

impl SpanStats {
    const ZERO: SpanStats = SpanStats {
        count: 0,
        total: Duration::ZERO,
        min: Duration::MAX,
        max: Duration::ZERO,
    };

    fn record(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
    }

    /// Mean duration per span. Computed in integer nanoseconds so counts
    /// beyond `u32::MAX` divide exactly instead of truncating.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.total.as_nanos() / self.count as u128) as u64)
        }
    }
}

/// One interned span path plus its aggregate statistics.
struct Node {
    path: Arc<str>,
    stats: SpanStats,
}

#[derive(Default)]
struct Inner {
    /// (parent id, leaf name) → node id.
    index: HashMap<(usize, &'static str), usize>,
    nodes: Vec<Node>,
}

/// Per-path span aggregation over interned path ids.
#[derive(Default)]
pub struct SpanRegistry {
    inner: Mutex<Inner>,
}

impl SpanRegistry {
    /// Get or create the node for `name` under `parent`. The joined path
    /// string is allocated only on first creation.
    fn intern(&self, parent: usize, name: &'static str) -> (usize, Arc<str>) {
        let mut inner = self.inner.lock().expect("span registry poisoned");
        if let Some(&id) = inner.index.get(&(parent, name)) {
            return (id, inner.nodes[id].path.clone());
        }
        let path: Arc<str> = if parent == ROOT {
            Arc::from(name)
        } else {
            Arc::from(format!("{}/{}", inner.nodes[parent].path, name))
        };
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            path: path.clone(),
            stats: SpanStats::ZERO,
        });
        inner.index.insert((parent, name), id);
        (id, path)
    }

    /// Fold one completed span into its node's stats — an indexed slot
    /// update, no allocation.
    fn record_id(&self, id: usize, d: Duration) {
        let mut inner = self.inner.lock().expect("span registry poisoned");
        inner.nodes[id].stats.record(d);
    }

    /// Snapshot of all paths with at least one completed span, sorted by
    /// path.
    pub fn snapshot(&self) -> Vec<(String, SpanStats)> {
        let inner = self.inner.lock().expect("span registry poisoned");
        let sorted: BTreeMap<String, SpanStats> = inner
            .nodes
            .iter()
            .filter(|n| n.stats.count > 0)
            .map(|n| (n.path.to_string(), n.stats))
            .collect();
        sorted.into_iter().collect()
    }

    /// Aggregate stats for one exact path, if any spans completed there.
    pub fn get(&self, path: &str) -> Option<SpanStats> {
        let inner = self.inner.lock().expect("span registry poisoned");
        inner
            .nodes
            .iter()
            .find(|n| &*n.path == path && n.stats.count > 0)
            .map(|n| n.stats)
    }

    /// Render an aligned text table of the snapshot (the `--verbose` view).
    pub fn render_summary(&self) -> String {
        let snapshot = self.snapshot();
        if snapshot.is_empty() {
            return String::from("no spans recorded\n");
        }
        let path_width = snapshot
            .iter()
            .map(|(p, _)| p.len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<path_width$}  {:>7}  {:>11}  {:>11}  {:>11}  {:>11}\n",
            "span", "count", "total", "mean", "min", "max"
        ));
        for (path, s) in snapshot {
            out.push_str(&format!(
                "{:<path_width$}  {:>7}  {:>11}  {:>11}  {:>11}  {:>11}\n",
                path,
                s.count,
                fmt_duration(s.total),
                fmt_duration(s.mean()),
                fmt_duration(s.min),
                fmt_duration(s.max),
            ));
        }
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// A cloneable, thread-portable handle to the innermost span open on the
/// capturing thread. Workers [`enter`](SpanContext::enter) it so their
/// spans nest under the pool caller's path.
#[derive(Debug, Clone)]
pub struct SpanContext {
    node: usize,
    path: Arc<str>,
}

impl SpanContext {
    /// The context of the innermost span open on this thread, or the root
    /// context when no span is open.
    pub fn current() -> SpanContext {
        SPAN_STACK.with(|stack| match stack.borrow().last() {
            Some((node, path)) => SpanContext {
                node: *node,
                path: path.clone(),
            },
            None => SpanContext {
                node: ROOT,
                path: empty_path(),
            },
        })
    }

    /// The captured span's full path (empty for the root context).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The path a child named `name` would record under this context —
    /// `name` at root, `path/name` otherwise. Does not intern a registry
    /// node; used by the timeline recorder to label worker chunks.
    pub fn child_path(&self, name: &str) -> Arc<str> {
        if self.node == ROOT && self.path.is_empty() {
            Arc::from(name)
        } else {
            Arc::from(format!("{}/{name}", self.path))
        }
    }

    /// Seed this thread's span stack with the captured context: spans
    /// opened while the guard lives nest under the context's path, exactly
    /// as if they ran on the capturing thread.
    pub fn enter(&self) -> ContextGuard {
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let depth = stack.len();
            if self.node != ROOT {
                stack.push((self.node, self.path.clone()));
            }
            depth
        });
        ContextGuard { depth }
    }
}

/// RAII guard for an entered [`SpanContext`]; restores the thread's span
/// stack on drop.
pub struct ContextGuard {
    depth: usize,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| stack.borrow_mut().truncate(self.depth));
    }
}

/// RAII guard for one span. Dropping it records the elapsed time under the
/// span's full path.
pub struct SpanGuard {
    id: usize,
    path: Arc<str>,
    start: Instant,
    /// Stack depth at entry, used to pop exactly our frame even if inner
    /// guards are dropped out of order.
    depth: usize,
    /// Whether the timeline recorder accepted our begin event (its end
    /// must be recorded iff the begin was).
    timeline: bool,
}

impl SpanGuard {
    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The full path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Truncate rather than pop: recovers cleanly if an inner guard
            // leaked (e.g. mem::forget) or drops happened out of order.
            stack.truncate(self.depth);
        });
        if self.timeline {
            crate::timeline::end(true);
        }
        crate::global().spans().record_id(self.id, elapsed);
    }
}

/// Open a span named `name`, nested under any span already open on this
/// thread. After the first occurrence of a (parent, name) pair, entering
/// is a thread-local cache hit: no lock and no path allocation.
pub fn span(name: &'static str) -> SpanGuard {
    let (parent, depth) = SPAN_STACK.with(|stack| {
        let stack = stack.borrow();
        (stack.last().map_or(ROOT, |(id, _)| *id), stack.len())
    });
    let (id, path) = INTERN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.get(&(parent, name)) {
            Some((id, path)) => (*id, path.clone()),
            None => {
                let entry = crate::global().spans().intern(parent, name);
                cache.insert((parent, name), entry.clone());
                entry
            }
        }
    });
    SPAN_STACK.with(|stack| stack.borrow_mut().push((id, path.clone())));
    let timeline = crate::timeline::enabled() && crate::timeline::begin(name, &path, None);
    SpanGuard {
        id,
        path,
        start: Instant::now(),
        depth,
        timeline,
    }
}
