//! Hierarchical wall-clock spans.
//!
//! [`span`] returns an RAII guard; while it lives, further spans opened on
//! the same thread nest under it, and the full slash-joined path (e.g.
//! `improve/episode/feedback`) is what gets aggregated. On drop, the
//! elapsed time folds into per-path statistics (count/total/min/max) in a
//! global registry, which [`SpanRegistry::render_summary`] renders as the
//! `--verbose` exit table.
//!
//! Guards also expose [`SpanGuard::elapsed`], so code that previously kept
//! its own `Instant` (the driver's `RunReport` durations) reads the same
//! clock the registry records.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy)]
pub struct SpanStats {
    /// Completed spans at this path.
    pub count: u64,
    /// Total wall-clock time.
    pub total: Duration,
    /// Shortest single span.
    pub min: Duration,
    /// Longest single span.
    pub max: Duration,
}

impl SpanStats {
    fn record(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
    }

    /// Mean duration per span.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Per-path span aggregation.
#[derive(Default)]
pub struct SpanRegistry {
    stats: Mutex<BTreeMap<String, SpanStats>>,
}

impl SpanRegistry {
    fn record(&self, path: String, d: Duration) {
        let mut stats = self.stats.lock().expect("span registry poisoned");
        stats
            .entry(path)
            .or_insert(SpanStats {
                count: 0,
                total: Duration::ZERO,
                min: Duration::MAX,
                max: Duration::ZERO,
            })
            .record(d);
    }

    /// Snapshot of all paths and their statistics, sorted by path.
    pub fn snapshot(&self) -> Vec<(String, SpanStats)> {
        let stats = self.stats.lock().expect("span registry poisoned");
        stats.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Aggregate stats for one exact path, if any spans completed there.
    pub fn get(&self, path: &str) -> Option<SpanStats> {
        self.stats
            .lock()
            .expect("span registry poisoned")
            .get(path)
            .copied()
    }

    /// Render an aligned text table of the snapshot (the `--verbose` view).
    pub fn render_summary(&self) -> String {
        let snapshot = self.snapshot();
        if snapshot.is_empty() {
            return String::from("no spans recorded\n");
        }
        let path_width = snapshot
            .iter()
            .map(|(p, _)| p.len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<path_width$}  {:>7}  {:>11}  {:>11}  {:>11}  {:>11}\n",
            "span", "count", "total", "mean", "min", "max"
        ));
        for (path, s) in snapshot {
            out.push_str(&format!(
                "{:<path_width$}  {:>7}  {:>11}  {:>11}  {:>11}  {:>11}\n",
                path,
                s.count,
                fmt_duration(s.total),
                fmt_duration(s.mean()),
                fmt_duration(s.min),
                fmt_duration(s.max),
            ));
        }
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// RAII guard for one span. Dropping it records the elapsed time under the
/// span's full path.
pub struct SpanGuard {
    /// Full slash-joined path, computed at entry.
    path: String,
    start: Instant,
    /// Stack depth at entry, used to pop exactly our frame even if inner
    /// guards are dropped out of order.
    depth: usize,
}

impl SpanGuard {
    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The full path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Truncate rather than pop: recovers cleanly if an inner guard
            // leaked (e.g. mem::forget) or drops happened out of order.
            stack.truncate(self.depth);
        });
        crate::global()
            .spans()
            .record(std::mem::take(&mut self.path), elapsed);
    }
}

/// Open a span named `name`, nested under any span already open on this
/// thread. The name is `&'static str` so entering a span allocates only
/// the joined path string.
pub fn span(name: &'static str) -> SpanGuard {
    let (path, depth) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let depth = stack.len();
        let mut path =
            String::with_capacity(stack.iter().map(|s| s.len() + 1).sum::<usize>() + name.len());
        for frame in stack.iter() {
            path.push_str(frame);
            path.push('/');
        }
        path.push_str(name);
        stack.push(name);
        (path, depth)
    });
    SpanGuard {
        path,
        start: Instant::now(),
        depth,
    }
}
