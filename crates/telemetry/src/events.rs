//! Structured JSONL event log.
//!
//! Events are typed, flat records serialized one-per-line as JSON (see
//! [`crate::json`]). Emission goes through [`EventLog::emit_with`], which
//! takes a *closure*: when no sink is attached the closure is never called,
//! so the disabled-path cost is one relaxed atomic load and a branch — no
//! allocation, no formatting.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, RwLock};

use crate::json::{parse_object, JsonValue, ObjectWriter};

/// One telemetry event. Every variant serializes to a flat JSON object
/// with a `type` discriminator field.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An improvement episode began.
    EpisodeStart {
        /// 1-based episode number.
        episode: u64,
    },
    /// An improvement episode finished.
    EpisodeEnd {
        /// 1-based episode number.
        episode: u64,
        /// Precision against ground truth after the episode.
        precision: f64,
        /// Recall against ground truth after the episode.
        recall: f64,
        /// F-measure after the episode.
        f_measure: f64,
        /// Links added during the episode.
        added: u64,
        /// Links removed during the episode.
        removed: u64,
        /// Rollbacks triggered during the episode.
        rollbacks: u64,
        /// Worker threads configured for the run (parallel pools).
        threads: u64,
        /// Episode wall-clock time in microseconds.
        duration_us: u64,
        /// For a resumed durable run, the episode the state was recovered
        /// from (snapshot + journal tail); 0 for fresh runs.
        recovered_from: u64,
        /// Trust gate: feedback items admitted past the quorum (0 when
        /// trust admission is disabled).
        trust_admitted: u64,
        /// Trust gate: feedback items deferred awaiting quorum.
        trust_deferred: u64,
        /// Trust gate: admissions revoked by cascading rollback.
        trust_cascades: u64,
        /// Whether the episode breached its budget and was marked
        /// degraded by the run supervisor.
        degraded: bool,
    },
    /// One feedback item was applied by the agent.
    FeedbackApplied {
        /// Whether the feedback was positive.
        positive: bool,
        /// Links the step added.
        added: u64,
        /// Links the step removed.
        removed: u64,
    },
    /// The policy chose an exploration action.
    ExplorationAction {
        /// Debug rendering of the chosen action.
        action: String,
    },
    /// A link entered the candidate set.
    LinkAdded {
        /// Left entity id (dense id within its data set).
        left: u64,
        /// Right entity id.
        right: u64,
    },
    /// A link left the candidate set.
    LinkRemoved {
        /// Left entity id.
        left: u64,
        /// Right entity id.
        right: u64,
    },
    /// Exploration proposed a link the blacklist rejected.
    BlacklistHit {
        /// Left entity id.
        left: u64,
        /// Right entity id.
        right: u64,
    },
    /// Negative feedback rolled back generated links.
    Rollback {
        /// Links removed by the rollback.
        removed: u64,
    },
    /// A federated query finished executing.
    FederatedQuery {
        /// Triple patterns in the query.
        patterns: u64,
        /// Total answers produced.
        answers: u64,
        /// Answers that depended on at least one sameAs link.
        provenance_answers: u64,
        /// Per-endpoint source-selection probes issued.
        probes: u64,
        /// Probes proven unnecessary by the endpoint catalog (subset of
        /// `probes`; never dispatched).
        pruned_probes: u64,
        /// Bound-join iterations executed.
        bound_join_iterations: u64,
        /// sameAs alternative expansions attempted.
        sameas_expansions: u64,
        /// Transient endpoint failures that were retried.
        retries: u64,
        /// Sources skipped (down past their budget or circuit open); the
        /// result was degraded when this is nonzero.
        skipped_sources: u64,
        /// Whether the answer cache was enabled for this query.
        cache: bool,
        /// Per-endpoint batch lookups served from the cache.
        cache_hits: u64,
        /// Batch lookups that missed and were dispatched live.
        cache_misses: u64,
        /// Whether a coverage catalog was consulted for source selection.
        catalog: bool,
        /// Required patterns expanded into sameAs-closure unions when the
        /// query was rewritten (0 for plain executions).
        rewrites: u64,
        /// Worker threads configured for endpoint dispatch.
        threads: u64,
        /// Execution wall-clock time in microseconds.
        duration_us: u64,
    },
    /// One endpoint's batch of jobs finished within a federated query
    /// (the unit `alex report` aggregates per-endpoint latency from).
    EndpointBatch {
        /// Endpoint name.
        endpoint: String,
        /// Jobs dispatched to the endpoint in this batch.
        jobs: u64,
        /// Batch wall-clock time in microseconds (0 when skipped).
        duration_us: u64,
        /// Transient failures retried within the batch.
        retries: u64,
        /// Circuit-breaker opens triggered by the batch.
        circuit_opens: u64,
        /// Jobs rejected by an already-open circuit.
        circuit_rejections: u64,
        /// Jobs that exhausted retries and failed.
        failures: u64,
        /// Whether the endpoint was skipped without dispatching (down
        /// past its budget, circuit open, or fail-fast terminal).
        skipped: bool,
        /// Whether the batch was served from the answer cache.
        cache_hit: bool,
        /// Whether the catalog proved the batch empty on this endpoint
        /// (pruned batches are not failures: completeness is unaffected).
        pruned: bool,
    },
    /// One PARIS probabilistic-matching iteration finished.
    ParisIteration {
        /// 1-based iteration number.
        iteration: u64,
        /// Match pairs above threshold after the iteration.
        matches: u64,
        /// Iteration wall-clock time in microseconds.
        duration_us: u64,
    },
    /// A benchmark figure/workload finished (bench harness snapshots).
    BenchSnapshot {
        /// Workload label (e.g. `fig4_dbpedia_nytimes`).
        label: String,
        /// Episodes the run executed.
        episodes: u64,
        /// Final F-measure.
        f_measure: f64,
        /// Total wall-clock time in microseconds.
        duration_us: u64,
    },
}

impl Event {
    /// The `type` discriminator used in the serialized form.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EpisodeStart { .. } => "episode_start",
            Event::EpisodeEnd { .. } => "episode_end",
            Event::FeedbackApplied { .. } => "feedback_applied",
            Event::ExplorationAction { .. } => "exploration_action",
            Event::LinkAdded { .. } => "link_added",
            Event::LinkRemoved { .. } => "link_removed",
            Event::BlacklistHit { .. } => "blacklist_hit",
            Event::Rollback { .. } => "rollback",
            Event::FederatedQuery { .. } => "federated_query",
            Event::EndpointBatch { .. } => "endpoint_batch",
            Event::ParisIteration { .. } => "paris_iteration",
            Event::BenchSnapshot { .. } => "bench_snapshot",
        }
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str("type", self.kind());
        match self {
            Event::EpisodeStart { episode } => {
                w.u64("episode", *episode);
            }
            Event::EpisodeEnd {
                episode,
                precision,
                recall,
                f_measure,
                added,
                removed,
                rollbacks,
                threads,
                duration_us,
                recovered_from,
                trust_admitted,
                trust_deferred,
                trust_cascades,
                degraded,
            } => {
                w.u64("episode", *episode)
                    .f64("precision", *precision)
                    .f64("recall", *recall)
                    .f64("f_measure", *f_measure)
                    .u64("added", *added)
                    .u64("removed", *removed)
                    .u64("rollbacks", *rollbacks)
                    .u64("threads", *threads)
                    .u64("duration_us", *duration_us)
                    .u64("recovered_from", *recovered_from)
                    .u64("trust_admitted", *trust_admitted)
                    .u64("trust_deferred", *trust_deferred)
                    .u64("trust_cascades", *trust_cascades)
                    .bool("degraded", *degraded);
            }
            Event::FeedbackApplied {
                positive,
                added,
                removed,
            } => {
                w.bool("positive", *positive)
                    .u64("added", *added)
                    .u64("removed", *removed);
            }
            Event::ExplorationAction { action } => {
                w.str("action", action);
            }
            Event::LinkAdded { left, right }
            | Event::LinkRemoved { left, right }
            | Event::BlacklistHit { left, right } => {
                w.u64("left", *left).u64("right", *right);
            }
            Event::Rollback { removed } => {
                w.u64("removed", *removed);
            }
            Event::FederatedQuery {
                patterns,
                answers,
                provenance_answers,
                probes,
                pruned_probes,
                bound_join_iterations,
                sameas_expansions,
                retries,
                skipped_sources,
                cache,
                cache_hits,
                cache_misses,
                catalog,
                rewrites,
                threads,
                duration_us,
            } => {
                w.u64("patterns", *patterns)
                    .u64("answers", *answers)
                    .u64("provenance_answers", *provenance_answers)
                    .u64("probes", *probes)
                    .u64("pruned_probes", *pruned_probes)
                    .u64("bound_join_iterations", *bound_join_iterations)
                    .u64("sameas_expansions", *sameas_expansions)
                    .u64("retries", *retries)
                    .u64("skipped_sources", *skipped_sources)
                    .bool("cache", *cache)
                    .u64("cache_hits", *cache_hits)
                    .u64("cache_misses", *cache_misses)
                    .bool("catalog", *catalog)
                    .u64("rewrites", *rewrites)
                    .u64("threads", *threads)
                    .u64("duration_us", *duration_us);
            }
            Event::EndpointBatch {
                endpoint,
                jobs,
                duration_us,
                retries,
                circuit_opens,
                circuit_rejections,
                failures,
                skipped,
                cache_hit,
                pruned,
            } => {
                w.str("endpoint", endpoint)
                    .u64("jobs", *jobs)
                    .u64("duration_us", *duration_us)
                    .u64("retries", *retries)
                    .u64("circuit_opens", *circuit_opens)
                    .u64("circuit_rejections", *circuit_rejections)
                    .u64("failures", *failures)
                    .bool("skipped", *skipped)
                    .bool("cache_hit", *cache_hit)
                    .bool("pruned", *pruned);
            }
            Event::ParisIteration {
                iteration,
                matches,
                duration_us,
            } => {
                w.u64("iteration", *iteration)
                    .u64("matches", *matches)
                    .u64("duration_us", *duration_us);
            }
            Event::BenchSnapshot {
                label,
                episodes,
                f_measure,
                duration_us,
            } => {
                w.str("label", label)
                    .u64("episodes", *episodes)
                    .f64("f_measure", *f_measure)
                    .u64("duration_us", *duration_us);
            }
        }
        w.finish()
    }

    /// Parse one JSONL line back into an event (inverse of [`to_json`]).
    ///
    /// [`to_json`]: Event::to_json
    pub fn parse(line: &str) -> Result<Event, String> {
        let map = parse_object(line)?;
        let kind = map
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing \"type\" field".to_string())?;
        let get_u64 = |field: &str| -> Result<u64, String> {
            map.get(field)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{kind}: missing u64 field {field:?}"))
        };
        let get_f64 = |field: &str| -> Result<f64, String> {
            map.get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("{kind}: missing f64 field {field:?}"))
        };
        let get_str = |field: &str| -> Result<String, String> {
            map.get(field)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind}: missing string field {field:?}"))
        };
        match kind {
            "episode_start" => Ok(Event::EpisodeStart {
                episode: get_u64("episode")?,
            }),
            "episode_end" => Ok(Event::EpisodeEnd {
                episode: get_u64("episode")?,
                precision: get_f64("precision")?,
                recall: get_f64("recall")?,
                f_measure: get_f64("f_measure")?,
                added: get_u64("added")?,
                removed: get_u64("removed")?,
                rollbacks: get_u64("rollbacks")?,
                threads: get_u64("threads")?,
                duration_us: get_u64("duration_us")?,
                // Absent in logs written before durable runs existed.
                recovered_from: map
                    .get("recovered_from")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                // Absent in logs written before trust admission existed.
                trust_admitted: map
                    .get("trust_admitted")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                trust_deferred: map
                    .get("trust_deferred")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                trust_cascades: map
                    .get("trust_cascades")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                // Absent in logs written before run supervision existed.
                degraded: map
                    .get("degraded")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
            }),
            "feedback_applied" => Ok(Event::FeedbackApplied {
                positive: map
                    .get("positive")
                    .and_then(JsonValue::as_bool)
                    .ok_or("feedback_applied: missing bool field \"positive\"")?,
                added: get_u64("added")?,
                removed: get_u64("removed")?,
            }),
            "exploration_action" => Ok(Event::ExplorationAction {
                action: get_str("action")?,
            }),
            "link_added" => Ok(Event::LinkAdded {
                left: get_u64("left")?,
                right: get_u64("right")?,
            }),
            "link_removed" => Ok(Event::LinkRemoved {
                left: get_u64("left")?,
                right: get_u64("right")?,
            }),
            "blacklist_hit" => Ok(Event::BlacklistHit {
                left: get_u64("left")?,
                right: get_u64("right")?,
            }),
            "rollback" => Ok(Event::Rollback {
                removed: get_u64("removed")?,
            }),
            "federated_query" => Ok(Event::FederatedQuery {
                patterns: get_u64("patterns")?,
                answers: get_u64("answers")?,
                provenance_answers: get_u64("provenance_answers")?,
                probes: get_u64("probes")?,
                // Catalog/rewrite fields postdate the schema; logs written
                // before they existed parse as "no pruning, no rewriting".
                pruned_probes: map
                    .get("pruned_probes")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                bound_join_iterations: get_u64("bound_join_iterations")?,
                sameas_expansions: get_u64("sameas_expansions")?,
                retries: get_u64("retries")?,
                skipped_sources: get_u64("skipped_sources")?,
                // Cache fields postdate the schema; logs written before
                // they existed parse as "cache off" rather than erroring.
                cache: map
                    .get("cache")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
                cache_hits: map
                    .get("cache_hits")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                cache_misses: map
                    .get("cache_misses")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                catalog: map
                    .get("catalog")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
                rewrites: map.get("rewrites").and_then(JsonValue::as_u64).unwrap_or(0),
                threads: get_u64("threads")?,
                duration_us: get_u64("duration_us")?,
            }),
            "endpoint_batch" => Ok(Event::EndpointBatch {
                endpoint: get_str("endpoint")?,
                jobs: get_u64("jobs")?,
                duration_us: get_u64("duration_us")?,
                retries: get_u64("retries")?,
                circuit_opens: get_u64("circuit_opens")?,
                circuit_rejections: get_u64("circuit_rejections")?,
                failures: get_u64("failures")?,
                skipped: map
                    .get("skipped")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
                cache_hit: map
                    .get("cache_hit")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
                pruned: map
                    .get("pruned")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
            }),
            "paris_iteration" => Ok(Event::ParisIteration {
                iteration: get_u64("iteration")?,
                matches: get_u64("matches")?,
                duration_us: get_u64("duration_us")?,
            }),
            "bench_snapshot" => Ok(Event::BenchSnapshot {
                label: get_str("label")?,
                episodes: get_u64("episodes")?,
                f_measure: get_f64("f_measure")?,
                duration_us: get_u64("duration_us")?,
            }),
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

/// Receiver for emitted events.
pub trait EventSink: Send + Sync {
    /// Handle one event.
    fn emit(&self, event: &Event);
    /// Flush any buffered output (best effort).
    fn flush(&self) {}
}

/// Sink appending events as JSON lines to a file.
pub struct JsonlFileSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlFileSink {
    /// Create (truncate) `path` and return a sink writing to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlFileSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl EventSink for JsonlFileSink {
    fn emit(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut writer = self.writer.lock().expect("jsonl sink poisoned");
        // Telemetry must never take the pipeline down; drop on I/O error.
        let _ = writer.write_all(line.as_bytes());
    }

    fn flush(&self) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.flush();
        }
    }
}

/// In-memory sink for tests.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of everything emitted so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// The event log: an optional sink behind an `attached` fast-path flag.
#[derive(Default)]
pub struct EventLog {
    attached: AtomicBool,
    sink: RwLock<Option<std::sync::Arc<dyn EventSink>>>,
}

impl EventLog {
    /// Attach a sink (replacing any existing one, which is flushed).
    pub fn attach(&self, sink: std::sync::Arc<dyn EventSink>) {
        let mut slot = self.sink.write().expect("event log poisoned");
        if let Some(old) = slot.take() {
            old.flush();
        }
        *slot = Some(sink);
        self.attached.store(true, Ordering::Release);
    }

    /// Detach the sink, flushing it first. Returns it if one was attached.
    pub fn detach(&self) -> Option<std::sync::Arc<dyn EventSink>> {
        let mut slot = self.sink.write().expect("event log poisoned");
        self.attached.store(false, Ordering::Release);
        let old = slot.take();
        if let Some(sink) = &old {
            sink.flush();
        }
        old
    }

    /// Whether a sink is currently attached (one relaxed load).
    #[inline]
    pub fn is_attached(&self) -> bool {
        self.attached.load(Ordering::Relaxed)
    }

    /// Emit the event built by `build` — but only if a sink is attached.
    /// With no sink this is a relaxed load and a branch; `build` never runs.
    #[inline]
    pub fn emit_with<F: FnOnce() -> Event>(&self, build: F) {
        if !self.is_attached() {
            return;
        }
        self.emit_slow(build());
    }

    #[cold]
    fn emit_slow(&self, event: Event) {
        if let Some(sink) = self.sink.read().expect("event log poisoned").as_ref() {
            sink.emit(&event);
        }
    }

    /// Flush the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = self.sink.read().expect("event log poisoned").as_ref() {
            sink.flush();
        }
    }
}
