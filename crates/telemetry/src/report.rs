//! Run reports: aggregate JSONL event logs (and optional metrics dumps)
//! from one or more runs into a convergence / latency / completeness
//! summary — the `alex report` subcommand.
//!
//! The report answers the questions the raw logs only contain implicitly:
//! did F-measure converge across episodes and at what link churn; what
//! fraction of federated batches the cache absorbed; what each endpoint's
//! latency distribution (p50/p95/p99) looked like and how often retries,
//! circuit breakers, and skips degraded completeness.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::events::Event;
use crate::json::{escape_into, ObjectWriter};

/// One episode's row in the convergence curve.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRow {
    /// 0-based index of the log the row came from.
    pub run: usize,
    /// 1-based episode number within the run.
    pub episode: u64,
    /// Precision after the episode.
    pub precision: f64,
    /// Recall after the episode.
    pub recall: f64,
    /// F-measure after the episode.
    pub f_measure: f64,
    /// Links added during the episode.
    pub added: u64,
    /// Links removed during the episode.
    pub removed: u64,
    /// Link churn: added + removed.
    pub churn: u64,
    /// Rollbacks during the episode.
    pub rollbacks: u64,
    /// Episode wall time in microseconds.
    pub duration_us: u64,
}

/// Aggregated federated-query behaviour across all runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FederationSummary {
    /// Federated queries executed.
    pub queries: u64,
    /// Total answers produced.
    pub answers: u64,
    /// Answers that depended on at least one sameAs link.
    pub provenance_answers: u64,
    /// Source-selection probes issued.
    pub probes: u64,
    /// Transient failures retried.
    pub retries: u64,
    /// Queries with at least one skipped source (degraded results).
    pub degraded_queries: u64,
    /// Total sources skipped.
    pub skipped_sources: u64,
    /// Cache hits across per-endpoint batch lookups.
    pub cache_hits: u64,
    /// Cache misses dispatched live.
    pub cache_misses: u64,
}

impl FederationSummary {
    /// Cache hit ratio over hits + misses (0 when the cache never ran).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            self.cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Fraction of queries with no skipped sources.
    pub fn completeness(&self) -> f64 {
        if self.queries > 0 {
            (self.queries - self.degraded_queries) as f64 / self.queries as f64
        } else {
            1.0
        }
    }
}

/// Per-endpoint latency and resilience summary.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSummary {
    /// Endpoint name.
    pub endpoint: String,
    /// Batches observed (dispatched + cached + skipped).
    pub batches: u64,
    /// Batches served from the answer cache.
    pub cache_hits: u64,
    /// Batches skipped without dispatch.
    pub skipped: u64,
    /// Latency percentiles over live-dispatched batches, microseconds
    /// (nearest-rank on exact samples); zeros when nothing dispatched.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Slowest live batch.
    pub max_us: u64,
    /// Retries within this endpoint's batches.
    pub retries: u64,
    /// Circuit-breaker opens.
    pub circuit_opens: u64,
    /// Jobs rejected by an open circuit.
    pub circuit_rejections: u64,
    /// Jobs that exhausted retries.
    pub failures: u64,
}

#[derive(Debug, Clone, PartialEq, Default)]
struct EndpointAgg {
    batches: u64,
    cache_hits: u64,
    skipped: u64,
    samples_us: Vec<u64>,
    retries: u64,
    circuit_opens: u64,
    circuit_rejections: u64,
    failures: u64,
}

/// Nearest-rank percentile over *sorted* samples.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The aggregated run report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Logs aggregated so far.
    pub runs: usize,
    /// Convergence curve rows, in (run, episode) order.
    pub episodes: Vec<EpisodeRow>,
    /// Federation aggregate.
    pub federation: FederationSummary,
    /// Per-endpoint summaries, sorted by name.
    pub endpoints: Vec<EndpointSummary>,
    /// PARIS iterations observed.
    pub paris_iterations: u64,
    /// Match pairs after the last PARIS iteration seen.
    pub paris_final_matches: u64,
    /// Blacklist rejections.
    pub blacklist_hits: u64,
    /// Metrics-dump values keyed by `name{labels}` (empty unless
    /// [`add_metrics_dump`](RunReport::add_metrics_dump) was called).
    pub metrics: BTreeMap<String, f64>,

    endpoint_aggs: BTreeMap<String, EndpointAgg>,
}

impl RunReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one run's parsed event log into the report.
    pub fn add_events(&mut self, events: &[Event]) {
        let run = self.runs;
        self.runs += 1;
        for event in events {
            match event {
                Event::EpisodeEnd {
                    episode,
                    precision,
                    recall,
                    f_measure,
                    added,
                    removed,
                    rollbacks,
                    duration_us,
                    ..
                } => self.episodes.push(EpisodeRow {
                    run,
                    episode: *episode,
                    precision: *precision,
                    recall: *recall,
                    f_measure: *f_measure,
                    added: *added,
                    removed: *removed,
                    churn: added + removed,
                    rollbacks: *rollbacks,
                    duration_us: *duration_us,
                }),
                Event::FederatedQuery {
                    answers,
                    provenance_answers,
                    probes,
                    retries,
                    skipped_sources,
                    cache_hits,
                    cache_misses,
                    ..
                } => {
                    let f = &mut self.federation;
                    f.queries += 1;
                    f.answers += answers;
                    f.provenance_answers += provenance_answers;
                    f.probes += probes;
                    f.retries += retries;
                    f.skipped_sources += skipped_sources;
                    if *skipped_sources > 0 {
                        f.degraded_queries += 1;
                    }
                    f.cache_hits += cache_hits;
                    f.cache_misses += cache_misses;
                }
                Event::EndpointBatch {
                    endpoint,
                    duration_us,
                    retries,
                    circuit_opens,
                    circuit_rejections,
                    failures,
                    skipped,
                    cache_hit,
                    ..
                } => {
                    let agg = self.endpoint_aggs.entry(endpoint.clone()).or_default();
                    agg.batches += 1;
                    agg.retries += retries;
                    agg.circuit_opens += circuit_opens;
                    agg.circuit_rejections += circuit_rejections;
                    agg.failures += failures;
                    if *cache_hit {
                        agg.cache_hits += 1;
                    } else if *skipped {
                        agg.skipped += 1;
                    } else {
                        agg.samples_us.push(*duration_us);
                    }
                }
                Event::ParisIteration { matches, .. } => {
                    self.paris_iterations += 1;
                    self.paris_final_matches = *matches;
                }
                Event::BlacklistHit { .. } => self.blacklist_hits += 1,
                _ => {}
            }
        }
        self.rebuild_endpoints();
    }

    /// Merge a Prometheus text-format metrics dump: every non-comment
    /// `name{labels} value` line becomes a `metrics` entry.
    pub fn add_metrics_dump(&mut self, prom: &str) {
        for line in prom.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(split) = line.rfind(' ') {
                let (name, value) = line.split_at(split);
                if let Ok(v) = value.trim().parse::<f64>() {
                    *self.metrics.entry(name.trim().to_string()).or_insert(0.0) += v;
                }
            }
        }
    }

    fn rebuild_endpoints(&mut self) {
        self.endpoints = self
            .endpoint_aggs
            .iter_mut()
            .map(|(name, agg)| {
                agg.samples_us.sort_unstable();
                EndpointSummary {
                    endpoint: name.clone(),
                    batches: agg.batches,
                    cache_hits: agg.cache_hits,
                    skipped: agg.skipped,
                    p50_us: percentile(&agg.samples_us, 50.0),
                    p95_us: percentile(&agg.samples_us, 95.0),
                    p99_us: percentile(&agg.samples_us, 99.0),
                    max_us: agg.samples_us.last().copied().unwrap_or(0),
                    retries: agg.retries,
                    circuit_opens: agg.circuit_opens,
                    circuit_rejections: agg.circuit_rejections,
                    failures: agg.failures,
                }
            })
            .collect();
    }

    /// Serialize the report as a JSON object.
    pub fn to_json(&self) -> String {
        let episodes: Vec<String> = self
            .episodes
            .iter()
            .map(|e| {
                let mut w = ObjectWriter::new();
                w.u64("run", e.run as u64)
                    .u64("episode", e.episode)
                    .f64("precision", e.precision)
                    .f64("recall", e.recall)
                    .f64("f_measure", e.f_measure)
                    .u64("added", e.added)
                    .u64("removed", e.removed)
                    .u64("churn", e.churn)
                    .u64("rollbacks", e.rollbacks)
                    .u64("duration_us", e.duration_us);
                w.finish()
            })
            .collect();
        let endpoints: Vec<String> = self
            .endpoints
            .iter()
            .map(|e| {
                let mut w = ObjectWriter::new();
                w.str("endpoint", &e.endpoint)
                    .u64("batches", e.batches)
                    .u64("cache_hits", e.cache_hits)
                    .u64("skipped", e.skipped)
                    .u64("p50_us", e.p50_us)
                    .u64("p95_us", e.p95_us)
                    .u64("p99_us", e.p99_us)
                    .u64("max_us", e.max_us)
                    .u64("retries", e.retries)
                    .u64("circuit_opens", e.circuit_opens)
                    .u64("circuit_rejections", e.circuit_rejections)
                    .u64("failures", e.failures);
                w.finish()
            })
            .collect();
        let mut fed = ObjectWriter::new();
        fed.u64("queries", self.federation.queries)
            .u64("answers", self.federation.answers)
            .u64("provenance_answers", self.federation.provenance_answers)
            .u64("probes", self.federation.probes)
            .u64("retries", self.federation.retries)
            .u64("degraded_queries", self.federation.degraded_queries)
            .u64("skipped_sources", self.federation.skipped_sources)
            .u64("cache_hits", self.federation.cache_hits)
            .u64("cache_misses", self.federation.cache_misses)
            .f64("cache_hit_ratio", self.federation.cache_hit_ratio())
            .f64("completeness", self.federation.completeness());
        let mut metrics = String::from("{");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                metrics.push(',');
            }
            metrics.push('"');
            escape_into(name, &mut metrics);
            metrics.push_str("\":");
            let _ = write!(metrics, "{value}");
        }
        metrics.push('}');
        let mut paris = ObjectWriter::new();
        paris
            .u64("iterations", self.paris_iterations)
            .u64("final_matches", self.paris_final_matches);
        let mut w = ObjectWriter::new();
        w.u64("runs", self.runs as u64)
            .raw("episodes", &format!("[{}]", episodes.join(",")))
            .raw("federation", &fed.finish())
            .raw("endpoints", &format!("[{}]", endpoints.join(",")))
            .raw("paris", &paris.finish())
            .u64("blacklist_hits", self.blacklist_hits)
            .raw("metrics", &metrics);
        w.finish()
    }

    /// Render the aligned text-table form of the report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report: {} run(s), {} episode(s)",
            self.runs,
            self.episodes.len()
        );

        if !self.episodes.is_empty() {
            let _ = writeln!(
                out,
                "\n{:>3}  {:>4}  {:>9}  {:>7}  {:>7}  {:>7}  {:>7}  {:>6}  {:>9}  {:>10}",
                "run",
                "ep",
                "precision",
                "recall",
                "F",
                "added",
                "removed",
                "churn",
                "rollbacks",
                "duration"
            );
            for e in &self.episodes {
                let _ = writeln!(
                    out,
                    "{:>3}  {:>4}  {:>9.4}  {:>7.4}  {:>7.4}  {:>7}  {:>7}  {:>6}  {:>9}  {:>9.2}ms",
                    e.run,
                    e.episode,
                    e.precision,
                    e.recall,
                    e.f_measure,
                    e.added,
                    e.removed,
                    e.churn,
                    e.rollbacks,
                    e.duration_us as f64 / 1_000.0
                );
            }
        }

        let f = &self.federation;
        if f.queries > 0 {
            let _ = writeln!(
                out,
                "\nfederation: {} queries, {} answers ({} via sameAs), {} probes, \
                 {} retries, {} degraded ({} sources skipped), completeness {:.1}%, \
                 cache hit ratio {:.1}% ({}/{})",
                f.queries,
                f.answers,
                f.provenance_answers,
                f.probes,
                f.retries,
                f.degraded_queries,
                f.skipped_sources,
                f.completeness() * 100.0,
                f.cache_hit_ratio() * 100.0,
                f.cache_hits,
                f.cache_hits + f.cache_misses,
            );
        }

        if !self.endpoints.is_empty() {
            let width = self
                .endpoints
                .iter()
                .map(|e| e.endpoint.len())
                .max()
                .unwrap_or(8)
                .max("endpoint".len());
            let _ = writeln!(
                out,
                "\n{:<width$}  {:>7}  {:>6}  {:>7}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7}  {:>5}  {:>7}  {:>8}",
                "endpoint", "batches", "cached", "skipped", "p50", "p95", "p99", "max", "retries",
                "opens", "rejects", "failures"
            );
            for e in &self.endpoints {
                let ms = |us: u64| format!("{:.2}ms", us as f64 / 1_000.0);
                let _ = writeln!(
                    out,
                    "{:<width$}  {:>7}  {:>6}  {:>7}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7}  {:>5}  {:>7}  {:>8}",
                    e.endpoint,
                    e.batches,
                    e.cache_hits,
                    e.skipped,
                    ms(e.p50_us),
                    ms(e.p95_us),
                    ms(e.p99_us),
                    ms(e.max_us),
                    e.retries,
                    e.circuit_opens,
                    e.circuit_rejections,
                    e.failures,
                );
            }
        }

        if self.paris_iterations > 0 {
            let _ = writeln!(
                out,
                "\nparis: {} iteration(s), final matches {}",
                self.paris_iterations, self.paris_final_matches
            );
        }
        if self.blacklist_hits > 0 {
            let _ = writeln!(out, "blacklist hits: {}", self.blacklist_hits);
        }

        if !self.metrics.is_empty() {
            let width = self
                .metrics
                .keys()
                .map(String::len)
                .max()
                .unwrap_or(6)
                .max("metric".len());
            let _ = writeln!(out, "\n{:<width$}  {:>14}", "metric", "value");
            for (name, value) in &self.metrics {
                let _ = writeln!(out, "{name:<width$}  {value:>14}");
            }
        }
        out
    }
}
