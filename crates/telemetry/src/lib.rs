//! `alex-telemetry`: zero-dependency observability for the ALEX pipeline.
//!
//! Three pillars, all reachable through the process-wide [`global`]
//! instance:
//!
//! * **Spans** ([`spans`]) — RAII wall-clock timers that nest per thread
//!   and aggregate by slash-joined path (`improve/episode/feedback`).
//! * **Metrics** ([`metrics`]) — atomic counters, gauges, and fixed-bucket
//!   histograms with p50/p95/p99 accessors, exportable as Prometheus text
//!   or JSON.
//! * **Events** ([`events`]) — a typed, structured JSONL event log behind
//!   an opt-in sink.
//!
//! Plus the profiling layer built on top of spans:
//!
//! * **Timeline** ([`timeline`]) — an opt-in lock-free per-thread recorder
//!   of span begin/end + instant events, which [`trace`] exports as Chrome
//!   trace-event JSON (Perfetto-loadable) and [`attribution`] reduces to
//!   per-phase self time, per-worker busy/idle, chunk skew, and a
//!   critical-path estimate.
//! * **Reports** ([`report`]) — aggregation of JSONL event logs + metrics
//!   dumps into a convergence / latency / completeness run report.
//!
//! # Cost model when disabled
//!
//! The library is built to be left compiled-in:
//!
//! * An un-sinked [`EventLog::emit_with`](events::EventLog::emit_with) is
//!   one relaxed atomic load plus a branch; the event-building closure is
//!   never invoked, so nothing allocates or formats.
//! * A counter increment is one relaxed `fetch_add`; the name lookup is
//!   paid once per call site via the [`counter!`] macro's `OnceLock`.
//! * Spans cost two `Instant::now` calls plus one short mutex-guarded map
//!   update on drop — they are placed at episode/phase granularity, never
//!   inside per-item loops.

#![forbid(unsafe_code)]

pub mod attribution;
pub mod events;
pub mod json;
pub mod metrics;
pub mod report;
pub mod spans;
pub mod timeline;
pub mod trace;

pub use attribution::{attribute, Attribution};
pub use events::{Event, EventLog, EventSink, JsonlFileSink, MemorySink};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, DURATION_BUCKETS};
pub use report::RunReport;
pub use spans::{span, ContextGuard, SpanContext, SpanGuard, SpanRegistry, SpanStats};
pub use trace::{chrome_trace_json, validate_chrome_trace, write_chrome_trace};

use std::sync::OnceLock;

/// The three registries bundled as the process-wide telemetry instance.
pub struct Telemetry {
    spans: SpanRegistry,
    metrics: MetricsRegistry,
    events: EventLog,
}

impl Telemetry {
    fn new() -> Self {
        Telemetry {
            spans: SpanRegistry::default(),
            metrics: MetricsRegistry::default(),
            events: EventLog::default(),
        }
    }

    /// The span registry.
    pub fn spans(&self) -> &SpanRegistry {
        &self.spans
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }
}

/// The process-wide telemetry instance.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// Emit an event lazily: the expression is evaluated only when a sink is
/// attached. Shorthand for `global().events().emit_with(|| ...)`.
#[macro_export]
macro_rules! emit {
    ($event:expr) => {
        $crate::global().events().emit_with(|| $event)
    };
}

/// A cached handle to the global counter `$name`. The registry lookup runs
/// once per call site; afterwards this is a `OnceLock` load.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().metrics().counter($name))
    }};
}

/// A cached handle to the global histogram `$name` (duration buckets by
/// default, or explicit bounds).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {
        $crate::histogram!($name, $crate::DURATION_BUCKETS)
    };
    ($name:expr, $bounds:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().metrics().histogram($name, $bounds))
    }};
}
