//! Randomized robustness check: the parser must terminate (accept or error)
//! on arbitrary input, including multi-byte UTF-8.
//!
//! ```sh
//! cargo run --release -p alex-sparql --example fuzz
//! ```

use rand::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let chars: Vec<char> = (32u8..127)
        .map(|b| b as char)
        .chain("\n\t\u{e9}\u{4e16}\u{1F600}\u{0301}\u{2028}".chars())
        .collect();
    let iterations = 500_000u64;
    for iter in 0..iterations {
        let len = rng.random_range(0..60);
        let s: String = (0..len).map(|_| *chars.choose(&mut rng).unwrap()).collect();
        let start = std::time::Instant::now();
        let _ = alex_sparql::parse(&s);
        assert!(
            start.elapsed().as_millis() < 500,
            "parser stalled on {s:?} (iteration {iter})"
        );
    }
    println!("parsed {iterations} random inputs without stalling");
}
