//! Canonical query fingerprints for cache keying and deduplication.
//!
//! [`fingerprint`] hashes a parsed [`Query`] into a `u64` that is
//! invariant under the two rewrites that do not change a query's
//! meaning in this subset:
//!
//! * **variable renaming** — variables contribute no name, only a
//!   *color* computed by iterative refinement from how they occur
//!   (which positions, alongside which constants, in which clause
//!   kinds), starting from a name-independent constant; and
//! * **triple reordering** — the required patterns (and the patterns
//!   within each OPTIONAL group, the branches of each UNION and the
//!   patterns within each branch, and the filter set) are combined
//!   commutatively, so their syntactic order cannot matter.
//!
//! Everything semantically ordered stays ordered: the projection list,
//! `ORDER BY` keys, the sequence of OPTIONAL groups (left-outer joins
//! compose in order), `DISTINCT`, `LIMIT`, and the query kind.
//!
//! This is color refinement, not full graph canonicalization: two
//! structurally distinct queries can in principle collide (as can any
//! 64-bit hash), which is fine for cache keying — lookups that care
//! about exactness compare the normalized text from
//! [`Query::to_sparql`] as a tiebreak.

use std::collections::HashMap;

use crate::ast::{CmpOp, Expr, Operand, Query, Selection, TermPattern, TriplePattern};
use crate::value::Value;

/// FNV-1a offset basis.
const SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a byte string.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = SEED;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Order-sensitive combine (a tagged mix; not commutative).
fn mix(h: u64, x: u64) -> u64 {
    let mut v = h ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    v ^= v >> 29;
    v = v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v ^= v >> 32;
    v
}

/// How many refinement rounds: enough to separate variables along any
/// chain the subset can express (pattern counts are small), bounded so
/// hashing stays O(query size).
const ROUNDS: usize = 4;

/// Name-independent initial color for every variable.
const INITIAL_COLOR: u64 = 0x5bd1_e995;

/// Hash one term under the current variable coloring.
fn term_hash(term: &TermPattern, colors: &HashMap<String, u64>) -> u64 {
    match term {
        TermPattern::Value(v) => mix(hash_bytes(b"val"), value_hash(v)),
        TermPattern::Var(name) => mix(
            hash_bytes(b"var"),
            colors.get(name).copied().unwrap_or(INITIAL_COLOR),
        ),
    }
}

fn value_hash(v: &Value) -> u64 {
    hash_bytes(v.to_string().as_bytes())
}

/// Structural hash of a pattern: position-tagged term hashes, mixed in
/// (subject, predicate, object) order.
fn pattern_hash(p: &TriplePattern, colors: &HashMap<String, u64>) -> u64 {
    let mut h = hash_bytes(b"pattern");
    h = mix(h, term_hash(&p.subject, colors));
    h = mix(h, term_hash(&p.predicate, colors));
    h = mix(h, term_hash(&p.object, colors));
    h
}

fn operand_hash(op: &Operand, colors: &HashMap<String, u64>) -> u64 {
    match op {
        Operand::Var(v) => mix(
            hash_bytes(b"ovar"),
            colors.get(v).copied().unwrap_or(INITIAL_COLOR),
        ),
        Operand::Const(v) => mix(hash_bytes(b"oconst"), value_hash(v)),
        Operand::Str(v) => mix(
            hash_bytes(b"ostr"),
            colors.get(v).copied().unwrap_or(INITIAL_COLOR),
        ),
    }
}

fn expr_hash(e: &Expr, colors: &HashMap<String, u64>) -> u64 {
    match e {
        Expr::Cmp(op, a, b) => {
            let tag = match op {
                CmpOp::Eq => b"cmp=" as &[u8],
                CmpOp::Ne => b"cmp!",
                CmpOp::Lt => b"cmp<",
                CmpOp::Le => b"cmpl",
                CmpOp::Gt => b"cmp>",
                CmpOp::Ge => b"cmpg",
            };
            mix(
                mix(hash_bytes(tag), operand_hash(a, colors)),
                operand_hash(b, colors),
            )
        }
        Expr::Contains(arg, needle) => mix(
            mix(hash_bytes(b"contains"), operand_hash(arg, colors)),
            hash_bytes(needle.as_bytes()),
        ),
        Expr::And(a, b) => {
            // && is commutative: combine the sides order-free.
            hash_bytes(b"and").wrapping_add(expr_hash(a, colors).wrapping_add(expr_hash(b, colors)))
        }
        Expr::Or(a, b) => {
            hash_bytes(b"or").wrapping_add(expr_hash(a, colors).wrapping_add(expr_hash(b, colors)))
        }
        Expr::Not(inner) => mix(hash_bytes(b"not"), expr_hash(inner, colors)),
    }
}

/// All variable names mentioned anywhere in the query.
fn all_variables(q: &Query) -> Vec<String> {
    let mut out: Vec<String> = q.pattern_variables();
    let mut push = |name: &str| {
        if !out.iter().any(|v| v == name) {
            out.push(name.to_string());
        }
    };
    fn expr_vars(e: &Expr, push: &mut dyn FnMut(&str)) {
        match e {
            Expr::Cmp(_, a, b) => {
                operand_var(a, push);
                operand_var(b, push);
            }
            Expr::Contains(arg, _) => operand_var(arg, push),
            Expr::And(a, b) | Expr::Or(a, b) => {
                expr_vars(a, push);
                expr_vars(b, push);
            }
            Expr::Not(inner) => expr_vars(inner, push),
        }
    }
    fn operand_var(op: &Operand, push: &mut dyn FnMut(&str)) {
        match op {
            Operand::Var(v) | Operand::Str(v) => push(v),
            Operand::Const(_) => {}
        }
    }
    for f in q.filters() {
        expr_vars(f, &mut push);
    }
    for key in &q.order_by {
        push(&key.variable);
    }
    if let Selection::Vars(vs) = &q.selection {
        for v in vs {
            push(v);
        }
    }
    out
}

/// One refinement round: every variable absorbs a commutative signal
/// from each of its occurrences (the enclosing clause's hash, tagged by
/// position and clause kind), so a variable's color encodes its whole
/// neighbourhood after a few rounds — without ever reading its name.
fn refine(q: &Query, colors: &mut HashMap<String, u64>) {
    let mut signals: HashMap<String, u64> = HashMap::new();
    let mut send = |name: &str, signal: u64| {
        let entry = signals.entry(name.to_string()).or_insert(0);
        // Commutative accumulation: occurrence order cannot matter.
        *entry = entry.wrapping_add(signal);
    };
    let pattern_signals = |p: &TriplePattern, clause_tag: u64, send: &mut dyn FnMut(&str, u64)| {
        let ph = mix(clause_tag, pattern_hash(p, colors));
        for (pos, term) in [
            (b"s" as &[u8], &p.subject),
            (b"p", &p.predicate),
            (b"o", &p.object),
        ] {
            if let TermPattern::Var(name) = term {
                send(name, mix(hash_bytes(pos), ph));
            }
        }
    };
    let required_tag = hash_bytes(b"required");
    for p in q.patterns() {
        pattern_signals(p, required_tag, &mut send);
    }
    // OPTIONAL groups are ordered; tag each group's patterns with its
    // index so "same pattern, different group" stays distinguishable.
    for (gi, group) in q.optionals().enumerate() {
        let tag = mix(hash_bytes(b"optional"), gi as u64);
        for p in group {
            pattern_signals(p, tag, &mut send);
        }
    }
    // UNION alternations are ordered, but the branches within each are
    // not: tag each pattern with its union's index plus a commutative
    // hash of its own branch, so branch reordering cannot change any
    // signal while "same pattern, different branch shape" still can.
    for (ui, branches) in q.unions().enumerate() {
        let union_tag = mix(hash_bytes(b"union"), ui as u64);
        for branch in branches {
            let mut bh: u64 = 0;
            for p in branch {
                bh = bh.wrapping_add(pattern_hash(p, colors));
            }
            let tag = mix(union_tag, bh);
            for p in branch {
                pattern_signals(p, tag, &mut send);
            }
        }
    }
    for f in q.filters() {
        let fh = mix(hash_bytes(b"filter"), expr_hash(f, colors));
        for name in crate::expr::expr_variables(f) {
            send(name, fh);
        }
    }
    for (name, signal) in signals {
        let old = colors.get(&name).copied().unwrap_or(INITIAL_COLOR);
        colors.insert(name, mix(old, signal));
    }
}

/// Canonical 64-bit fingerprint of a query (see module docs for the
/// exact invariances).
pub fn fingerprint(q: &Query) -> u64 {
    let mut colors: HashMap<String, u64> = all_variables(q)
        .into_iter()
        .map(|v| (v, INITIAL_COLOR))
        .collect();
    for _ in 0..ROUNDS {
        refine(q, &mut colors);
    }

    let mut h = hash_bytes(b"alex-query-v1");
    h = mix(
        h,
        match q.kind {
            crate::ast::QueryKind::Select => 1,
            crate::ast::QueryKind::Ask => 2,
        },
    );
    h = mix(h, u64::from(q.distinct));
    h = mix(h, q.limit.map_or(u64::MAX, |l| l as u64));

    // Projection is ordered (SELECT ?a ?b ≠ SELECT ?b ?a).
    match &q.selection {
        Selection::All => h = mix(h, hash_bytes(b"select*")),
        Selection::Vars(vs) => {
            h = mix(h, hash_bytes(b"select"));
            for v in vs {
                h = mix(h, colors.get(v).copied().unwrap_or(INITIAL_COLOR));
            }
        }
    }

    // Required patterns and filters: commutative (reorder-invariant).
    let mut required: u64 = 0;
    for p in q.patterns() {
        required = required.wrapping_add(pattern_hash(p, &colors));
    }
    h = mix(h, required);
    let mut filters: u64 = 0;
    for f in q.filters() {
        filters = filters.wrapping_add(expr_hash(f, &colors));
    }
    h = mix(h, filters);

    // OPTIONAL groups: ordered sequence of commutative group hashes.
    for group in q.optionals() {
        let mut gh: u64 = 0;
        for p in group {
            gh = gh.wrapping_add(pattern_hash(p, &colors));
        }
        h = mix(h, mix(hash_bytes(b"group"), gh));
    }

    // UNION alternations: ordered sequence, but within each the branch
    // set is commutative (a branch hash is itself a commutative pattern
    // sum, mixed once so the branch partitioning stays visible).
    for branches in q.unions() {
        let mut uh: u64 = 0;
        for branch in branches {
            let mut bh: u64 = 0;
            for p in branch {
                bh = bh.wrapping_add(pattern_hash(p, &colors));
            }
            uh = uh.wrapping_add(mix(hash_bytes(b"branch"), bh));
        }
        h = mix(h, mix(hash_bytes(b"union"), uh));
    }

    // ORDER BY: ordered, with direction.
    for key in &q.order_by {
        let color = colors.get(&key.variable).copied().unwrap_or(INITIAL_COLOR);
        h = mix(h, mix(color, u64::from(key.descending)));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn fp(src: &str) -> u64 {
        fingerprint(&parse(src).unwrap())
    }

    #[test]
    fn renaming_variables_preserves_the_fingerprint() {
        assert_eq!(
            fp("SELECT ?a WHERE { ?a <http://e/p> ?b . ?b <http://e/q> \"x\" }"),
            fp("SELECT ?x WHERE { ?x <http://e/p> ?y . ?y <http://e/q> \"x\" }"),
        );
    }

    #[test]
    fn reordering_required_patterns_preserves_the_fingerprint() {
        assert_eq!(
            fp("SELECT * WHERE { ?a <http://e/p> ?b . ?b <http://e/q> ?c }"),
            fp("SELECT * WHERE { ?b <http://e/q> ?c . ?a <http://e/p> ?b }"),
        );
    }

    #[test]
    fn different_structure_changes_the_fingerprint() {
        let base = fp("SELECT ?a WHERE { ?a <http://e/p> ?b }");
        assert_ne!(base, fp("SELECT ?a WHERE { ?a <http://e/q> ?b }"));
        assert_ne!(base, fp("SELECT ?b WHERE { ?a <http://e/p> ?b }"));
        assert_ne!(base, fp("ASK { ?a <http://e/p> ?b }"));
        assert_ne!(base, fp("SELECT DISTINCT ?a WHERE { ?a <http://e/p> ?b }"));
        assert_ne!(base, fp("SELECT ?a WHERE { ?a <http://e/p> ?b } LIMIT 3"));
    }

    #[test]
    fn projection_order_matters() {
        assert_ne!(
            fp("SELECT ?a ?b WHERE { ?a <http://e/p> ?b }"),
            fp("SELECT ?b ?a WHERE { ?a <http://e/p> ?b }"),
        );
    }

    #[test]
    fn variable_topology_is_distinguished_without_names() {
        // ?a→?b, ?b→?c (chain) vs ?a→?b, ?a→?c (fan-out): same pattern
        // multiset shapes, different joins — refinement must separate
        // them.
        assert_ne!(
            fp("SELECT * WHERE { ?a <http://e/p> ?b . ?b <http://e/p> ?c }"),
            fp("SELECT * WHERE { ?a <http://e/p> ?b . ?a <http://e/p> ?c }"),
        );
    }

    #[test]
    fn union_branch_reordering_preserves_the_fingerprint() {
        assert_eq!(
            fp("SELECT * WHERE { { ?a <http://e/p> ?b } UNION { ?a <http://e/q> ?b } }"),
            fp("SELECT * WHERE { { ?a <http://e/q> ?b } UNION { ?a <http://e/p> ?b } }"),
        );
        // Renaming composes with branch reordering.
        assert_eq!(
            fp("SELECT ?a WHERE { { ?a <http://e/p> ?b . ?b <http://e/r> ?c } UNION { ?a <http://e/q> ?b } }"),
            fp("SELECT ?x WHERE { { ?x <http://e/q> ?y } UNION { ?x <http://e/p> ?y . ?y <http://e/r> ?z } }"),
        );
    }

    #[test]
    fn union_branch_partitioning_changes_the_fingerprint() {
        // {A,B} UNION {C} vs {A} UNION {B,C}: same pattern multiset,
        // different alternation — the branch grouping must be visible.
        assert_ne!(
            fp("SELECT * WHERE { { ?a <http://e/p> ?b . ?a <http://e/q> ?b } UNION { ?a <http://e/r> ?b } }"),
            fp("SELECT * WHERE { { ?a <http://e/p> ?b } UNION { ?a <http://e/q> ?b . ?a <http://e/r> ?b } }"),
        );
        // A union is not the same as requiring one branch.
        assert_ne!(
            fp("SELECT * WHERE { { ?a <http://e/p> ?b } UNION { ?a <http://e/q> ?b } }"),
            fp("SELECT * WHERE { ?a <http://e/p> ?b . ?a <http://e/q> ?b }"),
        );
    }

    #[test]
    fn filter_and_order_reorderings_behave() {
        // Filters are an unordered set…
        assert_eq!(
            fp("SELECT ?a WHERE { ?a <http://e/p> ?b FILTER(?b > 1) FILTER(?b < 9) }"),
            fp("SELECT ?a WHERE { ?a <http://e/p> ?b FILTER(?b < 9) FILTER(?b > 1) }"),
        );
        // …but ORDER BY keys are a priority list.
        assert_ne!(
            fp("SELECT * WHERE { ?a <http://e/p> ?b } ORDER BY ?a ?b"),
            fp("SELECT * WHERE { ?a <http://e/p> ?b } ORDER BY ?b ?a"),
        );
    }
}
