//! Filter-expression evaluation.

use std::collections::BTreeMap;

use crate::ast::{CmpOp, Expr, Operand};
use crate::error::{Result, SparqlError};
use crate::value::Value;

/// A solution mapping: variable name → value.
pub type Bindings = BTreeMap<String, Value>;

/// Evaluate a filter expression against a solution mapping.
///
/// Unbound variables are an evaluation error (the executor only applies a
/// filter once all its variables are bound).
pub fn eval_expr(expr: &Expr, bindings: &Bindings) -> Result<bool> {
    match expr {
        Expr::And(a, b) => Ok(eval_expr(a, bindings)? && eval_expr(b, bindings)?),
        Expr::Or(a, b) => Ok(eval_expr(a, bindings)? || eval_expr(b, bindings)?),
        Expr::Not(e) => Ok(!eval_expr(e, bindings)?),
        Expr::Contains(arg, needle) => {
            let v = resolve(arg, bindings)?;
            Ok(v.lexical().to_lowercase().contains(&needle.to_lowercase()))
        }
        Expr::Cmp(op, left, right) => {
            let l = resolve(left, bindings)?;
            let r = resolve(right, bindings)?;
            Ok(compare(*op, &l, &r))
        }
    }
}

/// Variables referenced by an expression.
pub fn expr_variables(expr: &Expr) -> Vec<&str> {
    fn operand_var(op: &Operand) -> Option<&str> {
        match op {
            Operand::Var(v) | Operand::Str(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
    fn walk<'a>(expr: &'a Expr, out: &mut Vec<&'a str>) {
        match expr {
            Expr::And(a, b) | Expr::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::Not(e) => walk(e, out),
            Expr::Contains(arg, _) => out.extend(operand_var(arg)),
            Expr::Cmp(_, l, r) => {
                out.extend(operand_var(l));
                out.extend(operand_var(r));
            }
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn resolve(op: &Operand, bindings: &Bindings) -> Result<Value> {
    match op {
        Operand::Const(v) => Ok(v.clone()),
        Operand::Var(name) => bindings
            .get(name)
            .cloned()
            .ok_or_else(|| SparqlError::Eval(format!("unbound variable ?{name}"))),
        Operand::Str(name) => {
            let v = bindings
                .get(name)
                .ok_or_else(|| SparqlError::Eval(format!("unbound variable ?{name}")))?;
            Ok(Value::plain(v.lexical()))
        }
    }
}

/// SPARQL-style value comparison: numeric when both sides parse as numbers,
/// lexical-form comparison otherwise; equality falls back to term equality
/// with a lexical-form escape hatch for `STR()`-ed values.
fn compare(op: CmpOp, l: &Value, r: &Value) -> bool {
    if let (Some(a), Some(b)) = (l.as_number(), r.as_number()) {
        return match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
    }
    match op {
        CmpOp::Eq => l == r || l.lexical() == r.lexical() && same_shape(l, r),
        CmpOp::Ne => !compare(CmpOp::Eq, l, r),
        CmpOp::Lt => l.lexical() < r.lexical(),
        CmpOp::Le => l.lexical() <= r.lexical(),
        CmpOp::Gt => l.lexical() > r.lexical(),
        CmpOp::Ge => l.lexical() >= r.lexical(),
    }
}

/// Whether two values are of comparable shapes for lexical equality: both
/// literals (ignoring datatype/lang differences) or both IRIs.
fn same_shape(l: &Value, r: &Value) -> bool {
    matches!(
        (l, r),
        (Value::Literal { .. }, Value::Literal { .. }) | (Value::Iri(_), Value::Iri(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn numeric_comparisons() {
        let b = bind(&[("x", Value::typed("5", alex_rdf::vocab::XSD_INTEGER))]);
        let lt = Expr::Cmp(
            CmpOp::Lt,
            Operand::Var("x".into()),
            Operand::Const(Value::typed("10", alex_rdf::vocab::XSD_INTEGER)),
        );
        assert!(eval_expr(&lt, &b).unwrap());
        let ge = Expr::Cmp(
            CmpOp::Ge,
            Operand::Var("x".into()),
            Operand::Const(Value::plain("5.0")),
        );
        assert!(
            eval_expr(&ge, &b).unwrap(),
            "mixed plain/typed numerics compare numerically"
        );
    }

    #[test]
    fn string_comparison_lexicographic() {
        let b = bind(&[("x", Value::plain("apple"))]);
        let lt = Expr::Cmp(
            CmpOp::Lt,
            Operand::Var("x".into()),
            Operand::Const(Value::plain("banana")),
        );
        assert!(eval_expr(&lt, &b).unwrap());
    }

    #[test]
    fn equality_ignores_plain_vs_typed_string() {
        let b = bind(&[("x", Value::plain("abc"))]);
        let eq = Expr::Cmp(
            CmpOp::Eq,
            Operand::Var("x".into()),
            Operand::Const(Value::typed("abc", alex_rdf::vocab::XSD_STRING)),
        );
        assert!(eval_expr(&eq, &b).unwrap());
    }

    #[test]
    fn iri_vs_literal_never_equal() {
        let b = bind(&[("x", Value::iri("abc"))]);
        let eq = Expr::Cmp(
            CmpOp::Eq,
            Operand::Var("x".into()),
            Operand::Const(Value::plain("abc")),
        );
        assert!(!eval_expr(&eq, &b).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let b = bind(&[("x", Value::typed("5", alex_rdf::vocab::XSD_INTEGER))]);
        let true_cmp = || {
            Expr::Cmp(
                CmpOp::Eq,
                Operand::Var("x".into()),
                Operand::Const(Value::plain("5")),
            )
        };
        let false_cmp = || {
            Expr::Cmp(
                CmpOp::Eq,
                Operand::Var("x".into()),
                Operand::Const(Value::plain("6")),
            )
        };
        assert!(eval_expr(&Expr::And(Box::new(true_cmp()), Box::new(true_cmp())), &b).unwrap());
        assert!(!eval_expr(&Expr::And(Box::new(true_cmp()), Box::new(false_cmp())), &b).unwrap());
        assert!(eval_expr(&Expr::Or(Box::new(false_cmp()), Box::new(true_cmp())), &b).unwrap());
        assert!(eval_expr(&Expr::Not(Box::new(false_cmp())), &b).unwrap());
    }

    #[test]
    fn contains_is_case_insensitive() {
        let b = bind(&[("n", Value::plain("LeBron James"))]);
        let c = Expr::Contains(Operand::Str("n".into()), "lebron".into());
        assert!(eval_expr(&c, &b).unwrap());
        let miss = Expr::Contains(Operand::Str("n".into()), "jordan".into());
        assert!(!eval_expr(&miss, &b).unwrap());
    }

    #[test]
    fn unbound_variable_is_error() {
        let b = Bindings::new();
        let e = Expr::Cmp(
            CmpOp::Eq,
            Operand::Var("ghost".into()),
            Operand::Const(Value::plain("x")),
        );
        assert!(matches!(eval_expr(&e, &b), Err(SparqlError::Eval(_))));
    }

    #[test]
    fn expr_variables_collects_unique_sorted() {
        let e = Expr::And(
            Box::new(Expr::Cmp(
                CmpOp::Eq,
                Operand::Var("b".into()),
                Operand::Var("a".into()),
            )),
            Box::new(Expr::Contains(Operand::Str("a".into()), "x".into())),
        );
        assert_eq!(expr_variables(&e), vec!["a", "b"]);
    }
}
