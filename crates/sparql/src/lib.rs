//! # alex-sparql — SPARQL subset engine with federation and link provenance
//!
//! ALEX sits behind a federated query system (Fig. 1): users query multiple
//! linked data sets, and feedback on an *answer* is interpreted as feedback
//! on the *links* that produced it. That requires a query layer which (a)
//! evaluates across data sets, (b) bridges entities through `owl:sameAs`
//! links, and (c) reports, per answer, exactly which links were used. This
//! crate provides all three:
//!
//! * [`parse`] — a hand-written parser for the SPARQL subset (`PREFIX`,
//!   `SELECT [DISTINCT]`, BGPs, `FILTER`, `LIMIT`);
//! * [`FederatedEngine`] — FedX-style source selection, variable-counting
//!   join ordering, and bound joins over [`Endpoint`]s;
//! * [`SameAsLinks`] — the mutable link index ALEX edits;
//! * [`QueryAnswer`] — bindings plus the [`Link`]s used (provenance).
//!
//! ```
//! use alex_rdf::Dataset;
//! use alex_sparql::{parse, DatasetEndpoint, FederatedEngine, SameAsLinks};
//!
//! let mut db = Dataset::new("DBpedia");
//! db.add_str("http://db/LeBron", "http://db/award", "NBA MVP 2013");
//! let mut nyt = Dataset::new("NYTimes");
//! nyt.add_iri("http://nyt/a1", "http://nyt/about", "http://nyt/lebron");
//!
//! let mut engine = FederatedEngine::new();
//! engine.add_endpoint(Box::new(DatasetEndpoint::new(db)));
//! engine.add_endpoint(Box::new(DatasetEndpoint::new(nyt)));
//! engine.set_links(SameAsLinks::from_pairs(vec![("http://db/LeBron", "http://nyt/lebron")]));
//!
//! let q = parse("SELECT ?article WHERE { \
//!     ?who <http://db/award> \"NBA MVP 2013\" . \
//!     ?article <http://nyt/about> ?who }").unwrap();
//! let answers = engine.execute(&q).unwrap();
//! assert_eq!(answers.len(), 1);
//! assert_eq!(answers[0].links_used.len(), 1); // provenance for feedback
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod canon;
pub mod error;
pub mod expr;
pub mod federation;
pub mod lexer;
pub mod parser;
pub mod value;

pub use ast::{
    CmpOp, Expr, Operand, OrderKey, Query, QueryKind, Selection, TermPattern, TriplePattern,
    WhereElement,
};
pub use canon::fingerprint;
pub use error::{Result, SparqlError};
pub use expr::{eval_expr, Bindings};
pub use federation::{
    rewrite_sameas, BreakerConfig, BreakerState, Catalog, CatalogParseError, Completeness,
    Coverage, DatasetEndpoint, Deadline, Endpoint, EndpointError, FaultProfile, FaultyEndpoint,
    FederatedEngine, FederatedResult, Link, LinkObserver, QueryAnswer, ResilienceConfig,
    RetryPolicy, RewrittenQuery, SameAsLinks,
};
pub use parser::parse;
pub use value::Value;
