//! Error types for the SPARQL engine.

use std::fmt;

use crate::federation::resilience::EndpointError;

/// Errors produced while parsing or evaluating SPARQL queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Syntax error, with byte offset into the query text.
    Parse {
        /// Byte offset of the offending token.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// A runtime evaluation error (type error in a filter, etc.).
    Eval(String),
    /// The query uses a feature outside the supported subset.
    Unsupported(String),
    /// A federated endpoint failed and the engine was configured to
    /// fail fast rather than degrade to a partial result.
    Endpoint(EndpointError),
}

impl From<EndpointError> for SparqlError {
    fn from(err: EndpointError) -> Self {
        SparqlError::Endpoint(err)
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SparqlError::UnknownPrefix(p) => write!(f, "unknown prefix '{p}:'"),
            SparqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SparqlError::Unsupported(m) => write!(f, "unsupported SPARQL feature: {m}"),
            SparqlError::Endpoint(e) => write!(f, "federated endpoint failure: {e}"),
        }
    }
}

impl std::error::Error for SparqlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SparqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SparqlError::Parse {
            position: 4,
            message: "x".into()
        }
        .to_string()
        .contains("byte 4"));
        assert!(SparqlError::UnknownPrefix("foaf".into())
            .to_string()
            .contains("foaf"));
        assert!(SparqlError::Eval("bad".into()).to_string().contains("bad"));
        assert!(SparqlError::Unsupported("OPTIONAL".into())
            .to_string()
            .contains("OPTIONAL"));
        assert!(SparqlError::Endpoint(EndpointError::DeadlineExceeded {
            endpoint: "NYT".into()
        })
        .to_string()
        .contains("NYT"));
    }
}
