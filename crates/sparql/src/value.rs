//! Owned RDF values for query results.
//!
//! Terms inside a [`alex_rdf::Dataset`] are interned symbols that only make
//! sense relative to that data set's interner. Federated query processing
//! joins rows *across* data sets, so results use self-contained [`Value`]s.

use std::fmt;

use alex_rdf::{Dataset, LiteralKind, Term};

/// A self-contained RDF value, comparable across data sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An IRI.
    Iri(String),
    /// A blank node label (scoped to its source data set in practice).
    Blank(String),
    /// A literal with optional language tag or datatype IRI.
    Literal {
        /// Lexical form.
        lexical: String,
        /// Language tag, if any.
        lang: Option<String>,
        /// Datatype IRI, if any.
        datatype: Option<String>,
    },
}

impl Value {
    /// A plain literal.
    pub fn plain(lexical: impl Into<String>) -> Value {
        Value::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: None,
        }
    }

    /// A datatyped literal.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Value {
        Value::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: Some(datatype.into()),
        }
    }

    /// An IRI value.
    pub fn iri(iri: impl Into<String>) -> Value {
        Value::Iri(iri.into())
    }

    /// Whether this value is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Value::Iri(_))
    }

    /// The IRI text, if this is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Value::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The lexical form for literals, or the IRI/blank label otherwise.
    pub fn lexical(&self) -> &str {
        match self {
            Value::Iri(s) | Value::Blank(s) => s,
            Value::Literal { lexical, .. } => lexical,
        }
    }

    /// Parse as a number, if the lexical form permits.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Literal { lexical, .. } => lexical.trim().parse().ok(),
            _ => None,
        }
    }

    /// Resolve a dataset-local term into an owned value.
    pub fn from_term(ds: &Dataset, term: Term) -> Value {
        match term {
            Term::Iri(s) => Value::Iri(ds.resolve_sym(s).to_string()),
            Term::Blank(s) => Value::Blank(format!("{}#{}", ds.name(), ds.resolve_sym(s))),
            Term::Literal(l) => Value::Literal {
                lexical: ds.resolve_sym(l.lexical).to_string(),
                lang: match l.kind {
                    LiteralKind::Lang(t) => Some(ds.resolve_sym(t).to_string()),
                    _ => None,
                },
                datatype: match l.kind {
                    LiteralKind::Typed(dt) => Some(ds.resolve_sym(dt).to_string()),
                    _ => None,
                },
            },
        }
    }

    /// Re-intern this value as a term of `ds` (mutates the interner).
    pub fn to_term(&self, ds: &mut Dataset) -> Term {
        match self {
            Value::Iri(s) => ds.iri(s),
            Value::Blank(s) => {
                let sym = ds.interner_mut().intern(s);
                Term::Blank(sym)
            }
            Value::Literal {
                lexical,
                lang,
                datatype,
            } => match (lang, datatype) {
                (Some(tag), _) => ds.lang(lexical, tag),
                (None, Some(dt)) => ds.typed(lexical, dt),
                (None, None) => ds.plain(lexical),
            },
        }
    }

    /// Look up this value as an existing term of `ds` without interning.
    /// Returns `None` when the value does not occur in the data set.
    pub fn lookup_term(&self, ds: &Dataset) -> Option<Term> {
        let interner = ds.interner();
        match self {
            Value::Iri(s) => interner.get(s).map(Term::Iri),
            Value::Blank(s) => {
                let local = s.rsplit('#').next().unwrap_or(s);
                interner.get(local).map(Term::Blank)
            }
            Value::Literal {
                lexical,
                lang,
                datatype,
            } => {
                let lex = interner.get(lexical)?;
                let kind = match (lang, datatype) {
                    (Some(tag), _) => LiteralKind::Lang(interner.get(tag)?),
                    (None, Some(dt)) => LiteralKind::Typed(interner.get(dt)?),
                    (None, None) => LiteralKind::Plain,
                };
                Some(Term::Literal(alex_rdf::Literal { lexical: lex, kind }))
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Iri(s) => write!(f, "<{s}>"),
            Value::Blank(s) => write!(f, "_:{s}"),
            Value::Literal {
                lexical,
                lang,
                datatype,
            } => {
                write!(f, "\"{lexical}\"")?;
                if let Some(tag) = lang {
                    write!(f, "@{tag}")?;
                }
                if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alex_rdf::vocab;

    #[test]
    fn round_trip_iri() {
        let mut ds = Dataset::new("t");
        let t = ds.iri("http://e/x");
        let v = Value::from_term(&ds, t);
        assert_eq!(v, Value::iri("http://e/x"));
        assert_eq!(v.to_term(&mut ds), t);
        assert_eq!(v.lookup_term(&ds), Some(t));
    }

    #[test]
    fn round_trip_typed_literal() {
        let mut ds = Dataset::new("t");
        let t = ds.typed("42", vocab::XSD_INTEGER);
        let v = Value::from_term(&ds, t);
        assert_eq!(v.as_number(), Some(42.0));
        assert_eq!(v.to_term(&mut ds), t);
        assert_eq!(v.lookup_term(&ds), Some(t));
    }

    #[test]
    fn round_trip_lang_literal() {
        let mut ds = Dataset::new("t");
        let t = ds.lang("bonjour", "fr");
        let v = Value::from_term(&ds, t);
        assert_eq!(
            v,
            Value::Literal {
                lexical: "bonjour".into(),
                lang: Some("fr".into()),
                datatype: None
            }
        );
        assert_eq!(v.to_term(&mut ds), t);
    }

    #[test]
    fn lookup_missing_returns_none() {
        let ds = Dataset::new("t");
        assert_eq!(Value::iri("http://nope").lookup_term(&ds), None);
        assert_eq!(Value::plain("nope").lookup_term(&ds), None);
    }

    #[test]
    fn blank_nodes_are_dataset_scoped() {
        let mut a = Dataset::new("A");
        let mut b = Dataset::new("B");
        let ta = Term::Blank(a.interner_mut().intern("b0"));
        let tb = Term::Blank(b.interner_mut().intern("b0"));
        assert_ne!(Value::from_term(&a, ta), Value::from_term(&b, tb));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::iri("http://e/x").to_string(), "<http://e/x>");
        assert_eq!(Value::plain("hi").to_string(), "\"hi\"");
        assert_eq!(
            Value::typed("1", vocab::XSD_INTEGER).to_string(),
            format!("\"1\"^^<{}>", vocab::XSD_INTEGER)
        );
    }

    #[test]
    fn as_number_rejects_text() {
        assert_eq!(Value::plain("abc").as_number(), None);
        assert_eq!(Value::iri("http://e/1").as_number(), None);
        assert_eq!(Value::plain(" 2.5 ").as_number(), Some(2.5));
    }
}
