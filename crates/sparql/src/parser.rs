//! Recursive-descent parser for the SPARQL subset.

use std::collections::HashMap;

use crate::ast::{
    CmpOp, Expr, Operand, OrderKey, Query, QueryKind, Selection, TermPattern, TriplePattern,
    WhereElement,
};
use crate::error::{Result, SparqlError};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::Value;

/// Parse a query string into a [`Query`].
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    }
    .query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn err(&self, message: impl Into<String>) -> SparqlError {
        SparqlError::Parse {
            position: self.position(),
            message: message.into(),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.bump() {
            TokenKind::Word(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn expand(&self, prefix: &str, local: &str) -> Result<String> {
        self.prefixes
            .get(prefix)
            .map(|ns| format!("{ns}{local}"))
            .ok_or_else(|| SparqlError::UnknownPrefix(prefix.to_string()))
    }

    fn query(&mut self) -> Result<Query> {
        while self.peek_keyword("PREFIX") {
            self.bump();
            let (prefix, local) = match self.bump() {
                TokenKind::Prefixed(p, l) => (p, l),
                other => {
                    return Err(self.err(format!("expected prefix declaration, found {other:?}")))
                }
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                TokenKind::Iri(iri) => iri,
                other => return Err(self.err(format!("expected IRI, found {other:?}"))),
            };
            self.prefixes.insert(prefix, iri);
        }

        let (kind, distinct, selection) = if self.peek_keyword("ASK") {
            self.bump();
            (QueryKind::Ask, false, Selection::All)
        } else {
            self.keyword("SELECT")?;
            let distinct = if self.peek_keyword("DISTINCT") {
                self.bump();
                true
            } else {
                false
            };
            let selection = match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    Selection::All
                }
                TokenKind::Var(_) => {
                    let mut vars = Vec::new();
                    while let TokenKind::Var(v) = self.peek() {
                        vars.push(v.clone());
                        self.bump();
                    }
                    Selection::Vars(vars)
                }
                other => {
                    return Err(self.err(format!("expected '*' or variables, found {other:?}")))
                }
            };
            (QueryKind::Select, distinct, selection)
        };

        // `WHERE` is optional for ASK.
        if self.peek_keyword("WHERE") {
            self.bump();
        } else if kind == QueryKind::Select {
            return Err(self.err("expected WHERE"));
        }
        if !matches!(self.bump(), TokenKind::LBrace) {
            return Err(self.err("expected '{'"));
        }
        let mut where_clause = Vec::new();
        loop {
            match self.peek() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    if !matches!(self.bump(), TokenKind::LParen) {
                        return Err(self.err("expected '(' after FILTER"));
                    }
                    let expr = self.or_expr()?;
                    if !matches!(self.bump(), TokenKind::RParen) {
                        return Err(self.err("expected ')' closing FILTER"));
                    }
                    where_clause.push(WhereElement::Filter(expr));
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    if !matches!(self.bump(), TokenKind::LBrace) {
                        return Err(self.err("expected '{' after OPTIONAL"));
                    }
                    let group = self.group_body("OPTIONAL group")?;
                    where_clause.push(WhereElement::Optional(group));
                }
                TokenKind::LBrace => {
                    // `{ … } UNION { … } [UNION { … }]*` — a braced group
                    // inside WHERE is only valid as the first branch of an
                    // alternation.
                    self.bump();
                    let first = self.group_body("UNION branch")?;
                    if !self.peek_keyword("UNION") {
                        return Err(self.err("expected UNION after '{ … }' group"));
                    }
                    let mut branches = vec![first];
                    while self.peek_keyword("UNION") {
                        self.bump();
                        if !matches!(self.bump(), TokenKind::LBrace) {
                            return Err(self.err("expected '{' after UNION"));
                        }
                        branches.push(self.group_body("UNION branch")?);
                    }
                    where_clause.push(WhereElement::Union(branches));
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("GRAPH") => {
                    return Err(SparqlError::Unsupported(w.clone()));
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("UNION") => {
                    return Err(self.err("UNION must follow a '{ … }' group"));
                }
                TokenKind::Eof => return Err(self.err("unterminated WHERE group")),
                _ => {
                    let subject = self.term_pattern()?;
                    let predicate = self.predicate_pattern()?;
                    let object = self.term_pattern()?;
                    where_clause.push(WhereElement::Pattern(TriplePattern {
                        subject,
                        predicate,
                        object,
                    }));
                    if matches!(self.peek(), TokenKind::Dot) {
                        self.bump();
                    }
                }
            }
        }

        let mut order_by = Vec::new();
        if self.peek_keyword("ORDER") {
            self.bump();
            self.keyword("BY")?;
            loop {
                match self.peek().clone() {
                    TokenKind::Var(v) => {
                        self.bump();
                        order_by.push(OrderKey {
                            variable: v,
                            descending: false,
                        });
                    }
                    TokenKind::Word(w)
                        if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                    {
                        let descending = w.eq_ignore_ascii_case("DESC");
                        self.bump();
                        if !matches!(self.bump(), TokenKind::LParen) {
                            return Err(self.err("expected '(' after ASC/DESC"));
                        }
                        let var = match self.bump() {
                            TokenKind::Var(v) => v,
                            other => {
                                return Err(self.err(format!("expected variable, found {other:?}")))
                            }
                        };
                        if !matches!(self.bump(), TokenKind::RParen) {
                            return Err(self.err("expected ')'"));
                        }
                        order_by.push(OrderKey {
                            variable: var,
                            descending,
                        });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.err("ORDER BY requires at least one key"));
            }
        }

        let mut limit = None;
        if self.peek_keyword("LIMIT") {
            self.bump();
            match self.bump() {
                TokenKind::Number(n) => {
                    limit = Some(n.parse().map_err(|_| self.err("invalid LIMIT"))?);
                }
                other => {
                    return Err(self.err(format!("expected number after LIMIT, found {other:?}")))
                }
            }
        }
        match self.peek() {
            TokenKind::Eof => {}
            other => return Err(self.err(format!("unexpected trailing token {other:?}"))),
        }

        Ok(Query {
            kind,
            selection,
            distinct,
            where_clause,
            order_by,
            limit,
        })
    }

    /// The body of a braced triple-pattern group (an OPTIONAL group or a
    /// UNION branch); the opening `{` has already been consumed. The subset
    /// allows only triple patterns inside — nested OPTIONAL / FILTER /
    /// UNION / groups are rejected, as are empty groups.
    fn group_body(&mut self, context: &str) -> Result<Vec<TriplePattern>> {
        let mut group = Vec::new();
        loop {
            match self.peek() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Word(w)
                    if w.eq_ignore_ascii_case("OPTIONAL")
                        || w.eq_ignore_ascii_case("FILTER")
                        || w.eq_ignore_ascii_case("UNION") =>
                {
                    return Err(SparqlError::Unsupported(format!("{w} inside {context}")));
                }
                TokenKind::LBrace => {
                    return Err(SparqlError::Unsupported(format!(
                        "nested group inside {context}"
                    )));
                }
                TokenKind::Eof => return Err(self.err(format!("unterminated {context}"))),
                _ => {
                    let subject = self.term_pattern()?;
                    let predicate = self.predicate_pattern()?;
                    let object = self.term_pattern()?;
                    group.push(TriplePattern {
                        subject,
                        predicate,
                        object,
                    });
                    if matches!(self.peek(), TokenKind::Dot) {
                        self.bump();
                    }
                }
            }
        }
        if group.is_empty() {
            return Err(self.err(format!("empty {context}")));
        }
        Ok(group)
    }

    /// A term in subject/object position.
    fn term_pattern(&mut self) -> Result<TermPattern> {
        match self.bump() {
            TokenKind::Var(v) => Ok(TermPattern::Var(v)),
            TokenKind::Iri(iri) => Ok(TermPattern::Value(Value::Iri(iri))),
            TokenKind::Prefixed(p, l) => Ok(TermPattern::Value(Value::Iri(self.expand(&p, &l)?))),
            TokenKind::Literal {
                lexical,
                lang,
                datatype,
            } => Ok(TermPattern::Value(Value::Literal {
                lexical,
                lang,
                datatype,
            })),
            TokenKind::Number(n) => Ok(TermPattern::Value(number_value(&n))),
            other => Err(self.err(format!("expected a term, found {other:?}"))),
        }
    }

    /// A term in predicate position; supports the `a` shorthand.
    fn predicate_pattern(&mut self) -> Result<TermPattern> {
        if let TokenKind::Word(w) = self.peek() {
            if w == "a" {
                self.bump();
                return Ok(TermPattern::Value(Value::iri(alex_rdf::vocab::RDF_TYPE)));
            }
        }
        self.term_pattern()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), TokenKind::Op(o) if o == "||") {
            self.bump();
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        while matches!(self.peek(), TokenKind::Op(o) if o == "&&") {
            self.bump();
            let right = self.unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if matches!(self.peek(), TokenKind::Op(o) if o == "!") {
            self.bump();
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            let e = self.or_expr()?;
            if !matches!(self.bump(), TokenKind::RParen) {
                return Err(self.err("expected ')'"));
            }
            return Ok(e);
        }
        if self.peek_keyword("CONTAINS") {
            self.bump();
            if !matches!(self.bump(), TokenKind::LParen) {
                return Err(self.err("expected '(' after CONTAINS"));
            }
            let arg = self.operand()?;
            if !matches!(self.bump(), TokenKind::Comma) {
                return Err(self.err("expected ',' in CONTAINS"));
            }
            let needle = match self.bump() {
                TokenKind::Literal { lexical, .. } => lexical,
                other => return Err(self.err(format!("expected string, found {other:?}"))),
            };
            if !matches!(self.bump(), TokenKind::RParen) {
                return Err(self.err("expected ')' closing CONTAINS"));
            }
            return Ok(Expr::Contains(arg, needle));
        }
        // Comparison.
        let left = self.operand()?;
        let op = match self.bump() {
            TokenKind::Op(o) => match o.as_str() {
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return Err(self.err(format!("unexpected operator '{other}'"))),
            },
            other => return Err(self.err(format!("expected comparison operator, found {other:?}"))),
        };
        let right = self.operand()?;
        Ok(Expr::Cmp(op, left, right))
    }

    fn operand(&mut self) -> Result<Operand> {
        if self.peek_keyword("STR") {
            self.bump();
            if !matches!(self.bump(), TokenKind::LParen) {
                return Err(self.err("expected '(' after STR"));
            }
            let var = match self.bump() {
                TokenKind::Var(v) => v,
                other => return Err(self.err(format!("expected variable in STR, found {other:?}"))),
            };
            if !matches!(self.bump(), TokenKind::RParen) {
                return Err(self.err("expected ')' closing STR"));
            }
            return Ok(Operand::Str(var));
        }
        match self.bump() {
            TokenKind::Var(v) => Ok(Operand::Var(v)),
            TokenKind::Iri(iri) => Ok(Operand::Const(Value::Iri(iri))),
            TokenKind::Prefixed(p, l) => Ok(Operand::Const(Value::Iri(self.expand(&p, &l)?))),
            TokenKind::Literal {
                lexical,
                lang,
                datatype,
            } => Ok(Operand::Const(Value::Literal {
                lexical,
                lang,
                datatype,
            })),
            TokenKind::Number(n) => Ok(Operand::Const(number_value(&n))),
            other => Err(self.err(format!("expected an operand, found {other:?}"))),
        }
    }
}

/// Convert a numeric token into a typed literal value.
fn number_value(n: &str) -> Value {
    if n.contains('.') {
        Value::typed(n, alex_rdf::vocab::XSD_DOUBLE)
    } else {
        Value::typed(n, alex_rdf::vocab::XSD_INTEGER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let q = parse("SELECT ?s WHERE { ?s <http://e/p> ?o }").unwrap();
        assert_eq!(q.selection, Selection::Vars(vec!["s".into()]));
        assert_eq!(q.patterns().count(), 1);
        assert!(!q.distinct);
        assert_eq!(q.limit, None);
    }

    #[test]
    fn parses_prefixes() {
        let q = parse("PREFIX ex: <http://e/> SELECT * WHERE { ?s ex:p ex:o }").unwrap();
        let p = q.patterns().next().unwrap();
        assert_eq!(p.predicate, TermPattern::Value(Value::iri("http://e/p")));
        assert_eq!(p.object, TermPattern::Value(Value::iri("http://e/o")));
    }

    #[test]
    fn unknown_prefix_errors() {
        let e = parse("SELECT * WHERE { ?s foaf:name ?o }").unwrap_err();
        assert_eq!(e, SparqlError::UnknownPrefix("foaf".into()));
    }

    #[test]
    fn parses_distinct_and_limit() {
        let q = parse("SELECT DISTINCT ?s WHERE { ?s ?p ?o } LIMIT 10").unwrap();
        assert!(q.distinct);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_multiple_patterns_with_dots() {
        let q = parse("SELECT * WHERE { ?s <http://e/p> ?o . ?o <http://e/q> \"v\" . }").unwrap();
        assert_eq!(q.patterns().count(), 2);
    }

    #[test]
    fn parses_a_shorthand() {
        let q = parse("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        let p = q.patterns().next().unwrap();
        assert_eq!(
            p.predicate,
            TermPattern::Value(Value::iri(alex_rdf::vocab::RDF_TYPE))
        );
    }

    #[test]
    fn parses_filter_comparison() {
        let q = parse("SELECT * WHERE { ?s <http://e/age> ?a FILTER(?a >= 18) }").unwrap();
        let f = q.filters().next().unwrap();
        assert!(matches!(f, Expr::Cmp(CmpOp::Ge, _, _)));
    }

    #[test]
    fn parses_boolean_connectives_with_precedence() {
        let q = parse("SELECT * WHERE { ?s <http://e/p> ?a FILTER(?a = 1 || ?a = 2 && ?a != 3) }")
            .unwrap();
        // && binds tighter than ||.
        let f = q.filters().next().unwrap();
        match f {
            Expr::Or(_, right) => assert!(matches!(**right, Expr::And(_, _))),
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_contains_and_str() {
        let q =
            parse("SELECT * WHERE { ?s <http://e/name> ?n FILTER(CONTAINS(STR(?n), \"james\")) }")
                .unwrap();
        let f = q.filters().next().unwrap();
        assert!(matches!(f, Expr::Contains(Operand::Str(_), _)));
    }

    #[test]
    fn parses_negation_and_parens() {
        let q = parse("SELECT * WHERE { ?s ?p ?o FILTER(!(?o = 1)) }").unwrap();
        assert!(matches!(q.filters().next().unwrap(), Expr::Not(_)));
    }

    #[test]
    fn numbers_become_typed_literals() {
        let q = parse("SELECT * WHERE { ?s <http://e/p> 42 }").unwrap();
        let p = q.patterns().next().unwrap();
        assert_eq!(
            p.object,
            TermPattern::Value(Value::typed("42", alex_rdf::vocab::XSD_INTEGER))
        );
    }

    #[test]
    fn parses_ask() {
        let q = parse("ASK { ?s <http://e/p> \"v\" }").unwrap();
        assert_eq!(q.kind, QueryKind::Ask);
        let q = parse("ASK WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(q.kind, QueryKind::Ask);
        assert_eq!(q.patterns().count(), 1);
    }

    #[test]
    fn parses_order_by() {
        let q = parse("SELECT ?s ?n WHERE { ?s <http://e/n> ?n } ORDER BY ?n LIMIT 3").unwrap();
        assert_eq!(
            q.order_by,
            vec![OrderKey {
                variable: "n".into(),
                descending: false
            }]
        );
        assert_eq!(q.limit, Some(3));
        let q = parse("SELECT * WHERE { ?s ?p ?o } ORDER BY DESC(?o) ASC(?s)").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
    }

    #[test]
    fn order_by_requires_a_key() {
        assert!(parse("SELECT * WHERE { ?s ?p ?o } ORDER BY LIMIT 2").is_err());
    }

    #[test]
    fn parses_optional_groups() {
        let q = parse(
            "SELECT * WHERE { ?s <http://e/p> ?o OPTIONAL { ?s <http://e/q> ?x . ?x <http://e/r> ?y } }",
        )
        .unwrap();
        assert_eq!(q.patterns().count(), 1);
        let groups: Vec<_> = q.optionals().collect();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(q.pattern_variables(), vec!["s", "o", "x", "y"]);
    }

    #[test]
    fn rejects_nested_or_filtered_optional() {
        let e =
            parse("SELECT * WHERE { ?s ?p ?o OPTIONAL { OPTIONAL { ?a ?b ?c } } }").unwrap_err();
        assert!(matches!(e, SparqlError::Unsupported(_)));
        let e = parse("SELECT * WHERE { ?s ?p ?o OPTIONAL { FILTER(?o = 1) } }").unwrap_err();
        assert!(matches!(e, SparqlError::Unsupported(_)));
        assert!(parse("SELECT * WHERE { ?s ?p ?o OPTIONAL { } }").is_err());
    }

    #[test]
    fn parses_union_alternation() {
        let q = parse(
            "SELECT * WHERE { ?s <http://e/k> ?v { ?s <http://e/p> ?o } UNION { ?s <http://e/q> ?o . ?o <http://e/r> ?w } }",
        )
        .unwrap();
        assert_eq!(q.patterns().count(), 1);
        let unions: Vec<_> = q.unions().collect();
        assert_eq!(unions.len(), 1);
        assert_eq!(unions[0].len(), 2);
        assert_eq!(unions[0][0].len(), 1);
        assert_eq!(unions[0][1].len(), 2);
        assert_eq!(q.pattern_variables(), vec!["s", "v", "o", "w"]);
    }

    #[test]
    fn parses_three_branch_union() {
        let q = parse(
            "ASK { { ?s <http://e/p> ?o } UNION { ?s <http://e/q> ?o } UNION { ?s <http://e/r> ?o } }",
        )
        .unwrap();
        assert_eq!(q.unions().next().unwrap().len(), 3);
    }

    #[test]
    fn union_rejects_malformed_groups() {
        // A bare group with no UNION keyword is not part of the subset.
        assert!(parse("SELECT * WHERE { { ?s ?p ?o } }").is_err());
        // UNION without a preceding braced group.
        assert!(parse("SELECT * WHERE { ?s ?p ?o UNION { ?a ?b ?c } }").is_err());
        // Empty branches and missing braces.
        assert!(parse("SELECT * WHERE { { } UNION { ?a ?b ?c } }").is_err());
        assert!(parse("SELECT * WHERE { { ?s ?p ?o } UNION ?a ?b ?c }").is_err());
        // No nesting inside a branch.
        let e =
            parse("SELECT * WHERE { { OPTIONAL { ?a ?b ?c } } UNION { ?s ?p ?o } }").unwrap_err();
        assert!(matches!(e, SparqlError::Unsupported(_)));
        let e = parse("SELECT * WHERE { { FILTER(?o = 1) } UNION { ?s ?p ?o } }").unwrap_err();
        assert!(matches!(e, SparqlError::Unsupported(_)));
        let e = parse("SELECT * WHERE { { { ?s ?p ?o } } UNION { ?s ?p ?o } }").unwrap_err();
        assert!(matches!(e, SparqlError::Unsupported(_)));
    }

    #[test]
    fn rejects_unsupported_features() {
        let e = parse("SELECT * WHERE { GRAPH <http://e/g> { ?s ?p ?o } }").unwrap_err();
        assert!(matches!(e, SparqlError::Unsupported(_)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT * WHERE { ?s ?p ?o } garbage").is_err());
    }

    #[test]
    fn rejects_unterminated_where() {
        assert!(parse("SELECT * WHERE { ?s ?p ?o").is_err());
    }
}
