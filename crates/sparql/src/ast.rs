//! Abstract syntax for the supported SPARQL subset.
//!
//! The subset covers what the paper's federated-query scenario needs:
//! `PREFIX`, `SELECT [DISTINCT] ?v… | *` and `ASK`, basic graph patterns,
//! `OPTIONAL { … }` groups, `FILTER` with comparisons / boolean connectives
//! / `CONTAINS` / `STR`, `ORDER BY`, and `LIMIT`.

use crate::value::Value;

/// A position in a triple pattern: a variable or a constant value.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    /// A variable, without the leading `?`.
    Var(String),
    /// A constant value.
    Value(Value),
}

impl TermPattern {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Value(_) => None,
        }
    }
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: TermPattern,
    /// Predicate position.
    pub predicate: TermPattern,
    /// Object position.
    pub object: TermPattern,
}

impl TriplePattern {
    /// Variables mentioned by this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|t| t.as_var())
            .collect()
    }
}

/// Comparison operators in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An operand of a filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A variable reference.
    Var(String),
    /// A constant.
    Const(Value),
    /// `STR(?v)` — the lexical form of a variable's value.
    Str(String),
}

/// A filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Binary comparison.
    Cmp(CmpOp, Operand, Operand),
    /// `CONTAINS(arg, "needle")`, case-insensitive.
    Contains(Operand, String),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// One element of a `WHERE` group.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereElement {
    /// A triple pattern.
    Pattern(TriplePattern),
    /// A filter.
    Filter(Expr),
    /// An `OPTIONAL { … }` group: left-outer-joined against the required
    /// part. The subset allows triple patterns inside (no nesting).
    Optional(Vec<TriplePattern>),
}

/// Projection clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// `SELECT *` — all variables in order of first appearance.
    All,
    /// `SELECT ?a ?b …`
    Vars(Vec<String>),
}

/// The query form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `SELECT …` — returns solution mappings.
    Select,
    /// `ASK …` — returns whether any solution exists.
    Ask,
}

/// A sort key: variable plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Variable name (without `?`).
    pub variable: String,
    /// Whether the order is descending.
    pub descending: bool,
}

/// A parsed SELECT or ASK query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT or ASK.
    pub kind: QueryKind,
    /// Projection (ignored for ASK).
    pub selection: Selection,
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// Patterns and filters in syntactic order.
    pub where_clause: Vec<WhereElement>,
    /// `ORDER BY` keys, in priority order.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
}

impl Query {
    /// Required (non-optional) triple patterns of the query, in order.
    pub fn patterns(&self) -> impl Iterator<Item = &TriplePattern> {
        self.where_clause.iter().filter_map(|e| match e {
            WhereElement::Pattern(p) => Some(p),
            _ => None,
        })
    }

    /// Filters of the query, in order.
    pub fn filters(&self) -> impl Iterator<Item = &Expr> {
        self.where_clause.iter().filter_map(|e| match e {
            WhereElement::Filter(f) => Some(f),
            _ => None,
        })
    }

    /// OPTIONAL groups of the query, in order.
    pub fn optionals(&self) -> impl Iterator<Item = &Vec<TriplePattern>> {
        self.where_clause.iter().filter_map(|e| match e {
            WhereElement::Optional(g) => Some(g),
            _ => None,
        })
    }

    /// All variables in order of first appearance in the patterns
    /// (required first, then optional groups).
    pub fn pattern_variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let push = |p: &TriplePattern, out: &mut Vec<String>| {
            for v in p.variables() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_string());
                }
            }
        };
        for p in self.patterns() {
            push(p, &mut out);
        }
        for group in self.optionals() {
            for p in group {
                push(p, &mut out);
            }
        }
        out
    }

    /// The projected variables (resolving `SELECT *`).
    pub fn projection(&self) -> Vec<String> {
        match &self.selection {
            Selection::All => self.pattern_variables(),
            Selection::Vars(vs) => vs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        Query {
            kind: QueryKind::Select,
            order_by: Vec::new(),
            selection: Selection::Vars(vec!["a".into()]),
            distinct: false,
            where_clause: vec![
                WhereElement::Pattern(TriplePattern {
                    subject: TermPattern::Var("a".into()),
                    predicate: TermPattern::Value(Value::iri("http://e/p")),
                    object: TermPattern::Var("b".into()),
                }),
                WhereElement::Filter(Expr::Cmp(
                    CmpOp::Eq,
                    Operand::Var("b".into()),
                    Operand::Const(Value::plain("x")),
                )),
            ],
            limit: None,
        }
    }

    #[test]
    fn patterns_and_filters_split() {
        let q = sample();
        assert_eq!(q.patterns().count(), 1);
        assert_eq!(q.filters().count(), 1);
    }

    #[test]
    fn pattern_variables_in_order() {
        let q = sample();
        assert_eq!(q.pattern_variables(), vec!["a", "b"]);
    }

    #[test]
    fn projection_resolves_star() {
        let mut q = sample();
        q.selection = Selection::All;
        assert_eq!(q.projection(), vec!["a", "b"]);
    }

    #[test]
    fn triple_pattern_variables() {
        let p = TriplePattern {
            subject: TermPattern::Var("s".into()),
            predicate: TermPattern::Var("p".into()),
            object: TermPattern::Value(Value::plain("o")),
        };
        assert_eq!(p.variables(), vec!["s", "p"]);
    }
}
