//! Abstract syntax for the supported SPARQL subset.
//!
//! The subset covers what the paper's federated-query scenario needs:
//! `PREFIX`, `SELECT [DISTINCT] ?v… | *` and `ASK`, basic graph patterns,
//! `OPTIONAL { … }` groups, `{ … } UNION { … }` alternations, `FILTER`
//! with comparisons / boolean connectives / `CONTAINS` / `STR`,
//! `ORDER BY`, and `LIMIT`.

use crate::value::Value;

/// A position in a triple pattern: a variable or a constant value.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    /// A variable, without the leading `?`.
    Var(String),
    /// A constant value.
    Value(Value),
}

impl TermPattern {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Value(_) => None,
        }
    }
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: TermPattern,
    /// Predicate position.
    pub predicate: TermPattern,
    /// Object position.
    pub object: TermPattern,
}

impl TriplePattern {
    /// Variables mentioned by this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|t| t.as_var())
            .collect()
    }
}

/// Comparison operators in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An operand of a filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A variable reference.
    Var(String),
    /// A constant.
    Const(Value),
    /// `STR(?v)` — the lexical form of a variable's value.
    Str(String),
}

/// A filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Binary comparison.
    Cmp(CmpOp, Operand, Operand),
    /// `CONTAINS(arg, "needle")`, case-insensitive.
    Contains(Operand, String),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// One element of a `WHERE` group.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereElement {
    /// A triple pattern.
    Pattern(TriplePattern),
    /// A filter.
    Filter(Expr),
    /// An `OPTIONAL { … }` group: left-outer-joined against the required
    /// part. The subset allows triple patterns inside (no nesting).
    Optional(Vec<TriplePattern>),
    /// A `{ … } UNION { … }` alternation: each branch is a group of triple
    /// patterns (no nesting), and solutions of the element are the set
    /// union of the branches' solutions joined against the rest of the
    /// query. Always has at least two branches.
    Union(Vec<Vec<TriplePattern>>),
}

/// Projection clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// `SELECT *` — all variables in order of first appearance.
    All,
    /// `SELECT ?a ?b …`
    Vars(Vec<String>),
}

/// The query form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `SELECT …` — returns solution mappings.
    Select,
    /// `ASK …` — returns whether any solution exists.
    Ask,
}

/// A sort key: variable plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Variable name (without `?`).
    pub variable: String,
    /// Whether the order is descending.
    pub descending: bool,
}

/// A parsed SELECT or ASK query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT or ASK.
    pub kind: QueryKind,
    /// Projection (ignored for ASK).
    pub selection: Selection,
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// Patterns and filters in syntactic order.
    pub where_clause: Vec<WhereElement>,
    /// `ORDER BY` keys, in priority order.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
}

impl Query {
    /// Required (non-optional) triple patterns of the query, in order.
    pub fn patterns(&self) -> impl Iterator<Item = &TriplePattern> {
        self.where_clause.iter().filter_map(|e| match e {
            WhereElement::Pattern(p) => Some(p),
            _ => None,
        })
    }

    /// Filters of the query, in order.
    pub fn filters(&self) -> impl Iterator<Item = &Expr> {
        self.where_clause.iter().filter_map(|e| match e {
            WhereElement::Filter(f) => Some(f),
            _ => None,
        })
    }

    /// OPTIONAL groups of the query, in order.
    pub fn optionals(&self) -> impl Iterator<Item = &Vec<TriplePattern>> {
        self.where_clause.iter().filter_map(|e| match e {
            WhereElement::Optional(g) => Some(g),
            _ => None,
        })
    }

    /// UNION alternations of the query, in order. Each item is the list of
    /// branches; each branch is a group of triple patterns.
    pub fn unions(&self) -> impl Iterator<Item = &Vec<Vec<TriplePattern>>> {
        self.where_clause.iter().filter_map(|e| match e {
            WhereElement::Union(branches) => Some(branches),
            _ => None,
        })
    }

    /// All variables in order of first appearance in the patterns
    /// (required first, then optional groups).
    pub fn pattern_variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let push = |p: &TriplePattern, out: &mut Vec<String>| {
            for v in p.variables() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_string());
                }
            }
        };
        for p in self.patterns() {
            push(p, &mut out);
        }
        for branches in self.unions() {
            for branch in branches {
                for p in branch {
                    push(p, &mut out);
                }
            }
        }
        for group in self.optionals() {
            for p in group {
                push(p, &mut out);
            }
        }
        out
    }

    /// The projected variables (resolving `SELECT *`).
    pub fn projection(&self) -> Vec<String> {
        match &self.selection {
            Selection::All => self.pattern_variables(),
            Selection::Vars(vs) => vs.clone(),
        }
    }

    /// Serialize back to SPARQL text that re-parses to an equal `Query`.
    ///
    /// The output is normalized: IRIs are written in full `<…>` form
    /// (prefixes were expanded at parse time), numbers as typed literals
    /// (how the parser stores them), and nested boolean expressions are
    /// fully parenthesized. For any query the parser can produce,
    /// `parse(q.to_sparql())` equals `q` and serialization is a fixpoint
    /// — the round-trip property the fuzz harness enforces. Queries
    /// built by hand around the parser's value space (blank nodes,
    /// variable names with non-word characters, literals with escapes
    /// outside `\" \\ \n \t \r`) have no parseable concrete syntax and
    /// are not round-trippable.
    pub fn to_sparql(&self) -> String {
        let mut out = String::new();
        match self.kind {
            QueryKind::Select => {
                out.push_str("SELECT ");
                if self.distinct {
                    out.push_str("DISTINCT ");
                }
                match &self.selection {
                    Selection::All => out.push('*'),
                    Selection::Vars(vs) => {
                        for (i, v) in vs.iter().enumerate() {
                            if i > 0 {
                                out.push(' ');
                            }
                            out.push('?');
                            out.push_str(v);
                        }
                    }
                }
                out.push_str(" WHERE ");
            }
            QueryKind::Ask => out.push_str("ASK "),
        }
        out.push_str("{ ");
        for (i, element) in self.where_clause.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match element {
                WhereElement::Pattern(p) => {
                    write_pattern(&mut out, p);
                    out.push_str(" .");
                }
                WhereElement::Filter(f) => {
                    out.push_str("FILTER(");
                    write_expr(&mut out, f);
                    out.push(')');
                }
                WhereElement::Optional(group) => {
                    out.push_str("OPTIONAL { ");
                    for (j, p) in group.iter().enumerate() {
                        if j > 0 {
                            out.push(' ');
                        }
                        write_pattern(&mut out, p);
                        out.push_str(" .");
                    }
                    out.push_str(" }");
                }
                WhereElement::Union(branches) => {
                    for (b, branch) in branches.iter().enumerate() {
                        if b > 0 {
                            out.push_str(" UNION ");
                        }
                        out.push_str("{ ");
                        for (j, p) in branch.iter().enumerate() {
                            if j > 0 {
                                out.push(' ');
                            }
                            write_pattern(&mut out, p);
                            out.push_str(" .");
                        }
                        out.push_str(" }");
                    }
                }
            }
        }
        out.push_str(" }");
        if !self.order_by.is_empty() {
            out.push_str(" ORDER BY");
            for key in &self.order_by {
                out.push(' ');
                out.push_str(if key.descending { "DESC(?" } else { "ASC(?" });
                out.push_str(&key.variable);
                out.push(')');
            }
        }
        if let Some(limit) = self.limit {
            out.push_str(&format!(" LIMIT {limit}"));
        }
        out
    }
}

fn write_pattern(out: &mut String, p: &TriplePattern) {
    write_term(out, &p.subject);
    out.push(' ');
    write_term(out, &p.predicate);
    out.push(' ');
    write_term(out, &p.object);
}

fn write_term(out: &mut String, t: &TermPattern) {
    match t {
        TermPattern::Var(v) => {
            out.push('?');
            out.push_str(v);
        }
        TermPattern::Value(v) => write_value(out, v),
    }
}

/// A value in concrete syntax. Unlike `Value`'s `Display` (a debugging
/// form), string escapes here are exactly the set the lexer accepts.
fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Iri(iri) => {
            out.push('<');
            out.push_str(iri);
            out.push('>');
        }
        // The parser has no blank-node syntax; emit the Display form so
        // the output is at least readable (it will not re-parse).
        Value::Blank(label) => {
            out.push_str("_:");
            out.push_str(label);
        }
        Value::Literal {
            lexical,
            lang,
            datatype,
        } => {
            out.push('"');
            for c in lexical.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
            if let Some(lang) = lang {
                out.push('@');
                out.push_str(lang);
            } else if let Some(dt) = datatype {
                out.push_str("^^<");
                out.push_str(dt);
                out.push('>');
            }
        }
    }
}

fn write_operand(out: &mut String, op: &Operand) {
    match op {
        Operand::Var(v) => {
            out.push('?');
            out.push_str(v);
        }
        Operand::Const(v) => write_value(out, v),
        Operand::Str(v) => {
            out.push_str("STR(?");
            out.push_str(v);
            out.push(')');
        }
    }
}

/// Fully parenthesized rendering: operand order and nesting survive the
/// parser's precedence (`||` looser than `&&` looser than `!`) exactly.
fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Cmp(op, a, b) => {
            write_operand(out, a);
            out.push_str(match op {
                CmpOp::Eq => " = ",
                CmpOp::Ne => " != ",
                CmpOp::Lt => " < ",
                CmpOp::Le => " <= ",
                CmpOp::Gt => " > ",
                CmpOp::Ge => " >= ",
            });
            write_operand(out, b);
        }
        Expr::Contains(arg, needle) => {
            out.push_str("CONTAINS(");
            write_operand(out, arg);
            out.push_str(", \"");
            for c in needle.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push_str("\")");
        }
        Expr::And(a, b) => {
            out.push('(');
            write_expr(out, a);
            out.push_str(") && (");
            write_expr(out, b);
            out.push(')');
        }
        Expr::Or(a, b) => {
            out.push('(');
            write_expr(out, a);
            out.push_str(") || (");
            write_expr(out, b);
            out.push(')');
        }
        Expr::Not(inner) => {
            out.push_str("!(");
            write_expr(out, inner);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        Query {
            kind: QueryKind::Select,
            order_by: Vec::new(),
            selection: Selection::Vars(vec!["a".into()]),
            distinct: false,
            where_clause: vec![
                WhereElement::Pattern(TriplePattern {
                    subject: TermPattern::Var("a".into()),
                    predicate: TermPattern::Value(Value::iri("http://e/p")),
                    object: TermPattern::Var("b".into()),
                }),
                WhereElement::Filter(Expr::Cmp(
                    CmpOp::Eq,
                    Operand::Var("b".into()),
                    Operand::Const(Value::plain("x")),
                )),
            ],
            limit: None,
        }
    }

    #[test]
    fn patterns_and_filters_split() {
        let q = sample();
        assert_eq!(q.patterns().count(), 1);
        assert_eq!(q.filters().count(), 1);
    }

    #[test]
    fn pattern_variables_in_order() {
        let q = sample();
        assert_eq!(q.pattern_variables(), vec!["a", "b"]);
    }

    #[test]
    fn projection_resolves_star() {
        let mut q = sample();
        q.selection = Selection::All;
        assert_eq!(q.projection(), vec!["a", "b"]);
    }

    #[test]
    fn to_sparql_round_trips_through_the_parser() {
        let src = "SELECT DISTINCT ?a ?b WHERE { ?a <http://e/p> ?b . \
                   FILTER((?b = \"x\") && (!(?a != ?b))) \
                   OPTIONAL { ?a <http://e/q> ?c } } \
                   ORDER BY ASC(?b) DESC(?a) LIMIT 5";
        let q = crate::parser::parse(src).unwrap();
        let text = q.to_sparql();
        let q2 = crate::parser::parse(&text)
            .unwrap_or_else(|e| panic!("serialized form must re-parse: {e:?}\n{text}"));
        assert_eq!(q, q2);
        assert_eq!(q2.to_sparql(), text, "serialization is a fixpoint");
    }

    #[test]
    fn union_round_trips_through_the_parser() {
        let src = "SELECT * WHERE { ?s <http://e/k> ?v . \
                   { ?s <http://e/p> ?o . } UNION { ?s <http://e/q> ?o . } \
                   UNION { ?s <http://e/r> ?o . } }";
        let q = crate::parser::parse(src).unwrap();
        let branches: Vec<_> = q.unions().collect();
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].len(), 3);
        assert_eq!(q.pattern_variables(), vec!["s", "v", "o"]);
        let text = q.to_sparql();
        let q2 = crate::parser::parse(&text)
            .unwrap_or_else(|e| panic!("serialized form must re-parse: {e:?}\n{text}"));
        assert_eq!(q, q2);
        assert_eq!(q2.to_sparql(), text, "serialization is a fixpoint");
    }

    #[test]
    fn to_sparql_escapes_and_types_literals() {
        let src = "ASK { ?s <http://e/p> \"line\\nbreak \\\"quoted\\\"\" . \
                   ?s <http://e/n> 42 . ?s <http://e/l> \"hi\"@en }";
        let q = crate::parser::parse(src).unwrap();
        let text = q.to_sparql();
        assert_eq!(crate::parser::parse(&text).unwrap(), q);
    }

    #[test]
    fn triple_pattern_variables() {
        let p = TriplePattern {
            subject: TermPattern::Var("s".into()),
            predicate: TermPattern::Var("p".into()),
            object: TermPattern::Value(Value::plain("o")),
        };
        assert_eq!(p.variables(), vec!["s", "p"]);
    }
}
