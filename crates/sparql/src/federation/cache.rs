//! Answer-cache glue between the federated executor and [`alex_cache`].
//!
//! The executor caches at the *per-endpoint sub-query batch* level: one
//! entry holds everything a single endpoint returned for one pattern
//! extension (the full probe-job list derived from the pattern's
//! resolved positions and their sameAs alternatives). The key is the
//! endpoint id plus the binding signature of the pattern's positions
//! *before* sameAs expansion; the anchors are exactly the bound
//! subject/object IRIs whose `equivalents()` neighbourhood determined
//! the job list. Mutating a link `(l, r)` changes `equivalents()` only
//! for `l` and `r`, so invalidating the entries anchored there — via
//! the cache's inverted index — is exact: no stale entry survives, no
//! unaffected entry is dropped.

use std::sync::Arc;

use alex_cache::AnswerCache;
use alex_telemetry::counter;

use super::links::{Link, LinkObserver};
use crate::value::Value;

/// Per-endpoint answer batch for one probe-job list: `rows[j]` is the
/// complete row set job `j` returned on this endpoint.
pub(crate) type CachedRows = Vec<Vec<[Value; 3]>>;

/// The executor's cache instantiation.
pub(crate) type FederationCache = AnswerCache<CachedRows>;

/// [`LinkObserver`] dropping exactly the cached entries whose
/// provenance touches a mutated sameAs pair. Subscribed to the
/// engine's link index when the cache is enabled, so every effective
/// mutation — add on exploration, remove on rejection, blacklist,
/// rollback, resume-replay — invalidates through the same hook.
pub(crate) struct CacheInvalidator {
    pub(crate) cache: Arc<FederationCache>,
}

impl LinkObserver for CacheInvalidator {
    fn link_added(&self, link: &Link) {
        let n = self.cache.invalidate_pair(&link.left, &link.right);
        counter!("cache_invalidations_total").add(n as u64);
    }

    fn link_removed(&self, link: &Link) {
        let n = self.cache.invalidate_pair(&link.left, &link.right);
        counter!("cache_invalidations_total").add(n as u64);
    }
}

/// Append one resolved probe position to a key: `*;` for a wildcard,
/// else the length-prefixed display form (the prefix makes the
/// three-part concatenation injective — no two position triples can
/// collide by boundary shifting).
fn push_sig(out: &mut String, v: Option<&Value>) {
    match v {
        None => out.push_str("*;"),
        Some(v) => {
            let s = v.to_string();
            out.push_str(&s.len().to_string());
            out.push(':');
            out.push_str(&s);
            out.push(';');
        }
    }
}

/// Cache addressing for one pattern extension: the binding signature of
/// the pattern's resolved positions (pre-sameAs-expansion) plus the
/// anchors the cached batches depend on.
pub(crate) struct CacheProbe {
    base: String,
    anchors: Vec<String>,
}

impl CacheProbe {
    /// Build the signature from the three resolved positions (`None` =
    /// unbound wildcard). Anchors are the bound subject/object IRIs:
    /// the probe-job list varies with the link index only through
    /// their `equivalents()` sets.
    pub(crate) fn new(s: Option<&Value>, p: Option<&Value>, o: Option<&Value>) -> CacheProbe {
        let mut base = String::new();
        push_sig(&mut base, s);
        push_sig(&mut base, p);
        push_sig(&mut base, o);
        let mut anchors: Vec<String> = Vec::new();
        if let Some(Value::Iri(iri)) = s {
            anchors.push(iri.clone());
        }
        if let Some(Value::Iri(iri)) = o {
            if !anchors.contains(iri) {
                anchors.push(iri.clone());
            }
        }
        CacheProbe { base, anchors }
    }

    /// Stamp a sameAs-closure generation into the signature. Rewritten
    /// executions use this: a rewritten query is only answer-equivalent
    /// under the exact closure it was rewritten at, and its dependence
    /// on the closure is *global* (any link can add or drop a union
    /// branch somewhere), not limited to this probe's anchors. Anchor
    /// invalidation therefore cannot keep rewritten entries honest —
    /// the generation in the key makes every post-mutation lookup miss
    /// instead. Plain (non-rewritten) probes keep their unstamped keys
    /// and exact anchor invalidation.
    pub(crate) fn stamp_generation(mut self, generation: u64) -> CacheProbe {
        // `base` is a sequence of self-delimiting `push_sig` components,
        // so appending a fourth component keeps the keyspace disjoint
        // from (injective against) unstamped three-component keys.
        push_sig(
            &mut self.base,
            Some(&Value::plain(format!("g{generation}"))),
        );
        self
    }

    /// The full cache key for one endpoint.
    pub(crate) fn key_for(&self, endpoint: &str) -> String {
        let mut key = String::with_capacity(endpoint.len() + self.base.len() + 8);
        push_sig(&mut key, Some(&Value::plain(endpoint)));
        key.push_str(&self.base);
        key
    }

    /// The IRIs whose sameAs neighbourhood the cached batches depend on.
    pub(crate) fn anchors(&self) -> &[String] {
        &self.anchors
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn signatures_are_injective_across_boundaries() {
        // "ab" + "c" vs "a" + "bc" must not produce the same key.
        let a = CacheProbe::new(Some(&Value::plain("ab")), Some(&Value::plain("c")), None);
        let b = CacheProbe::new(Some(&Value::plain("a")), Some(&Value::plain("bc")), None);
        assert_ne!(a.key_for("e"), b.key_for("e"));
        // Endpoint name cannot bleed into the signature either.
        assert_ne!(a.key_for("e1"), a.key_for("e"));
    }

    #[test]
    fn anchors_are_bound_iris_only() {
        let p = CacheProbe::new(
            Some(&Value::iri("http://l/1")),
            Some(&Value::iri("http://pred")),
            Some(&Value::plain("literal")),
        );
        assert_eq!(p.anchors(), ["http://l/1".to_string()]);
        let wild = CacheProbe::new(None, None, None);
        assert!(wild.anchors().is_empty());
        let dup = CacheProbe::new(
            Some(&Value::iri("http://x")),
            None,
            Some(&Value::iri("http://x")),
        );
        assert_eq!(dup.anchors().len(), 1);
    }

    #[test]
    fn generation_stamp_partitions_the_keyspace() {
        let plain = || CacheProbe::new(Some(&Value::iri("http://s")), None, None);
        let unstamped = plain().key_for("e");
        let g0 = plain().stamp_generation(0).key_for("e");
        let g1 = plain().stamp_generation(1).key_for("e");
        assert_ne!(unstamped, g0, "stamped keys never alias plain keys");
        assert_ne!(g0, g1, "each generation is its own keyspace");
        assert_eq!(g1, plain().stamp_generation(1).key_for("e"));
        // The stamp does not disturb the anchor set.
        assert_eq!(
            plain().stamp_generation(3).anchors(),
            ["http://s".to_string()]
        );
    }
}
