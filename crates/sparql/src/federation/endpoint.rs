//! Endpoints: the federation engine's view of a data source.

use alex_rdf::{Dataset, Term};

use crate::value::Value;

/// A queryable data source. In-process wrapper around a data set here; a
/// network SPARQL endpoint in a deployed system.
pub trait Endpoint {
    /// The source's name (used in diagnostics and provenance).
    fn name(&self) -> &str;

    /// All triples matching the pattern; `None` positions are wildcards.
    fn matching(&self, s: Option<&Value>, p: Option<&Value>, o: Option<&Value>) -> Vec<[Value; 3]>;

    /// Whether any triple matches (used for source selection). Default:
    /// materialize and test, which implementations should override if they
    /// can answer cheaper.
    fn has_matches(&self, s: Option<&Value>, p: Option<&Value>, o: Option<&Value>) -> bool {
        !self.matching(s, p, o).is_empty()
    }
}

/// An in-process endpoint over an owned [`Dataset`].
#[derive(Debug, Clone)]
pub struct DatasetEndpoint {
    dataset: Dataset,
}

impl DatasetEndpoint {
    /// Wrap a data set.
    pub fn new(dataset: Dataset) -> Self {
        DatasetEndpoint { dataset }
    }

    /// Borrow the wrapped data set.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Resolve a constant value to a dataset-local term. A constant that
    /// does not occur in the data set matches nothing.
    fn term_of(&self, v: Option<&Value>) -> Result<Option<Term>, ()> {
        match v {
            None => Ok(None),
            Some(v) => match v.lookup_term(&self.dataset) {
                Some(t) => Ok(Some(t)),
                None => Err(()), // constant absent from this data set
            },
        }
    }
}

impl Endpoint for DatasetEndpoint {
    fn name(&self) -> &str {
        self.dataset.name()
    }

    fn matching(&self, s: Option<&Value>, p: Option<&Value>, o: Option<&Value>) -> Vec<[Value; 3]> {
        let (Ok(s), Ok(p), Ok(o)) = (self.term_of(s), self.term_of(p), self.term_of(o)) else {
            return Vec::new();
        };
        self.dataset
            .graph()
            .matching(s, p, o)
            .map(|t| {
                [
                    Value::from_term(&self.dataset, t.subject),
                    Value::from_term(&self.dataset, t.predicate),
                    Value::from_term(&self.dataset, t.object),
                ]
            })
            .collect()
    }

    fn has_matches(&self, s: Option<&Value>, p: Option<&Value>, o: Option<&Value>) -> bool {
        let (Ok(s), Ok(p), Ok(o)) = (self.term_of(s), self.term_of(p), self.term_of(o)) else {
            return false;
        };
        self.dataset.graph().matching(s, p, o).next().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint() -> DatasetEndpoint {
        let mut ds = Dataset::new("T");
        ds.add_str("http://e/a", "http://e/name", "Alpha");
        ds.add_str("http://e/b", "http://e/name", "Beta");
        DatasetEndpoint::new(ds)
    }

    #[test]
    fn wildcard_scan() {
        let ep = endpoint();
        assert_eq!(ep.matching(None, None, None).len(), 2);
    }

    #[test]
    fn bound_subject() {
        let ep = endpoint();
        let s = Value::iri("http://e/a");
        let rows = ep.matching(Some(&s), None, None);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][2], Value::plain("Alpha"));
    }

    #[test]
    fn absent_constant_matches_nothing() {
        let ep = endpoint();
        let s = Value::iri("http://elsewhere/x");
        assert!(ep.matching(Some(&s), None, None).is_empty());
        assert!(!ep.has_matches(Some(&s), None, None));
    }

    #[test]
    fn has_matches_agrees_with_matching() {
        let ep = endpoint();
        let p = Value::iri("http://e/name");
        assert!(ep.has_matches(None, Some(&p), None));
        let q = Value::iri("http://e/other");
        assert!(!ep.has_matches(None, Some(&q), None));
    }

    #[test]
    fn name_is_dataset_name() {
        assert_eq!(endpoint().name(), "T");
    }
}
