//! Endpoints: the federation engine's view of a data source.
//!
//! Endpoint calls are fallible and budgeted: a remote SPARQL endpoint can
//! error, stall, or truncate its response, so `matching` returns a
//! `Result` and takes a per-call [`Deadline`]. The in-process
//! [`DatasetEndpoint`] never fails on its own, but still honors the
//! deadline so the executor's budget accounting is uniform.

use alex_rdf::{Dataset, Term};

use crate::value::Value;

use super::resilience::{Deadline, EndpointError};

/// A queryable data source. In-process wrapper around a data set here; a
/// network SPARQL endpoint in a deployed system.
///
/// `Send + Sync` because the executor dispatches probes to different
/// endpoints concurrently; implementations with mutable state (the fault
/// injector, a connection pool) must synchronize it internally.
pub trait Endpoint: Send + Sync {
    /// The source's name (used in diagnostics and provenance).
    fn name(&self) -> &str;

    /// All triples matching the pattern; `None` positions are wildcards.
    /// Fails when the source errors or the `deadline` expires mid-call.
    fn matching(
        &self,
        s: Option<&Value>,
        p: Option<&Value>,
        o: Option<&Value>,
        deadline: &Deadline,
    ) -> Result<Vec<[Value; 3]>, EndpointError>;

    /// Whether any triple matches (used for source selection). The default
    /// checks the deadline before materializing and propagates endpoint
    /// errors — a failing source must surface as an error, never as a
    /// silent "no matches". Implementations should override this when they
    /// can answer without materializing the full result.
    fn has_matches(
        &self,
        s: Option<&Value>,
        p: Option<&Value>,
        o: Option<&Value>,
        deadline: &Deadline,
    ) -> Result<bool, EndpointError> {
        deadline.check(self.name())?;
        Ok(!self.matching(s, p, o, deadline)?.is_empty())
    }
}

/// An in-process endpoint over an owned [`Dataset`].
#[derive(Debug, Clone)]
pub struct DatasetEndpoint {
    dataset: Dataset,
}

impl DatasetEndpoint {
    /// Wrap a data set.
    pub fn new(dataset: Dataset) -> Self {
        DatasetEndpoint { dataset }
    }

    /// Borrow the wrapped data set.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Resolve a constant value to a dataset-local term. A constant that
    /// does not occur in the data set matches nothing.
    fn term_of(&self, v: Option<&Value>) -> Result<Option<Term>, ()> {
        match v {
            None => Ok(None),
            Some(v) => match v.lookup_term(&self.dataset) {
                Some(t) => Ok(Some(t)),
                None => Err(()), // constant absent from this data set
            },
        }
    }
}

impl Endpoint for DatasetEndpoint {
    fn name(&self) -> &str {
        self.dataset.name()
    }

    fn matching(
        &self,
        s: Option<&Value>,
        p: Option<&Value>,
        o: Option<&Value>,
        deadline: &Deadline,
    ) -> Result<Vec<[Value; 3]>, EndpointError> {
        deadline.check(self.name())?;
        let (Ok(s), Ok(p), Ok(o)) = (self.term_of(s), self.term_of(p), self.term_of(o)) else {
            return Ok(Vec::new());
        };
        Ok(self
            .dataset
            .graph()
            .matching(s, p, o)
            .map(|t| {
                [
                    Value::from_term(&self.dataset, t.subject),
                    Value::from_term(&self.dataset, t.predicate),
                    Value::from_term(&self.dataset, t.object),
                ]
            })
            .collect())
    }

    fn has_matches(
        &self,
        s: Option<&Value>,
        p: Option<&Value>,
        o: Option<&Value>,
        deadline: &Deadline,
    ) -> Result<bool, EndpointError> {
        deadline.check(self.name())?;
        let (Ok(s), Ok(p), Ok(o)) = (self.term_of(s), self.term_of(p), self.term_of(o)) else {
            return Ok(false);
        };
        Ok(self.dataset.graph().matching(s, p, o).next().is_some())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn endpoint() -> DatasetEndpoint {
        let mut ds = Dataset::new("T");
        ds.add_str("http://e/a", "http://e/name", "Alpha");
        ds.add_str("http://e/b", "http://e/name", "Beta");
        DatasetEndpoint::new(ds)
    }

    #[test]
    fn wildcard_scan() {
        let ep = endpoint();
        assert_eq!(
            ep.matching(None, None, None, &Deadline::none())
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn bound_subject() {
        let ep = endpoint();
        let s = Value::iri("http://e/a");
        let rows = ep
            .matching(Some(&s), None, None, &Deadline::none())
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][2], Value::plain("Alpha"));
    }

    #[test]
    fn absent_constant_matches_nothing() {
        let ep = endpoint();
        let s = Value::iri("http://elsewhere/x");
        assert!(ep
            .matching(Some(&s), None, None, &Deadline::none())
            .unwrap()
            .is_empty());
        assert!(!ep
            .has_matches(Some(&s), None, None, &Deadline::none())
            .unwrap());
    }

    #[test]
    fn has_matches_agrees_with_matching() {
        let ep = endpoint();
        let p = Value::iri("http://e/name");
        assert!(ep
            .has_matches(None, Some(&p), None, &Deadline::none())
            .unwrap());
        let q = Value::iri("http://e/other");
        assert!(!ep
            .has_matches(None, Some(&q), None, &Deadline::none())
            .unwrap());
    }

    #[test]
    fn name_is_dataset_name() {
        assert_eq!(endpoint().name(), "T");
    }

    #[test]
    fn expired_deadline_errors_instead_of_empty() {
        let ep = endpoint();
        let expired = Deadline::within(Duration::ZERO);
        assert_eq!(
            ep.matching(None, None, None, &expired),
            Err(EndpointError::DeadlineExceeded {
                endpoint: "T".into()
            })
        );
        assert_eq!(
            ep.has_matches(None, None, None, &expired),
            Err(EndpointError::DeadlineExceeded {
                endpoint: "T".into()
            })
        );
    }

    /// The trait-level `has_matches` default must propagate underlying
    /// errors and check the deadline before materializing anything.
    #[test]
    fn default_has_matches_reports_errors() {
        struct Flaky;
        impl Endpoint for Flaky {
            fn name(&self) -> &str {
                "Flaky"
            }
            fn matching(
                &self,
                _s: Option<&Value>,
                _p: Option<&Value>,
                _o: Option<&Value>,
                _deadline: &Deadline,
            ) -> Result<Vec<[Value; 3]>, EndpointError> {
                Err(EndpointError::Transient {
                    endpoint: "Flaky".into(),
                    message: "503".into(),
                })
            }
        }
        let err = Flaky.has_matches(None, None, None, &Deadline::none());
        assert_eq!(
            err,
            Err(EndpointError::Transient {
                endpoint: "Flaky".into(),
                message: "503".into(),
            })
        );
        // Expired deadline short-circuits before the (failing) call.
        let err = Flaky.has_matches(None, None, None, &Deadline::within(Duration::ZERO));
        assert_eq!(
            err,
            Err(EndpointError::DeadlineExceeded {
                endpoint: "Flaky".into()
            })
        );
    }
}
