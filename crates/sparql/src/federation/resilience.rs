//! Fault-tolerance primitives for federated execution: endpoint errors,
//! per-call deadlines, retry/backoff policies, circuit breakers, and the
//! completeness marker for degraded (partial) query results.
//!
//! Independently operated LOD endpoints stall, error, and truncate results
//! as a matter of course; the executor treats that as the normal case. The
//! types here are deliberately free of executor state so the breaker state
//! machine and backoff bounds can be tested in isolation.

use std::time::{Duration, Instant};

use rand::prelude::*;
use rand::rngs::StdRng;

/// An error reported by an [`Endpoint`](super::Endpoint) call.
///
/// The taxonomy mirrors what a remote SPARQL endpoint can actually do to a
/// caller: fail transiently (retry may help), be hard-down (retry cannot
/// help), exceed its time budget, or drop the connection mid-result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointError {
    /// A transient failure (connection reset, HTTP 503, ...): retryable.
    Transient {
        /// Name of the failing endpoint.
        endpoint: String,
        /// Human-readable cause.
        message: String,
    },
    /// The endpoint is down or refusing service: not retryable now.
    Unavailable {
        /// Name of the failing endpoint.
        endpoint: String,
        /// Human-readable cause.
        message: String,
    },
    /// The per-call deadline expired before the endpoint answered.
    DeadlineExceeded {
        /// Name of the endpoint that ran out of budget.
        endpoint: String,
    },
    /// The result stream was cut short (short read): retryable, since a
    /// fresh call may deliver the full result set.
    Truncated {
        /// Name of the failing endpoint.
        endpoint: String,
        /// Rows delivered before the stream was cut.
        returned: usize,
    },
}

impl EndpointError {
    /// The name of the endpoint that produced the error.
    pub fn endpoint(&self) -> &str {
        match self {
            EndpointError::Transient { endpoint, .. }
            | EndpointError::Unavailable { endpoint, .. }
            | EndpointError::DeadlineExceeded { endpoint }
            | EndpointError::Truncated { endpoint, .. } => endpoint,
        }
    }

    /// Whether a bounded retry against the same endpoint can help.
    /// Deadline overruns are not retryable: the budget is already spent.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            EndpointError::Transient { .. } | EndpointError::Truncated { .. }
        )
    }
}

impl std::fmt::Display for EndpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndpointError::Transient { endpoint, message } => {
                write!(f, "endpoint '{endpoint}' transient failure: {message}")
            }
            EndpointError::Unavailable { endpoint, message } => {
                write!(f, "endpoint '{endpoint}' unavailable: {message}")
            }
            EndpointError::DeadlineExceeded { endpoint } => {
                write!(f, "endpoint '{endpoint}' exceeded its deadline")
            }
            EndpointError::Truncated { endpoint, returned } => {
                write!(
                    f,
                    "endpoint '{endpoint}' returned a truncated result ({returned} rows)"
                )
            }
        }
    }
}

impl std::error::Error for EndpointError {}

/// A per-call time budget. `Deadline::none()` is unbounded and costs
/// nothing to check, so the happy path with no budget configured never
/// reads the clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: the call may take arbitrarily long.
    pub const fn none() -> Deadline {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            at: Some(Instant::now() + budget),
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        match self.at {
            None => false,
            Some(at) => Instant::now() >= at,
        }
    }

    /// Time left before the deadline (`None` when unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Error out with [`EndpointError::DeadlineExceeded`] if expired.
    pub fn check(&self, endpoint: &str) -> Result<(), EndpointError> {
        if self.expired() {
            Err(EndpointError::DeadlineExceeded {
                endpoint: endpoint.to_string(),
            })
        } else {
            Ok(())
        }
    }
}

/// Bounded exponential backoff with jitter for transient endpoint errors.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Growth factor per retry (>= 1).
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Jitter fraction in [0, 1]: the sleep is drawn uniformly from
    /// `[base * (1 - jitter), base]`, which de-synchronizes retry storms
    /// without ever exceeding the deterministic bound.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            initial_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(200),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (fail straight to degradation).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic (un-jittered) backoff for the `retry`-th retry
    /// (0-based): `initial * multiplier^retry`, capped at `max_backoff`.
    pub fn base_backoff(&self, retry: u32) -> Duration {
        let factor = self.multiplier.max(1.0).powi(retry.min(62) as i32);
        let nanos = self.initial_backoff.as_secs_f64() * factor;
        Duration::from_secs_f64(nanos.min(self.max_backoff.as_secs_f64()))
    }

    /// The jittered backoff for the `retry`-th retry: uniform in
    /// `[base * (1 - jitter), base]`.
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let base = self.base_backoff(retry);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || base.is_zero() {
            return base;
        }
        let lo = base.as_secs_f64() * (1.0 - jitter);
        Duration::from_secs_f64(rng.random_range(lo..=base.as_secs_f64()))
    }
}

/// Circuit-breaker states (closed = healthy, open = shedding, half-open =
/// probing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are rejected until the cooldown elapses.
    Open,
    /// Probe calls are allowed; successes close, a failure re-opens.
    HalfOpen,
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a probe.
    pub cooldown: Duration,
    /// Consecutive probe successes required to close from half-open.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
            probe_successes: 1,
        }
    }
}

/// A per-endpoint circuit breaker (closed → open → half-open → closed).
///
/// Time is passed in explicitly (`allow_at` / `record_failure_at`) so the
/// state machine is deterministic under test; the executor passes
/// `Instant::now()`.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_ok: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            probe_ok: 0,
        }
    }

    /// Current state (transitions happen in `allow_at` / `record_*`).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a call may proceed at time `now`. An open breaker whose
    /// cooldown has elapsed transitions to half-open and allows the probe.
    pub fn allow_at(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let opened = self.opened_at.unwrap_or(now);
                if now.saturating_duration_since(opened) >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_ok = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful call. Returns `true` if the breaker closed as a
    /// result (half-open probe quota met).
    pub fn record_success(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                false
            }
            BreakerState::HalfOpen => {
                self.probe_ok += 1;
                if self.probe_ok >= self.cfg.probe_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.opened_at = None;
                    true
                } else {
                    false
                }
            }
            // A success while open can only come from a call admitted
            // before the breaker tripped; it does not close the circuit.
            BreakerState::Open => false,
        }
    }

    /// Record a failed call at time `now`. Returns `true` if the breaker
    /// opened as a result (threshold reached, or a half-open probe failed).
    pub fn record_failure_at(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(now);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = Some(now);
                true
            }
            BreakerState::Open => false,
        }
    }
}

/// How complete a query result (or a single answer) is with respect to the
/// registered sources.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Completeness {
    /// Every registered source answered every probe it was given.
    #[default]
    Complete,
    /// One or more sources were skipped (down past their budget, circuit
    /// open, or erroring beyond the retry allowance); answers may be
    /// missing join partners from those sources.
    Partial {
        /// Names of the skipped sources (sorted, deduplicated).
        skipped_sources: Vec<String>,
    },
}

impl Completeness {
    /// Whether no source was skipped.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }

    /// The skipped source names (empty when complete).
    pub fn skipped(&self) -> &[String] {
        match self {
            Completeness::Complete => &[],
            Completeness::Partial { skipped_sources } => skipped_sources,
        }
    }
}

/// Executor-level resilience configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Retry/backoff policy for retryable endpoint errors.
    pub retry: RetryPolicy,
    /// Per-endpoint circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Per-call time budget handed to each endpoint (`None` = unbounded;
    /// the happy path then never reads the clock for deadlines).
    pub endpoint_budget: Option<Duration>,
    /// When `true`, endpoint failures abort the query with
    /// [`SparqlError::Endpoint`](crate::SparqlError::Endpoint) instead of
    /// degrading to a partial answer set.
    pub fail_fast: bool,
    /// Seed for backoff jitter (kept deterministic for reproducible runs).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            endpoint_budget: None,
            fail_fast: false,
            seed: 0x5EED,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn error_taxonomy_retryability() {
        let t = EndpointError::Transient {
            endpoint: "A".into(),
            message: "503".into(),
        };
        let u = EndpointError::Unavailable {
            endpoint: "A".into(),
            message: "down".into(),
        };
        let d = EndpointError::DeadlineExceeded {
            endpoint: "A".into(),
        };
        let tr = EndpointError::Truncated {
            endpoint: "A".into(),
            returned: 3,
        };
        assert!(t.is_retryable());
        assert!(tr.is_retryable());
        assert!(!u.is_retryable());
        assert!(!d.is_retryable());
        for e in [t, u, d, tr] {
            assert_eq!(e.endpoint(), "A");
            assert!(e.to_string().contains('A'));
        }
    }

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(d.check("X").is_ok());
    }

    #[test]
    fn zero_budget_deadline_expires_immediately() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(
            d.check("X"),
            Err(EndpointError::DeadlineExceeded {
                endpoint: "X".into()
            })
        );
    }

    #[test]
    fn generous_deadline_is_not_expired() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn base_backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            initial_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(50),
            jitter: 0.0,
        };
        assert_eq!(p.base_backoff(0), Duration::from_millis(10));
        assert_eq!(p.base_backoff(1), Duration::from_millis(20));
        assert_eq!(p.base_backoff(2), Duration::from_millis(40));
        assert_eq!(p.base_backoff(3), Duration::from_millis(50), "capped");
        assert_eq!(p.base_backoff(62), Duration::from_millis(50));
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(0),
            probe_successes: 2,
        });
        let t0 = now();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure_at(t0));
        assert!(!b.record_failure_at(t0));
        assert!(b.record_failure_at(t0), "third failure opens");
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: next allow transitions to half-open (probe).
        assert!(b.allow_at(now()));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.record_success(), "one probe success is not enough");
        assert!(b.record_success(), "second probe success closes");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_rejects_within_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3600),
            probe_successes: 1,
        });
        let t0 = now();
        assert!(b.record_failure_at(t0));
        assert!(!b.allow_at(t0), "cooldown not elapsed");
        assert_eq!(b.state(), BreakerState::Open);
        // Simulate time passing beyond the cooldown.
        assert!(b.allow_at(t0 + Duration::from_secs(3601)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
            probe_successes: 1,
        });
        let t0 = now();
        assert!(b.record_failure_at(t0));
        assert!(b.allow_at(now()));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_failure_at(now()), "probe failure re-opens");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::ZERO,
            probe_successes: 1,
        });
        let t0 = now();
        assert!(!b.record_failure_at(t0));
        assert!(!b.record_success());
        assert!(!b.record_failure_at(t0), "streak was reset by the success");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn completeness_accessors() {
        assert!(Completeness::Complete.is_complete());
        assert!(Completeness::Complete.skipped().is_empty());
        let p = Completeness::Partial {
            skipped_sources: vec!["NYT".into()],
        };
        assert!(!p.is_complete());
        assert_eq!(p.skipped(), ["NYT".to_string()]);
    }

    proptest! {
        /// Jittered backoff always lies in [base*(1-jitter), base] and
        /// never exceeds max_backoff.
        #[test]
        fn backoff_jitter_respects_bounds(
            retry in 0u32..12,
            seed in 0u64..500,
            jitter in 0.0f64..=1.0,
            initial_ms in 1u64..50,
            max_ms in 1u64..400,
        ) {
            let p = RetryPolicy {
                max_retries: 12,
                initial_backoff: Duration::from_millis(initial_ms),
                multiplier: 2.0,
                max_backoff: Duration::from_millis(max_ms),
                jitter,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let base = p.base_backoff(retry);
            let got = p.backoff(retry, &mut rng);
            prop_assert!(got <= base + Duration::from_nanos(1));
            prop_assert!(got <= p.max_backoff + Duration::from_nanos(1));
            let floor = base.as_secs_f64() * (1.0 - jitter);
            prop_assert!(got.as_secs_f64() + 1e-9 >= floor);
        }

        /// The breaker state machine never panics and a long run of
        /// failures always leaves it open; successes after cooldown
        /// always close it again within `probe_successes` probes.
        #[test]
        fn breaker_recovers_after_failure_storm(
            threshold in 1u32..6,
            probes in 1u32..4,
            storm in 1usize..30,
        ) {
            let mut b = CircuitBreaker::new(BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::ZERO,
                probe_successes: probes,
            });
            let t0 = Instant::now();
            for _ in 0..storm {
                // Probe-and-fail cycles: allow_at may flip open→half-open,
                // record_failure_at flips back; either way no panic.
                let _ = b.allow_at(t0);
                let _ = b.record_failure_at(t0);
            }
            if storm as u32 >= threshold {
                // At least `threshold` consecutive failures occurred.
                prop_assert_ne!(b.state(), BreakerState::Closed);
            }
            // Recovery: allow (cooldown is zero) then succeed repeatedly.
            for _ in 0..probes + 1 {
                prop_assert!(b.allow_at(Instant::now()));
                b.record_success();
            }
            prop_assert_eq!(b.state(), BreakerState::Closed);
        }
    }
}
