//! The federated query executor.
//!
//! FedX-style evaluation over in-process endpoints: per-pattern source
//! selection, greedy variable-counting join ordering, bound nested-loop
//! joins, and — the part ALEX depends on — `owl:sameAs` expansion with
//! per-answer link provenance. When a pattern's subject or object is bound
//! to an IRI, the executor also probes every sameAs-equivalent IRI; any
//! answer produced through an equivalent records the link that enabled it.
//!
//! Endpoints are treated as unreliable: every probe runs under the
//! engine's [`ResilienceConfig`] — bounded retries with jittered
//! exponential backoff for transient errors, a per-endpoint circuit
//! breaker, and a per-call deadline. A source that stays down past its
//! allowance is skipped for the rest of the query and the result degrades
//! gracefully: remaining sources still answer, and both the query-level
//! [`FederatedResult`] and each [`QueryAnswer`] carry a [`Completeness`]
//! marker naming the skipped sources.

use std::collections::{BTreeSet, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use alex_telemetry::{counter, emit, span, Event};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ast::{Query, TermPattern, TriplePattern};
use crate::error::{Result, SparqlError};
use crate::expr::{eval_expr, expr_variables, Bindings};
use crate::value::Value;

use super::cache::{CacheInvalidator, CacheProbe, CachedRows, FederationCache};
use super::catalog::Catalog;
use super::endpoint::Endpoint;
use super::links::{Link, SameAsLinks};
use super::resilience::{
    BreakerState, CircuitBreaker, Completeness, Deadline, EndpointError, ResilienceConfig,
};
use super::rewrite::{rewrite_sameas, RewrittenQuery};

/// One answer row: the projected bindings plus the sameAs links used to
/// produce it. Feedback on the answer is feedback on those links (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Variable bindings, projected per the query's SELECT clause.
    pub bindings: Bindings,
    /// The sameAs links that bridged data sets for this answer, in stored
    /// orientation. Empty for single-source answers.
    pub links_used: Vec<Link>,
    /// Whether every registered source contributed, or some were skipped.
    /// A partial answer may be missing join partners, so consumers (the RL
    /// loop in particular) should not treat it as negative evidence.
    pub completeness: Completeness,
}

/// A query result with query-level completeness provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedResult {
    /// The answer rows (each also carries the completeness marker).
    pub answers: Vec<QueryAnswer>,
    /// `Complete` when every source answered every probe; `Partial` with
    /// the skipped source names otherwise.
    pub completeness: Completeness,
}

impl FederatedResult {
    /// Whether no source was skipped while computing this result.
    pub fn is_complete(&self) -> bool {
        self.completeness.is_complete()
    }
}

/// A federation of endpoints plus the sameAs link index.
pub struct FederatedEngine {
    endpoints: Vec<Box<dyn Endpoint>>,
    links: SameAsLinks,
    resilience: ResilienceConfig,
    /// One breaker per endpoint (same order). Behind mutexes because
    /// `execute` takes `&self`.
    breakers: Vec<Mutex<CircuitBreaker>>,
    /// Backoff-jitter RNG, seeded from the resilience config.
    jitter_rng: Mutex<StdRng>,
    /// Optional answer cache (per-endpoint sub-query batches). Behind an
    /// `Arc` because the link index holds an invalidator pointing at it.
    cache: Option<Arc<FederationCache>>,
    /// Optional coverage catalog: with it set, endpoints provably unable
    /// to answer a pattern are pruned instead of probed.
    catalog: Option<Catalog>,
}

impl Default for FederatedEngine {
    fn default() -> Self {
        let resilience = ResilienceConfig::default();
        FederatedEngine {
            endpoints: Vec::new(),
            links: SameAsLinks::default(),
            jitter_rng: Mutex::new(StdRng::seed_from_u64(resilience.seed)),
            breakers: Vec::new(),
            resilience,
            cache: None,
            catalog: None,
        }
    }
}

/// Per-execution telemetry tallies, folded into the global counters and the
/// `federated_query` event when the query finishes.
#[derive(Default)]
struct ExecStats {
    /// Per-endpoint `matching` probes issued (source selection + joins).
    probes: u64,
    /// Probes the coverage catalog proved unnecessary (subset of
    /// `probes`; never dispatched to the endpoint).
    pruned_probes: u64,
    /// Bound-join iterations: one per (pattern, partial-solution) pair.
    bound_join_iterations: u64,
    /// sameAs alternatives probed for bound subject/object IRIs.
    sameas_expansions: u64,
    /// Retries of transient endpoint failures.
    retries: u64,
    /// Circuit-breaker transitions to open.
    circuit_opens: u64,
    /// Probes rejected because a breaker was open.
    circuit_rejections: u64,
    /// Probes that failed past the retry allowance (endpoint skipped).
    endpoint_failures: u64,
    /// Per-endpoint batch lookups served from the answer cache.
    cache_hits: u64,
    /// Batch lookups that missed and were dispatched live.
    cache_misses: u64,
    /// Cache entries evicted by capacity pressure while inserting.
    cache_evictions: u64,
}

impl FederatedEngine {
    /// An engine with no endpoints and no links.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an endpoint (with a fresh circuit breaker).
    pub fn add_endpoint(&mut self, ep: Box<dyn Endpoint>) {
        self.endpoints.push(ep);
        self.breakers.push(Mutex::new(CircuitBreaker::new(
            self.resilience.breaker.clone(),
        )));
    }

    /// Replace the resilience configuration, resetting all breakers and
    /// re-seeding the backoff-jitter RNG.
    pub fn set_resilience(&mut self, resilience: ResilienceConfig) {
        self.jitter_rng = Mutex::new(StdRng::seed_from_u64(resilience.seed));
        self.breakers = self
            .endpoints
            .iter()
            .map(|_| Mutex::new(CircuitBreaker::new(resilience.breaker.clone())))
            .collect();
        self.resilience = resilience;
    }

    /// Borrow the resilience configuration.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// The breaker state for endpoint `idx` (diagnostics).
    pub fn breaker_state(&self, idx: usize) -> Option<BreakerState> {
        let breaker = self.breakers.get(idx)?;
        Some(lock_unpoisoned(breaker).state())
    }

    /// Enable the answer cache with room for `capacity` per-endpoint
    /// batches, subscribing its invalidator to the link index so every
    /// effective link mutation drops exactly the entries it staled.
    pub fn enable_cache(&mut self, capacity: usize) {
        let cache = Arc::new(FederationCache::new(capacity));
        self.links.subscribe(Arc::new(CacheInvalidator {
            cache: Arc::clone(&cache),
        }));
        self.cache = Some(cache);
    }

    /// Whether the answer cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Snapshot of the cache counters (`None` when disabled).
    pub fn cache_stats(&self) -> Option<alex_cache::CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Install (or remove, with `None`) the coverage catalog the executor
    /// consults for source selection. Entries for names that match no
    /// registered endpoint are simply never looked up; endpoints without
    /// an entry are broadcast as before.
    pub fn set_catalog(&mut self, catalog: Option<Catalog>) {
        self.catalog = catalog;
    }

    /// Borrow the installed catalog, if any.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.catalog.as_ref()
    }

    /// Mutably borrow the installed catalog (to bump its version or
    /// refresh entries between queries).
    pub fn catalog_mut(&mut self) -> Option<&mut Catalog> {
        self.catalog.as_mut()
    }

    /// Build a catalog by exhaustively probing every registered endpoint
    /// (under the engine's per-call endpoint budget). Fails on the first
    /// endpoint that cannot be scanned — a partial catalog built here
    /// would be indistinguishable from a complete one.
    pub fn build_catalog(&self) -> std::result::Result<Catalog, EndpointError> {
        let mut catalog = Catalog::new();
        for ep in &self.endpoints {
            let deadline = match self.resilience.endpoint_budget {
                Some(budget) => Deadline::within(budget),
                None => Deadline::none(),
            };
            catalog.probe_endpoint(ep.as_ref(), &deadline)?;
        }
        Ok(catalog)
    }

    /// Rewrite a query against the engine's current sameAs closure (see
    /// [`rewrite_sameas`]).
    pub fn rewrite(&self, query: &Query) -> RewrittenQuery {
        rewrite_sameas(query, &self.links)
    }

    /// Replace the link index. With the cache enabled this is the
    /// wholesale path: provenance recorded against the old index says
    /// nothing about the new one, so the cache is cleared outright and
    /// the invalidator re-subscribed on the replacement.
    pub fn set_links(&mut self, links: SameAsLinks) {
        self.links = links;
        if let Some(cache) = &self.cache {
            cache.clear();
            self.links.subscribe(Arc::new(CacheInvalidator {
                cache: Arc::clone(cache),
            }));
        }
    }

    /// Borrow the link index.
    pub fn links(&self) -> &SameAsLinks {
        &self.links
    }

    /// Mutably borrow the link index (ALEX adds/removes links here).
    pub fn links_mut(&mut self) -> &mut SameAsLinks {
        &mut self.links
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Execute a parsed query, returning only the answer rows. Degradation
    /// provenance is still available per answer; use [`execute_full`] for
    /// the query-level marker.
    ///
    /// [`execute_full`]: FederatedEngine::execute_full
    pub fn execute(&self, query: &Query) -> Result<Vec<QueryAnswer>> {
        Ok(self.execute_full(query)?.answers)
    }

    /// Execute a parsed query, returning answers plus query-level
    /// completeness provenance.
    pub fn execute_full(&self, query: &Query) -> Result<FederatedResult> {
        self.execute_full_inner(query, None)
    }

    /// Execute a query rewritten against the sameAs closure (see
    /// [`rewrite_sameas`]). The rewrite's per-branch link provenance is
    /// attached to answers produced through substituted branches, and its
    /// closure generation is stamped into every answer-cache key of the
    /// execution, so a later link mutation makes rewritten lookups miss
    /// rather than serve answers computed under a stale closure.
    ///
    /// The rewrite must be fresh: executing against a closure the rewrite
    /// does not reflect would silently drop (or phantom) union branches,
    /// so a stale rewrite is an error, not a degradation.
    pub fn execute_rewritten(&self, rewritten: &RewrittenQuery) -> Result<FederatedResult> {
        if rewritten.is_stale(&self.links) {
            return Err(SparqlError::Unsupported(format!(
                "stale sameAs rewrite: rewritten at closure generation {}, engine is at {}",
                rewritten.generation(),
                self.links.generation()
            )));
        }
        self.execute_full_inner(rewritten.query(), Some(rewritten))
    }

    fn execute_full_inner(
        &self,
        query: &Query,
        rewrite: Option<&RewrittenQuery>,
    ) -> Result<FederatedResult> {
        let query_span = span("federated_query");
        let ctx = ProbeCtx {
            in_union: false,
            generation: rewrite.map(|r| r.generation()),
        };
        let mut stats = ExecStats::default();
        // Sources skipped this execution (down past their retry allowance
        // or shed by an open breaker). BTreeSet keeps provenance sorted.
        let mut skipped: BTreeSet<String> = BTreeSet::new();
        let patterns: Vec<&TriplePattern> = query.patterns().collect();
        let pattern_count = patterns.len();
        let filters: Vec<_> = query.filters().collect();

        // Partial solutions: bindings + links used so far.
        let mut partials: Vec<(Bindings, Vec<Link>)> = vec![(Bindings::new(), Vec::new())];
        let mut remaining: Vec<&TriplePattern> = patterns;
        let mut applied_filters = vec![false; filters.len()];

        while !remaining.is_empty() {
            // Greedy variable-counting order (FedX's heuristic): prefer the
            // pattern with the most positions bound given current bindings.
            let bound_vars: HashSet<String> = partials
                .first()
                .map(|(b, _)| b.keys().cloned().collect())
                .unwrap_or_default();
            // Invariant: the loop condition guarantees `remaining` is
            // non-empty, so max_by_key cannot return None.
            #[allow(clippy::expect_used)]
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| boundness(p, &bound_vars))
                .expect("remaining is non-empty");
            let pattern = remaining.remove(idx);

            let mut next: Vec<(Bindings, Vec<Link>)> = Vec::new();
            for (bindings, links_used) in &partials {
                self.extend_with_pattern(
                    pattern,
                    bindings,
                    links_used,
                    &mut next,
                    &mut stats,
                    &mut skipped,
                    ctx,
                )?;
            }
            partials = next;
            if partials.is_empty() {
                break;
            }

            // Apply any filter whose variables are all bound now.
            let now_bound: HashSet<String> = partials
                .first()
                .map(|(b, _)| b.keys().cloned().collect())
                .unwrap_or_default();
            for (fi, filter) in filters.iter().enumerate() {
                if applied_filters[fi] {
                    continue;
                }
                if expr_variables(filter)
                    .iter()
                    .all(|v| now_bound.contains(*v))
                {
                    applied_filters[fi] = true;
                    let mut kept = Vec::with_capacity(partials.len());
                    for (b, l) in partials {
                        if eval_expr(filter, &b)? {
                            kept.push((b, l));
                        }
                    }
                    partials = kept;
                }
            }
        }

        // UNION alternations, in syntactic order: each element joins every
        // surviving solution through each of its branches independently
        // and keeps the concatenation (branch-major — deterministic at any
        // thread count). Inside branches implicit *constant* sameAs
        // expansion is off: a hand-written or rewrite-generated union
        // spells its alternatives out, and expanding them again would
        // duplicate answers; runtime-bound variable values still expand,
        // so a rewrite can never lose answers the implicit closure found.
        let union_ctx = ProbeCtx {
            in_union: true,
            ..ctx
        };
        for (ui, branches) in query.unions().enumerate() {
            let mut next: Vec<(Bindings, Vec<Link>)> = Vec::new();
            for (bi, branch) in branches.iter().enumerate() {
                let mut extended = self.join_patterns(
                    partials.clone(),
                    branch.iter().collect(),
                    &mut stats,
                    &mut skipped,
                    union_ctx,
                )?;
                // Answers from a substituted branch owe their existence to
                // the links that justified the substitution.
                if let Some(rw) = rewrite {
                    let credit = rw.links_for(ui, bi);
                    if !credit.is_empty() {
                        for (_, links_used) in &mut extended {
                            links_used.extend(credit.iter().cloned());
                        }
                    }
                }
                next.extend(extended);
            }
            partials = next;
            if partials.is_empty() {
                break;
            }
        }

        // Any filter not yet applied (e.g. over a variable that never got
        // bound) is evaluated now and surfaces unbound-variable errors.
        for (fi, filter) in filters.iter().enumerate() {
            if applied_filters[fi] {
                continue;
            }
            let mut kept = Vec::with_capacity(partials.len());
            for (b, l) in partials {
                if eval_expr(filter, &b)? {
                    kept.push((b, l));
                }
            }
            partials = kept;
        }

        // OPTIONAL groups: left outer join. Each surviving solution is
        // extended with every compatible solution of the group; solutions
        // the group cannot extend are kept unextended.
        for group in query.optionals() {
            let mut next: Vec<(Bindings, Vec<Link>)> = Vec::new();
            for (bindings, links_used) in partials {
                let seed = vec![(bindings.clone(), links_used.clone())];
                let extended = self.join_patterns(
                    seed,
                    group.iter().collect(),
                    &mut stats,
                    &mut skipped,
                    ctx,
                )?;
                if extended.is_empty() {
                    next.push((bindings, links_used));
                } else {
                    next.extend(extended);
                }
            }
            partials = next;
        }

        // ORDER BY (on full bindings, before projection — SPARQL allows
        // ordering by non-projected variables).
        if !query.order_by.is_empty() {
            partials.sort_by(|(a, _), (b, _)| {
                for key in &query.order_by {
                    let ord = compare_optional(a.get(&key.variable), b.get(&key.variable));
                    let ord = if key.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        let completeness = if skipped.is_empty() {
            Completeness::Complete
        } else {
            Completeness::Partial {
                skipped_sources: skipped.iter().cloned().collect(),
            }
        };

        // Projection, DISTINCT, LIMIT.
        let projection = query.projection();
        let mut answers: Vec<QueryAnswer> = Vec::with_capacity(partials.len());
        let mut seen: HashSet<Vec<(String, Value)>> = HashSet::new();
        for (bindings, mut links_used) in partials {
            let projected: Bindings = projection
                .iter()
                .filter_map(|v| bindings.get(v).map(|val| (v.clone(), val.clone())))
                .collect();
            if query.distinct {
                let key: Vec<(String, Value)> = projected
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                if !seen.insert(key) {
                    continue;
                }
            }
            links_used.sort_unstable();
            links_used.dedup();
            answers.push(QueryAnswer {
                bindings: projected,
                links_used,
                completeness: completeness.clone(),
            });
            if let Some(limit) = query.limit {
                if answers.len() >= limit {
                    break;
                }
            }
        }

        let provenance_answers = answers.iter().filter(|a| !a.links_used.is_empty()).count() as u64;
        let rewrites = rewrite.map_or(0, RewrittenQuery::rewritten_patterns);
        counter!("alex_federated_queries_total").inc();
        counter!("alex_source_selection_probes_total").add(stats.probes);
        counter!("federation_pruned_probes_total").add(stats.pruned_probes);
        counter!("federation_rewritten_patterns_total").add(rewrites);
        counter!("alex_bound_join_iterations_total").add(stats.bound_join_iterations);
        counter!("alex_sameas_expansions_total").add(stats.sameas_expansions);
        counter!("alex_provenance_answers_total").add(provenance_answers);
        counter!("federation_retries_total").add(stats.retries);
        counter!("federation_circuit_open_total").add(stats.circuit_opens);
        counter!("federation_circuit_rejections_total").add(stats.circuit_rejections);
        counter!("federation_endpoint_errors_total").add(stats.endpoint_failures);
        if !skipped.is_empty() {
            counter!("federation_degraded_queries_total").inc();
            counter!("federation_degraded_answers_total").add(answers.len() as u64);
        }
        if self.cache.is_some() {
            counter!("cache_hits_total").add(stats.cache_hits);
            counter!("cache_misses_total").add(stats.cache_misses);
            counter!("cache_evictions_total").add(stats.cache_evictions);
        }
        emit!(Event::FederatedQuery {
            patterns: pattern_count as u64,
            answers: answers.len() as u64,
            provenance_answers,
            probes: stats.probes,
            pruned_probes: stats.pruned_probes,
            bound_join_iterations: stats.bound_join_iterations,
            sameas_expansions: stats.sameas_expansions,
            retries: stats.retries,
            skipped_sources: skipped.len() as u64,
            cache: self.cache.is_some(),
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            catalog: self.catalog.is_some(),
            rewrites,
            threads: alex_parallel::configured_threads() as u64,
            duration_us: query_span.elapsed().as_micros() as u64,
        });
        Ok(FederatedResult {
            answers,
            completeness,
        })
    }

    /// Evaluate an ASK query (or any query as an existence check): whether
    /// at least one solution exists.
    pub fn ask(&self, query: &Query) -> Result<bool> {
        let mut bounded = query.clone();
        bounded.limit = Some(1);
        bounded.order_by.clear(); // ordering cannot change existence
        Ok(!self.execute(&bounded)?.is_empty())
    }

    /// Join a set of partial solutions with a pattern group using the
    /// greedy variable-counting order (no filters). Used for OPTIONAL
    /// groups; the main BGP loop inlines the same logic plus eager filters.
    fn join_patterns(
        &self,
        mut partials: Vec<(Bindings, Vec<Link>)>,
        mut remaining: Vec<&TriplePattern>,
        stats: &mut ExecStats,
        skipped: &mut BTreeSet<String>,
        ctx: ProbeCtx,
    ) -> Result<Vec<(Bindings, Vec<Link>)>> {
        while !remaining.is_empty() && !partials.is_empty() {
            let bound_vars: HashSet<String> = partials
                .first()
                .map(|(b, _)| b.keys().cloned().collect())
                .unwrap_or_default();
            // Invariant: the loop condition guarantees `remaining` is
            // non-empty, so max_by_key cannot return None.
            #[allow(clippy::expect_used)]
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| boundness(p, &bound_vars))
                .expect("remaining is non-empty");
            let pattern = remaining.remove(idx);
            let mut next = Vec::new();
            for (bindings, links_used) in &partials {
                self.extend_with_pattern(
                    pattern, bindings, links_used, &mut next, stats, skipped, ctx,
                )?;
            }
            partials = next;
        }
        Ok(partials)
    }

    /// Join one pattern against all endpoints for one partial solution,
    /// expanding bound IRIs through sameAs links. Endpoint failures are
    /// absorbed by the resilience layer: the failing source is skipped
    /// (recorded in `skipped`) unless the engine is in fail-fast mode.
    ///
    /// Probes fan out concurrently, one worker task per endpoint; within
    /// each endpoint the probe sequence stays in job order, so per-endpoint
    /// behavior (retry sequences, breaker transitions, the fault injector's
    /// seeded call stream) is identical to the sequential executor. The
    /// merge below replays the sequential (job, endpoint) nesting, so
    /// answer order, stat totals, skip provenance, and fail-fast error
    /// selection are all unchanged.
    #[allow(clippy::too_many_arguments)]
    fn extend_with_pattern(
        &self,
        pattern: &TriplePattern,
        bindings: &Bindings,
        links_used: &[Link],
        out: &mut Vec<(Bindings, Vec<Link>)>,
        stats: &mut ExecStats,
        skipped: &mut BTreeSet<String>,
        ctx: ProbeCtx,
    ) -> Result<()> {
        stats.bound_join_iterations += 1;

        // Resolve each position: bound value (with sameAs alternatives for
        // IRIs in subject/object position) or wildcard. Inside UNION
        // branches constants are not expanded — the branch list is the
        // explicit expansion.
        let expand_constants = !ctx.in_union;
        let s_alts = alternatives(&pattern.subject, bindings, &self.links, expand_constants);
        let p_alts = alternatives_no_expand(&pattern.predicate, bindings);
        let o_alts = alternatives(&pattern.object, bindings, &self.links, expand_constants);

        // Every entry beyond the bound value itself is a sameAs expansion.
        stats.sameas_expansions += (s_alts.len() - 1) as u64 + (o_alts.len() - 1) as u64;

        // Flatten the alternative cross-product into an ordered job list:
        // one job = one (s, p, o) probe tuple, dispatched to every endpoint.
        let mut jobs: Vec<ProbeJob<'_>> = Vec::new();
        for (s_val, s_link) in &s_alts {
            for p_val in &p_alts {
                for (o_val, o_link) in &o_alts {
                    jobs.push(ProbeJob {
                        s: s_val.as_ref(),
                        p: p_val.as_ref(),
                        o: o_val.as_ref(),
                        s_link: s_link.as_ref(),
                        o_link: o_link.as_ref(),
                    });
                }
            }
        }
        // The sequential loop counted one probe per (job, endpoint) combo,
        // including combos short-circuited by an earlier skip. Cached
        // hits keep this formula: `probes` counts logical source
        // selection, not endpoint calls, so the event field is identical
        // with the cache on or off.
        stats.probes += (jobs.len() * self.endpoints.len()) as u64;

        // Cache addressing: the key is the pattern's resolved positions
        // *before* sameAs expansion (the first alternative is always the
        // bound value itself), the anchors the bound s/o IRIs. While an
        // entry lives, `equivalents()` of those anchors is unchanged, so
        // re-deriving the job list above yields the same jobs in the
        // same order as when the entry was inserted.
        let probe = self.cache.as_ref().map(|_| {
            let probe = CacheProbe::new(
                s_alts[0].0.as_ref(),
                p_alts[0].as_ref(),
                o_alts[0].0.as_ref(),
            );
            // Rewritten executions key on the closure generation too: the
            // rewritten query shape depends on the *whole* closure, which
            // anchor invalidation cannot track (see `stamp_generation`).
            match ctx.generation {
                Some(generation) => probe.stamp_generation(generation),
                None => probe,
            }
        });

        let mut runs = self.dispatch_jobs(&jobs, probe.as_ref(), stats, skipped)?;

        // Ordered merge: job-major, endpoint-minor — the sequential order.
        for (j, job) in jobs.iter().enumerate() {
            for run in &mut runs {
                let Some(rows) = run.rows[j].take() else {
                    continue; // source skipped; degrade gracefully
                };
                for [rs, rp, ro] in rows {
                    let mut b = bindings.clone();
                    if !bind_position(&mut b, bindings, &pattern.subject, rs) {
                        continue;
                    }
                    if !bind_position(&mut b, bindings, &pattern.predicate, rp) {
                        continue;
                    }
                    if !bind_position(&mut b, bindings, &pattern.object, ro) {
                        continue;
                    }
                    let mut l = links_used.to_vec();
                    if let Some(link) = job.s_link {
                        l.push(link.clone());
                    }
                    if let Some(link) = job.o_link {
                        l.push(link.clone());
                    }
                    out.push((b, l));
                }
            }
        }
        Ok(())
    }

    /// Run every probe job against every endpoint, one concurrent worker
    /// task per endpoint, then fold the per-endpoint outcomes back into
    /// the shared stats/skip state in endpoint order (deterministic).
    fn dispatch_jobs(
        &self,
        jobs: &[ProbeJob<'_>],
        probe: Option<&CacheProbe>,
        stats: &mut ExecStats,
        skipped: &mut BTreeSet<String>,
    ) -> Result<Vec<EndpointRun>> {
        // Sources already skipped stay skipped for this query: further
        // probes would only burn the remaining sources' time budget.
        let pre_skipped: Vec<bool> = self
            .endpoints
            .iter()
            .map(|ep| skipped.contains(ep.name()))
            .collect();

        // Catalog source selection, on the coordinator thread (the
        // verdict depends only on the immutable catalog and the job list,
        // so it is identical at any thread count). An endpoint is pruned
        // for this batch only when *every* job is provably empty there;
        // the catalog consults coverage, never health, so a prune is a
        // statement about the data — it does not mark the source skipped
        // and does not touch its breaker or completeness.
        let pruned: Vec<bool> = match &self.catalog {
            None => vec![false; self.endpoints.len()],
            Some(catalog) => self
                .endpoints
                .iter()
                .enumerate()
                .map(|(i, ep)| {
                    !pre_skipped[i]
                        && !jobs.is_empty()
                        && jobs
                            .iter()
                            .all(|job| !catalog.may_match(ep.name(), job.p, job.o))
                })
                .collect(),
        };
        stats.pruned_probes += (jobs.len() * pruned.iter().filter(|&&p| p).count()) as u64;

        // Consult the cache before dispatch, on the coordinator thread in
        // endpoint order (deterministic LRU movement). A hit bypasses the
        // resilience layer entirely — no endpoint call, no retry, no
        // breaker transition — so a cached hit can never trip a breaker.
        // Skipped sources stay skipped: serving them from cache would
        // resurrect a source mid-query.
        let mut keys: Vec<Option<String>> = vec![None; self.endpoints.len()];
        let mut hits: Vec<Option<Arc<CachedRows>>> = vec![None; self.endpoints.len()];
        if let (Some(cache), Some(probe)) = (self.cache.as_ref(), probe) {
            for (i, ep) in self.endpoints.iter().enumerate() {
                // Pruned endpoints bypass the cache entirely: a lookup
                // would be wasted work and an insert would cache a batch
                // the endpoint never served.
                if pre_skipped[i] || pruned[i] {
                    continue;
                }
                let key = probe.key_for(ep.name());
                match cache.get(&key) {
                    // A live entry always matches the re-derived job
                    // list; the length check is a defensive backstop.
                    Some(rows) if rows.len() == jobs.len() => {
                        stats.cache_hits += 1;
                        hits[i] = Some(rows);
                    }
                    _ => {
                        stats.cache_misses += 1;
                        keys[i] = Some(key);
                    }
                }
            }
        }

        let indices: Vec<usize> = (0..self.endpoints.len()).collect();
        let pool = alex_parallel::Pool::new("federation");
        let runs = pool.map_each(&indices, |&i| match &hits[i] {
            Some(rows) => EndpointRun {
                rows: rows.iter().map(|r| Some(r.clone())).collect(),
                delta: ProbeDelta::default(),
                terminal: None,
                duration_us: 0,
            },
            // A pruned endpoint behaves like a pre-skipped one for
            // dispatch (all-`None` rows, no endpoint calls) but records
            // no terminal and lands in no skip set.
            None => self.run_endpoint_jobs(i, jobs, pre_skipped[i] || pruned[i]),
        });

        for (i, run) in runs.iter().enumerate() {
            stats.retries += run.delta.retries;
            stats.circuit_opens += run.delta.circuit_opens;
            stats.circuit_rejections += run.delta.circuit_rejections;
            stats.endpoint_failures += run.delta.endpoint_failures;
            // Per-endpoint batch event, emitted on the coordinator thread
            // in endpoint order — the raw material for the `alex report`
            // per-endpoint latency percentiles.
            emit!(Event::EndpointBatch {
                endpoint: self.endpoints[i].name().to_string(),
                jobs: jobs.len() as u64,
                duration_us: run.duration_us,
                retries: run.delta.retries,
                circuit_opens: run.delta.circuit_opens,
                circuit_rejections: run.delta.circuit_rejections,
                failures: run.delta.endpoint_failures,
                skipped: pre_skipped[i] || run.terminal.is_some(),
                cache_hit: hits[i].is_some(),
                pruned: pruned[i],
            });
        }
        if self.resilience.fail_fast {
            // The sequential executor aborted at the first terminal failure
            // in (job, endpoint) order; pick exactly that one.
            let first = runs
                .iter()
                .enumerate()
                .filter_map(|(i, run)| run.terminal.as_ref().map(|(j, err)| (*j, i, err)))
                .min_by_key(|&(j, i, _)| (j, i));
            if let Some((_, _, err)) = first {
                return Err(SparqlError::Endpoint(err.clone()));
            }
        } else {
            for (i, run) in runs.iter().enumerate() {
                if run.terminal.is_some() {
                    skipped.insert(self.endpoints[i].name().to_string());
                }
            }
        }

        // Fresh, fully healthy runs become cache entries (coordinator
        // thread, endpoint order — deterministic). A run that skipped
        // any job is never cached: only complete batches may be served.
        if let (Some(cache), Some(probe)) = (self.cache.as_ref(), probe) {
            for (i, run) in runs.iter().enumerate() {
                let Some(key) = &keys[i] else { continue };
                if run.terminal.is_none() && run.rows.iter().all(Option::is_some) {
                    let rows: CachedRows = run.rows.iter().flatten().cloned().collect();
                    let evicted = cache.insert(key, probe.anchors(), rows);
                    stats.cache_evictions += evicted as u64;
                }
            }
        }
        Ok(runs)
    }

    /// Probe every job against endpoint `idx`, in job order. After a
    /// terminal failure (retries exhausted or breaker open) the endpoint
    /// is dead for the remaining jobs — same as the sequential skip set.
    fn run_endpoint_jobs(
        &self,
        idx: usize,
        jobs: &[ProbeJob<'_>],
        pre_skipped: bool,
    ) -> EndpointRun {
        let started = Instant::now();
        let mut run = EndpointRun {
            rows: Vec::with_capacity(jobs.len()),
            delta: ProbeDelta::default(),
            terminal: None,
            duration_us: 0,
        };
        let mut dead = pre_skipped;
        for (j, job) in jobs.iter().enumerate() {
            if dead {
                run.rows.push(None);
                continue;
            }
            match self.probe_once(idx, job.s, job.p, job.o, &mut run.delta) {
                Ok(rows) => run.rows.push(Some(rows)),
                Err(err) => {
                    run.rows.push(None);
                    run.terminal = Some((j, err));
                    dead = true;
                }
            }
        }
        if !pre_skipped {
            run.duration_us = started.elapsed().as_micros() as u64;
        }
        run
    }

    /// One resilient probe against endpoint `idx`: circuit-breaker
    /// admission, bounded retries with jittered backoff for retryable
    /// errors. A terminal failure is returned as `Err` for the caller to
    /// translate into a skip (or a query abort in fail-fast mode).
    fn probe_once(
        &self,
        idx: usize,
        s: Option<&Value>,
        p: Option<&Value>,
        o: Option<&Value>,
        delta: &mut ProbeDelta,
    ) -> std::result::Result<Vec<[Value; 3]>, EndpointError> {
        let ep = &self.endpoints[idx];
        let breaker = &self.breakers[idx];
        let retry = &self.resilience.retry;
        let mut attempt: u32 = 0;
        loop {
            if !lock_unpoisoned(breaker).allow_at(Instant::now()) {
                delta.circuit_rejections += 1;
                return Err(EndpointError::Unavailable {
                    endpoint: ep.name().to_string(),
                    message: "circuit open".to_string(),
                });
            }
            let deadline = match self.resilience.endpoint_budget {
                Some(budget) => Deadline::within(budget),
                None => Deadline::none(),
            };
            match ep.matching(s, p, o, &deadline) {
                Ok(rows) => {
                    lock_unpoisoned(breaker).record_success();
                    return Ok(rows);
                }
                Err(err) => {
                    if lock_unpoisoned(breaker).record_failure_at(Instant::now()) {
                        delta.circuit_opens += 1;
                    }
                    if err.is_retryable() && attempt < retry.max_retries {
                        delta.retries += 1;
                        let backoff =
                            retry.backoff(attempt, &mut lock_unpoisoned(&self.jitter_rng));
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        attempt += 1;
                        continue;
                    }
                    delta.endpoint_failures += 1;
                    return Err(err);
                }
            }
        }
    }
}

/// One (s, p, o) probe tuple plus the sameAs links that produced the
/// bound alternatives (recorded as provenance on every row it yields).
struct ProbeJob<'a> {
    s: Option<&'a Value>,
    p: Option<&'a Value>,
    o: Option<&'a Value>,
    s_link: Option<&'a Link>,
    o_link: Option<&'a Link>,
}

/// Resilience tallies from one endpoint's probe run, merged into
/// [`ExecStats`] on the coordinating thread.
#[derive(Default)]
struct ProbeDelta {
    retries: u64,
    circuit_opens: u64,
    circuit_rejections: u64,
    endpoint_failures: u64,
}

/// The outcome of one endpoint's pass over the job list: per-job rows
/// (`None` = skipped), stat deltas, the first terminal failure, and the
/// batch's wall-clock time (0 for cache hits and pre-skipped endpoints).
struct EndpointRun {
    rows: Vec<Option<Vec<[Value; 3]>>>,
    delta: ProbeDelta,
    terminal: Option<(usize, EndpointError)>,
    duration_us: u64,
}

/// Lock a mutex, recovering the inner value if a previous holder panicked —
/// breaker and RNG state stay usable (at worst slightly stale).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// How many positions of `pattern` are constants or already-bound variables.
fn boundness(pattern: &TriplePattern, bound: &HashSet<String>) -> usize {
    [&pattern.subject, &pattern.predicate, &pattern.object]
        .into_iter()
        .filter(|t| match t {
            TermPattern::Value(_) => true,
            TermPattern::Var(v) => bound.contains(v.as_str()),
        })
        .count()
}

/// SPARQL-ish value ordering for ORDER BY: unbound sorts last; numbers
/// compare numerically when both sides parse; everything else compares by
/// lexical form, then by term shape for stability.
fn compare_optional(a: Option<&Value>, b: Option<&Value>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Greater,
        (Some(_), None) => Ordering::Less,
        (Some(x), Some(y)) => {
            if let (Some(nx), Some(ny)) = (x.as_number(), y.as_number()) {
                return nx.total_cmp(&ny);
            }
            x.lexical().cmp(y.lexical()).then_with(|| x.cmp(y))
        }
    }
}

/// Per-execution probe context, threaded from the query entry point down
/// to every pattern extension.
#[derive(Clone, Copy, Default)]
struct ProbeCtx {
    /// Whether the pattern sits inside a UNION branch. Branches spell
    /// their constant alternatives out explicitly, so implicit constant
    /// sameAs expansion is suppressed there (variables bound at runtime
    /// still expand).
    in_union: bool,
    /// The sameAs-closure generation of a rewritten execution, stamped
    /// into every answer-cache key (`None` for plain executions).
    generation: Option<u64>,
}

/// The probe values for a position: the bound/constant value itself plus,
/// for IRIs, every sameAs-equivalent (each tagged with the enabling link).
/// An unbound variable yields a single wildcard. With `expand_constants`
/// false, constants stay unexpanded; values bound by earlier patterns
/// expand either way.
fn alternatives(
    position: &TermPattern,
    bindings: &Bindings,
    links: &SameAsLinks,
    expand_constants: bool,
) -> Vec<(Option<Value>, Option<Link>)> {
    let (value, is_constant) = match position {
        TermPattern::Value(v) => (Some(v.clone()), true),
        TermPattern::Var(name) => (bindings.get(name).cloned(), false),
    };
    match value {
        None => vec![(None, None)],
        Some(v) => {
            let mut out = vec![(Some(v.clone()), None)];
            if expand_constants || !is_constant {
                if let Value::Iri(iri) = &v {
                    for (other, link) in links.equivalents(iri) {
                        out.push((Some(Value::iri(other)), Some(link)));
                    }
                }
            }
            out
        }
    }
}

/// Probe values for the predicate position (never sameAs-expanded).
fn alternatives_no_expand(position: &TermPattern, bindings: &Bindings) -> Vec<Option<Value>> {
    match position {
        TermPattern::Value(v) => vec![Some(v.clone())],
        TermPattern::Var(name) => vec![bindings.get(name).cloned()],
    }
}

/// Bind a pattern position to a concrete matched value.
///
/// * A variable bound *before* this pattern was probed keeps its original
///   binding: the probe was substituted (possibly through a sameAs
///   alternative), so the row is consistent by construction.
/// * A variable bound *within* this row (duplicate variable in one pattern,
///   e.g. `?x ?p ?x`) must match exactly.
fn bind_position(
    bindings: &mut Bindings,
    pre: &Bindings,
    position: &TermPattern,
    matched: Value,
) -> bool {
    match position {
        TermPattern::Value(_) => true,
        TermPattern::Var(name) => {
            if pre.contains_key(name) {
                return true;
            }
            match bindings.get(name) {
                None => {
                    bindings.insert(name.clone(), matched);
                    true
                }
                Some(existing) => *existing == matched,
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::federation::endpoint::DatasetEndpoint;
    use crate::federation::fault::{FaultProfile, FaultyEndpoint};
    use crate::federation::resilience::{BreakerConfig, RetryPolicy};
    use crate::parser::parse;
    use alex_rdf::Dataset;
    use std::time::Duration;

    /// The paper's motivating scenario: NYT articles + DBpedia facts.
    fn engine() -> FederatedEngine {
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(dbpedia())));
        engine.add_endpoint(Box::new(DatasetEndpoint::new(nyt())));
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://db/LeBron",
            "http://nyt/lebron-james",
        )]));
        engine
    }

    fn dbpedia() -> Dataset {
        let mut dbpedia = Dataset::new("DBpedia");
        dbpedia.add_str("http://db/LeBron", "http://db/award", "NBA MVP 2013");
        dbpedia.add_str("http://db/LeBron", "http://db/label", "LeBron James");
        dbpedia.add_str("http://db/Durant", "http://db/award", "NBA MVP 2014");
        dbpedia
    }

    fn nyt() -> Dataset {
        let mut nyt = Dataset::new("NYTimes");
        nyt.add_iri(
            "http://nyt/article1",
            "http://nyt/about",
            "http://nyt/lebron-james",
        );
        nyt.add_str(
            "http://nyt/article1",
            "http://nyt/headline",
            "James Leads Heat",
        );
        nyt.add_iri(
            "http://nyt/article2",
            "http://nyt/about",
            "http://nyt/someone-else",
        );
        nyt
    }

    /// Tiny backoffs so resilience tests stay fast.
    fn fast_resilience() -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy {
                max_retries: 6,
                initial_backoff: Duration::from_micros(20),
                multiplier: 2.0,
                max_backoff: Duration::from_micros(100),
                jitter: 0.5,
            },
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown: Duration::from_millis(1),
                probe_successes: 1,
            },
            endpoint_budget: None,
            fail_fast: false,
            seed: 11,
        }
    }

    const CROSS_SOURCE: &str = "SELECT ?article ?who WHERE { \
           ?who <http://db/award> \"NBA MVP 2013\" . \
           ?article <http://nyt/about> ?who }";

    #[test]
    fn single_source_query_has_no_provenance() {
        let engine = engine();
        let q = parse("SELECT ?who WHERE { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].bindings["who"], Value::iri("http://db/LeBron"));
        assert!(answers[0].links_used.is_empty());
        assert!(answers[0].completeness.is_complete());
    }

    #[test]
    fn cross_source_join_uses_same_as_and_records_provenance() {
        let engine = engine();
        // "Find all NYT articles about the NBA MVP of 2013."
        let q = parse(CROSS_SOURCE).unwrap();
        let result = engine.execute_full(&q).unwrap();
        assert!(result.is_complete());
        assert_eq!(result.answers.len(), 1);
        let a = &result.answers[0];
        assert_eq!(a.bindings["article"], Value::iri("http://nyt/article1"));
        assert_eq!(
            a.links_used,
            vec![Link::new("http://db/LeBron", "http://nyt/lebron-james")]
        );
    }

    #[test]
    fn no_link_no_answer() {
        let mut engine = engine();
        engine.set_links(SameAsLinks::new());
        let q = parse(
            "SELECT ?article WHERE { \
               ?who <http://db/award> \"NBA MVP 2013\" . \
               ?article <http://nyt/about> ?who }",
        )
        .unwrap();
        assert!(engine.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn filters_apply() {
        let engine = engine();
        let q = parse(
            "SELECT ?who ?award WHERE { ?who <http://db/award> ?award \
             FILTER(CONTAINS(STR(?award), \"2014\")) }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].bindings["who"], Value::iri("http://db/Durant"));
    }

    #[test]
    fn distinct_and_limit() {
        let engine = engine();
        let q = parse("SELECT DISTINCT ?p WHERE { ?s ?p ?o } LIMIT 2").unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 2);
        assert_ne!(answers[0].bindings["p"], answers[1].bindings["p"]);
    }

    #[test]
    fn reverse_orientation_links_also_bridge() {
        let mut engine = engine();
        // Store the link in the opposite orientation; joins must still work
        // and provenance must preserve the stored orientation.
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://nyt/lebron-james",
            "http://db/LeBron",
        )]));
        let q = parse(
            "SELECT ?article WHERE { \
               ?who <http://db/award> \"NBA MVP 2013\" . \
               ?article <http://nyt/about> ?who }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            answers[0].links_used,
            vec![Link::new("http://nyt/lebron-james", "http://db/LeBron")]
        );
    }

    #[test]
    fn duplicate_variable_in_one_pattern_requires_equality() {
        let mut ds = Dataset::new("T");
        ds.add_iri("http://e/a", "http://e/p", "http://e/a"); // self-loop
        ds.add_iri("http://e/a", "http://e/p", "http://e/b");
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));
        let q = parse("SELECT ?x WHERE { ?x <http://e/p> ?x }").unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].bindings["x"], Value::iri("http://e/a"));
    }

    #[test]
    fn empty_engine_returns_nothing() {
        let engine = FederatedEngine::new();
        let q = parse("SELECT * WHERE { ?s ?p ?o }").unwrap();
        let result = engine.execute_full(&q).unwrap();
        assert!(result.answers.is_empty());
        assert!(result.is_complete());
    }

    #[test]
    fn order_by_sorts_answers() {
        let mut ds = Dataset::new("T");
        for (i, name) in ["Charlie", "Alice", "Bob"].iter().enumerate() {
            ds.add_str(&format!("http://e/{i}"), "http://e/name", name);
            ds.add_typed(
                &format!("http://e/{i}"),
                "http://e/rank",
                &(10 - i).to_string(),
                alex_rdf::vocab::XSD_INTEGER,
            );
        }
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));

        let q = parse("SELECT ?n WHERE { ?s <http://e/name> ?n } ORDER BY ?n").unwrap();
        let names: Vec<String> = engine
            .execute(&q)
            .unwrap()
            .iter()
            .map(|a| a.bindings["n"].lexical().to_string())
            .collect();
        assert_eq!(names, vec!["Alice", "Bob", "Charlie"]);

        // Numeric descending order (not lexicographic).
        let q = parse(
            "SELECT ?n WHERE { ?s <http://e/name> ?n . ?s <http://e/rank> ?r } \
             ORDER BY DESC(?r)",
        )
        .unwrap();
        let names: Vec<String> = engine
            .execute(&q)
            .unwrap()
            .iter()
            .map(|a| a.bindings["n"].lexical().to_string())
            .collect();
        assert_eq!(names, vec!["Charlie", "Alice", "Bob"]);
    }

    #[test]
    fn optional_is_left_outer_join() {
        let mut ds = Dataset::new("T");
        ds.add_str("http://e/a", "http://e/name", "Alice");
        ds.add_str("http://e/a", "http://e/email", "alice@example.org");
        ds.add_str("http://e/b", "http://e/name", "Bob"); // no email
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));
        let q = parse(
            "SELECT ?n ?m WHERE { ?s <http://e/name> ?n \
             OPTIONAL { ?s <http://e/email> ?m } } ORDER BY ?n",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].bindings["n"].lexical(), "Alice");
        assert_eq!(answers[0].bindings["m"].lexical(), "alice@example.org");
        assert_eq!(answers[1].bindings["n"].lexical(), "Bob");
        assert!(
            !answers[1].bindings.contains_key("m"),
            "Bob keeps his row with ?m unbound"
        );
    }

    #[test]
    fn optional_can_multiply_rows() {
        let mut ds = Dataset::new("T");
        ds.add_str("http://e/a", "http://e/name", "Alice");
        ds.add_str("http://e/a", "http://e/email", "a1@example.org");
        ds.add_str("http://e/a", "http://e/email", "a2@example.org");
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));
        let q = parse(
            "SELECT ?n ?m WHERE { ?s <http://e/name> ?n OPTIONAL { ?s <http://e/email> ?m } }",
        )
        .unwrap();
        assert_eq!(engine.execute(&q).unwrap().len(), 2);
    }

    #[test]
    fn optional_across_sameas_carries_provenance() {
        let engine = engine();
        // Every awarded player, optionally with the NYT articles about them.
        let q = parse(
            "SELECT ?who ?article WHERE { ?who <http://db/award> ?a \
             OPTIONAL { ?article <http://nyt/about> ?who } }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        // LeBron (linked, 1 article match) + Durant (unlinked, kept bare).
        assert_eq!(answers.len(), 2);
        let with_article: Vec<_> = answers
            .iter()
            .filter(|a| a.bindings.contains_key("article"))
            .collect();
        assert_eq!(with_article.len(), 1);
        assert_eq!(
            with_article[0].links_used.len(),
            1,
            "optional match used the link"
        );
        let bare: Vec<_> = answers
            .iter()
            .filter(|a| !a.bindings.contains_key("article"))
            .collect();
        assert!(bare[0].links_used.is_empty());
    }

    #[test]
    fn ask_reports_existence() {
        let engine = engine();
        let yes = parse("ASK { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        assert!(engine.ask(&yes).unwrap());
        let no = parse("ASK { ?who <http://db/award> \"NBA MVP 1903\" }").unwrap();
        assert!(!engine.ask(&no).unwrap());
    }

    #[test]
    fn join_order_prefers_bound_patterns() {
        // Regardless of syntactic order, the selective pattern runs first;
        // verify by result correctness on a reversed-order query.
        let engine = engine();
        let q = parse(
            "SELECT ?article WHERE { \
               ?article <http://nyt/about> ?who . \
               ?who <http://db/award> \"NBA MVP 2013\" }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].links_used.len(), 1);
    }

    // ---- resilience behavior ------------------------------------------

    #[test]
    fn retries_recover_from_transient_faults() {
        // 40% transient failures but 3 retries: the cross-source join must
        // still produce its complete answer.
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(FaultyEndpoint::new(
            DatasetEndpoint::new(dbpedia()),
            FaultProfile {
                seed: 3,
                transient_rate: 0.4,
                ..FaultProfile::none()
            },
        )));
        engine.add_endpoint(Box::new(FaultyEndpoint::new(
            DatasetEndpoint::new(nyt()),
            FaultProfile {
                seed: 4,
                transient_rate: 0.4,
                ..FaultProfile::none()
            },
        )));
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://db/LeBron",
            "http://nyt/lebron-james",
        )]));
        let mut cfg = fast_resilience();
        // Plenty of headroom so the breaker cannot cut the retry loop
        // short — this test isolates retry masking.
        cfg.breaker.failure_threshold = 50;
        engine.set_resilience(cfg);
        let q = parse(CROSS_SOURCE).unwrap();
        // Run several times: with retries the answer is stable.
        for _ in 0..5 {
            let result = engine.execute_full(&q).unwrap();
            assert_eq!(result.answers.len(), 1, "retries must mask transients");
            assert!(result.is_complete());
        }
    }

    #[test]
    fn dead_endpoint_degrades_with_provenance() {
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(dbpedia())));
        engine.add_endpoint(Box::new(FaultyEndpoint::new(
            DatasetEndpoint::new(nyt()),
            FaultProfile {
                outage: Some((0, u64::MAX)),
                ..FaultProfile::none()
            },
        )));
        engine.set_resilience(fast_resilience());
        // A single-source query still answers from the healthy source, but
        // the result is marked partial and names the dead one.
        let q = parse("SELECT ?who WHERE { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        let result = engine.execute_full(&q).unwrap();
        assert_eq!(result.answers.len(), 1);
        assert!(!result.is_complete());
        assert_eq!(result.completeness.skipped(), ["NYTimes".to_string()]);
        assert_eq!(
            result.answers[0].completeness.skipped(),
            ["NYTimes".to_string()],
            "each answer carries the marker too"
        );
    }

    #[test]
    fn repeated_failures_open_the_breaker() {
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(FaultyEndpoint::new(
            DatasetEndpoint::new(nyt()),
            FaultProfile {
                outage: Some((0, u64::MAX)),
                ..FaultProfile::none()
            },
        )));
        let mut cfg = fast_resilience();
        cfg.breaker.failure_threshold = 1;
        cfg.breaker.cooldown = Duration::from_secs(3600);
        engine.set_resilience(cfg);
        let q = parse("SELECT * WHERE { ?s ?p ?o }").unwrap();
        let first = engine.execute_full(&q).unwrap();
        assert!(!first.is_complete());
        assert_eq!(engine.breaker_state(0), Some(BreakerState::Open));
        // Next query is shed by the breaker without touching the endpoint,
        // and still degrades with provenance.
        let second = engine.execute_full(&q).unwrap();
        assert_eq!(second.completeness.skipped(), ["NYTimes".to_string()]);
    }

    #[test]
    fn breaker_half_open_probe_recovers() {
        let mut engine = FederatedEngine::new();
        // Down for the first 3 calls, healthy afterwards.
        engine.add_endpoint(Box::new(FaultyEndpoint::new(
            DatasetEndpoint::new(dbpedia()),
            FaultProfile {
                outage: Some((0, 3)),
                ..FaultProfile::none()
            },
        )));
        let mut cfg = fast_resilience();
        cfg.retry.max_retries = 0;
        cfg.breaker.failure_threshold = 1;
        cfg.breaker.cooldown = Duration::ZERO; // immediate half-open probe
        engine.set_resilience(cfg);
        let q = parse("SELECT ?who WHERE { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        // Three executions burn the outage window (one probe each).
        for _ in 0..3 {
            assert!(!engine.execute_full(&q).unwrap().is_complete());
        }
        // Endpoint recovered; the half-open probe succeeds and closes.
        let result = engine.execute_full(&q).unwrap();
        assert!(result.is_complete(), "breaker must recover via probe");
        assert_eq!(result.answers.len(), 1);
        assert_eq!(engine.breaker_state(0), Some(BreakerState::Closed));
    }

    #[test]
    fn fail_fast_surfaces_endpoint_error() {
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(FaultyEndpoint::new(
            DatasetEndpoint::new(nyt()),
            FaultProfile {
                outage: Some((0, u64::MAX)),
                ..FaultProfile::none()
            },
        )));
        let mut cfg = fast_resilience();
        cfg.fail_fast = true;
        engine.set_resilience(cfg);
        let q = parse("SELECT * WHERE { ?s ?p ?o }").unwrap();
        match engine.execute_full(&q) {
            Err(SparqlError::Endpoint(EndpointError::Unavailable { endpoint, .. })) => {
                assert_eq!(endpoint, "NYTimes");
            }
            other => panic!("expected endpoint error, got {other:?}"),
        }
    }

    #[test]
    fn all_sources_down_yields_empty_partial_result() {
        let mut engine = FederatedEngine::new();
        for ds in [dbpedia(), nyt()] {
            engine.add_endpoint(Box::new(FaultyEndpoint::new(
                DatasetEndpoint::new(ds),
                FaultProfile {
                    outage: Some((0, u64::MAX)),
                    ..FaultProfile::none()
                },
            )));
        }
        engine.set_resilience(fast_resilience());
        let q = parse("SELECT * WHERE { ?s ?p ?o }").unwrap();
        let result = engine.execute_full(&q).unwrap();
        assert!(result.answers.is_empty());
        assert_eq!(
            result.completeness.skipped(),
            ["DBpedia".to_string(), "NYTimes".to_string()],
            "skipped sources are sorted and complete"
        );
    }

    // ---- answer cache behavior ----------------------------------------

    /// Endpoint wrapper counting `matching` calls, to prove cached hits
    /// bypass dispatch entirely.
    struct CountingEndpoint {
        inner: DatasetEndpoint,
        calls: std::sync::atomic::AtomicU64,
    }

    impl CountingEndpoint {
        fn new(ds: Dataset) -> Self {
            CountingEndpoint {
                inner: DatasetEndpoint::new(ds),
                calls: std::sync::atomic::AtomicU64::new(0),
            }
        }
    }

    impl Endpoint for CountingEndpoint {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn matching(
            &self,
            s: Option<&Value>,
            p: Option<&Value>,
            o: Option<&Value>,
            deadline: &Deadline,
        ) -> std::result::Result<Vec<[Value; 3]>, EndpointError> {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.matching(s, p, o, deadline)
        }
    }

    fn cached_engine() -> (FederatedEngine, Arc<CountingEndpoint>) {
        // Box<Arc<...>> keeps a second handle to read the call counter.
        struct Shared(Arc<CountingEndpoint>);
        impl Endpoint for Shared {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn matching(
                &self,
                s: Option<&Value>,
                p: Option<&Value>,
                o: Option<&Value>,
                deadline: &Deadline,
            ) -> std::result::Result<Vec<[Value; 3]>, EndpointError> {
                self.0.matching(s, p, o, deadline)
            }
        }
        let counter = Arc::new(CountingEndpoint::new(dbpedia()));
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(Shared(Arc::clone(&counter))));
        engine.add_endpoint(Box::new(DatasetEndpoint::new(nyt())));
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://db/LeBron",
            "http://nyt/lebron-james",
        )]));
        engine.enable_cache(64);
        (engine, counter)
    }

    #[test]
    fn repeat_query_is_served_from_cache_without_endpoint_calls() {
        let (engine, counter) = cached_engine();
        let q = parse(CROSS_SOURCE).unwrap();
        let first = engine.execute(&q).unwrap();
        let calls_after_first = counter.calls.load(std::sync::atomic::Ordering::Relaxed);
        assert!(calls_after_first > 0);
        let second = engine.execute(&q).unwrap();
        assert_eq!(first, second, "cached answers must be byte-identical");
        assert_eq!(
            counter.calls.load(std::sync::atomic::Ordering::Relaxed),
            calls_after_first,
            "a warm repeat must not touch the endpoint at all \
             (which is also why a cached hit can never trip a breaker)"
        );
        let stats = engine.cache_stats().unwrap();
        assert!(stats.hits > 0, "second run must hit: {stats:?}");
    }

    #[test]
    fn link_mutation_invalidates_exactly_the_affected_entries() {
        let (mut engine, _counter) = cached_engine();
        let q = parse(CROSS_SOURCE).unwrap();
        assert_eq!(engine.execute(&q).unwrap().len(), 1);
        engine.execute(&q).unwrap(); // warm

        // Removing the bridging link must drop the dependent entries:
        // the next run re-probes and finds no cross-source answer.
        let link = Link::new("http://db/LeBron", "http://nyt/lebron-james");
        assert!(engine.links_mut().remove(&link));
        assert!(engine.execute(&q).unwrap().is_empty());

        // Re-adding restores the answer (again via invalidation, not a
        // stale entry from before the removal).
        assert!(engine.links_mut().add(link));
        assert_eq!(engine.execute(&q).unwrap().len(), 1);
        let stats = engine.cache_stats().unwrap();
        assert!(stats.invalidations > 0);
    }

    #[test]
    fn unrelated_link_mutation_keeps_entries_warm() {
        let (engine, counter) = cached_engine();
        let mut engine = engine;
        let q = parse(CROSS_SOURCE).unwrap();
        engine.execute(&q).unwrap();
        let calls_warm = counter.calls.load(std::sync::atomic::Ordering::Relaxed);
        // A link on entities this query never binds must not invalidate.
        engine
            .links_mut()
            .add(Link::new("http://db/Unrelated", "http://nyt/unrelated"));
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            counter.calls.load(std::sync::atomic::Ordering::Relaxed),
            calls_warm,
            "unrelated mutations must leave the cache warm"
        );
    }

    #[test]
    fn set_links_clears_cache_and_resubscribes_invalidator() {
        let (mut engine, _counter) = cached_engine();
        let q = parse(CROSS_SOURCE).unwrap();
        engine.execute(&q).unwrap();
        assert!(engine.cache_stats().unwrap().entries > 0);

        // Wholesale replacement: full clear.
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://db/LeBron",
            "http://nyt/lebron-james",
        )]));
        assert_eq!(engine.cache_stats().unwrap().entries, 0);

        // The invalidator must follow the engine onto the new index.
        engine.execute(&q).unwrap(); // warm against the new links
        assert!(engine.cache_stats().unwrap().entries > 0);
        engine
            .links_mut()
            .remove(&Link::new("http://db/LeBron", "http://nyt/lebron-james"));
        assert!(
            engine.execute(&q).unwrap().is_empty(),
            "mutations after set_links must still invalidate"
        );
    }

    #[test]
    fn cached_and_uncached_answers_are_identical_under_faults() {
        // Retry-masked transients: answers are stable, so cache on/off
        // must agree byte-for-byte even though call streams differ.
        let build = |cache: bool| {
            let mut engine = FederatedEngine::new();
            engine.add_endpoint(Box::new(FaultyEndpoint::new(
                DatasetEndpoint::new(dbpedia()),
                FaultProfile {
                    seed: 3,
                    transient_rate: 0.3,
                    ..FaultProfile::none()
                },
            )));
            engine.add_endpoint(Box::new(DatasetEndpoint::new(nyt())));
            engine.set_links(SameAsLinks::from_pairs(vec![(
                "http://db/LeBron",
                "http://nyt/lebron-james",
            )]));
            let mut cfg = fast_resilience();
            cfg.breaker.failure_threshold = 100;
            engine.set_resilience(cfg);
            if cache {
                engine.enable_cache(64);
            }
            engine
        };
        let cached = build(true);
        let uncached = build(false);
        let q = parse(CROSS_SOURCE).unwrap();
        for _ in 0..5 {
            let a = cached.execute_full(&q).unwrap();
            let b = uncached.execute_full(&q).unwrap();
            assert_eq!(a, b);
        }
        assert!(cached.cache_stats().unwrap().hits > 0);
        assert!(uncached.cache_stats().is_none());
    }

    #[test]
    fn per_endpoint_budget_skips_slow_sources() {
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(dbpedia())));
        engine.add_endpoint(Box::new(FaultyEndpoint::new(
            DatasetEndpoint::new(nyt()),
            FaultProfile {
                latency: Duration::from_millis(3),
                ..FaultProfile::none()
            },
        )));
        let mut cfg = fast_resilience();
        cfg.endpoint_budget = Some(Duration::from_micros(200));
        engine.set_resilience(cfg);
        let q = parse("SELECT ?who WHERE { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        let result = engine.execute_full(&q).unwrap();
        assert_eq!(result.answers.len(), 1, "fast source still answers");
        assert_eq!(result.completeness.skipped(), ["NYTimes".to_string()]);
    }

    // ------------------------------------------------------------- unions

    #[test]
    fn union_concatenates_branch_solutions() {
        let engine = engine();
        let q = parse(
            "SELECT ?who ?what WHERE { \
             { ?who <http://db/award> ?what . } UNION { ?who <http://db/label> ?what . } }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 3, "2 award rows + 1 label row");
        // Branch-major order: all award answers precede the label answer.
        assert_eq!(
            answers[2].bindings.get("what"),
            Some(&Value::plain("LeBron James"))
        );
        assert!(answers.iter().all(|a| a.links_used.is_empty()));
    }

    #[test]
    fn union_branches_join_against_required_bindings() {
        let engine = engine();
        // ?who is bound by the required pattern; the union branch probes it
        // as a bound variable, so sameAs expansion still applies and the
        // cross-source answer carries link provenance.
        let q = parse(
            "SELECT ?article ?x WHERE { \
             ?who <http://db/award> \"NBA MVP 2013\" . \
             { ?article <http://nyt/about> ?who . } UNION \
             { ?article <http://db/never> ?x . } }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            answers[0].links_used,
            vec![Link::new("http://db/LeBron", "http://nyt/lebron-james")]
        );
    }

    #[test]
    fn union_branch_constants_are_not_sameas_expanded() {
        let engine = engine();
        // The NYT IRI has a sameAs link back to http://db/LeBron, which
        // holds an award row — but inside a union branch the constant is
        // taken literally, so no answer flows through the link.
        let q = parse(
            "SELECT ?what WHERE { \
             { <http://nyt/lebron-james> <http://db/award> ?what . } UNION \
             { <http://nyt/lebron-james> <http://db/never> ?what . } }",
        )
        .unwrap();
        assert!(engine.execute(&q).unwrap().is_empty());
        // The same constant in a required pattern *does* expand.
        let plain =
            parse("SELECT ?what WHERE { <http://nyt/lebron-james> <http://db/award> ?what }")
                .unwrap();
        let answers = engine.execute(&plain).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(!answers[0].links_used.is_empty());
    }

    // ------------------------------------------------------------ catalog

    /// Two counting endpoints so tests can observe per-source traffic.
    fn counting_engine() -> (
        FederatedEngine,
        Arc<CountingEndpoint>,
        Arc<CountingEndpoint>,
    ) {
        struct Shared(Arc<CountingEndpoint>);
        impl Endpoint for Shared {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn matching(
                &self,
                s: Option<&Value>,
                p: Option<&Value>,
                o: Option<&Value>,
                deadline: &Deadline,
            ) -> std::result::Result<Vec<[Value; 3]>, EndpointError> {
                self.0.matching(s, p, o, deadline)
            }
        }
        let db = Arc::new(CountingEndpoint::new(dbpedia()));
        let nyt_ep = Arc::new(CountingEndpoint::new(nyt()));
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(Shared(Arc::clone(&db))));
        engine.add_endpoint(Box::new(Shared(Arc::clone(&nyt_ep))));
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://db/LeBron",
            "http://nyt/lebron-james",
        )]));
        (engine, db, nyt_ep)
    }

    fn calls(ep: &CountingEndpoint) -> u64 {
        ep.calls.load(std::sync::atomic::Ordering::Relaxed)
    }

    #[test]
    fn catalog_prunes_endpoints_that_cannot_answer() {
        let (mut engine, db, nyt_ep) = counting_engine();
        let catalog = engine.build_catalog().unwrap();
        engine.set_catalog(Some(catalog));
        let probe_calls_nyt = calls(&nyt_ep);
        let q = parse("SELECT ?who WHERE { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        let result = engine.execute_full(&q).unwrap();
        assert_eq!(result.answers.len(), 1);
        assert!(result.is_complete(), "a prune is not a skip");
        assert_eq!(
            calls(&nyt_ep),
            probe_calls_nyt,
            "NYT holds no http://db/award triples: provably prunable"
        );
        assert!(calls(&db) > 1, "DBpedia answered (1 call was the scan)");
    }

    #[test]
    fn catalog_pruned_and_broadcast_answers_are_identical() {
        let (engine, _, _) = counting_engine();
        let (mut pruned_engine, _, _) = counting_engine();
        let catalog = pruned_engine.build_catalog().unwrap();
        pruned_engine.set_catalog(Some(catalog));
        for query in [
            CROSS_SOURCE,
            "SELECT ?who ?what WHERE { ?who <http://db/award> ?what }",
            "SELECT ?s WHERE { ?s <http://no/such/predicate> ?o }",
        ] {
            let q = parse(query).unwrap();
            assert_eq!(
                engine.execute_full(&q).unwrap(),
                pruned_engine.execute_full(&q).unwrap(),
                "{query}"
            );
        }
    }

    #[test]
    fn stale_catalog_falls_back_to_broadcast() {
        let (mut engine, _, nyt_ep) = counting_engine();
        let catalog = engine.build_catalog().unwrap();
        engine.set_catalog(Some(catalog));
        let q = parse("SELECT ?who WHERE { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        engine.execute(&q).unwrap();
        let before = calls(&nyt_ep);
        engine.catalog_mut().unwrap().bump_version();
        engine.execute(&q).unwrap();
        assert!(
            calls(&nyt_ep) > before,
            "stale coverage is unknown coverage: the endpoint is probed again"
        );
    }

    #[test]
    fn pruning_composes_with_resilience_not_masks_it() {
        // A covered endpoint that is down still degrades the result: the
        // catalog only ever removes provably-empty probes, so an outage on
        // a source that *could* answer keeps its explicit skip marker.
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(dbpedia())));
        engine.add_endpoint(Box::new(FaultyEndpoint::new(
            DatasetEndpoint::new(nyt()),
            FaultProfile {
                outage: Some((0, u64::MAX)),
                ..FaultProfile::none()
            },
        )));
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://db/LeBron",
            "http://nyt/lebron-james",
        )]));
        engine.set_resilience(fast_resilience());
        // Coverage declared upfront (the outage forbids probing).
        let mut catalog = Catalog::new();
        catalog.declare(
            "DBpedia",
            ["http://db/award", "http://db/label"].map(String::from),
            [],
        );
        catalog.declare(
            "NYTimes",
            ["http://nyt/about", "http://nyt/headline"].map(String::from),
            [],
        );
        engine.set_catalog(Some(catalog));

        // NYT is covered for this query, so it is probed, fails, and the
        // result is explicitly partial — never a silent gap.
        let q = parse(CROSS_SOURCE).unwrap();
        let result = engine.execute_full(&q).unwrap();
        assert_eq!(result.completeness.skipped(), ["NYTimes".to_string()]);

        // For a DBpedia-only query NYT is pruned before it can fail, and
        // the answer is complete.
        let q = parse("SELECT ?what WHERE { ?who <http://db/award> ?what }").unwrap();
        let result = engine.execute_full(&q).unwrap();
        assert_eq!(result.answers.len(), 2);
        assert!(result.is_complete());
    }

    // ----------------------------------------------------------- rewriting

    #[test]
    fn rewritten_execution_preserves_answers_and_provenance() {
        let engine = engine();
        for query in [
            "SELECT ?article WHERE { ?article <http://nyt/about> <http://db/LeBron> }",
            "SELECT ?what WHERE { <http://db/LeBron> <http://db/award> ?what }",
            CROSS_SOURCE,
        ] {
            let q = parse(query).unwrap();
            let plain = engine.execute_full(&q).unwrap();
            let rewritten = engine.rewrite(&q);
            let via_rewrite = engine.execute_rewritten(&rewritten).unwrap();
            let sorted = |mut r: FederatedResult| {
                r.answers
                    .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                r
            };
            assert_eq!(sorted(plain), sorted(via_rewrite), "{query}");
        }
    }

    #[test]
    fn rewritten_cross_source_answer_credits_the_link() {
        let engine = engine();
        let q = parse("SELECT ?article WHERE { ?article <http://nyt/about> <http://db/LeBron> }")
            .unwrap();
        let rewritten = engine.rewrite(&q);
        assert_eq!(rewritten.rewritten_patterns(), 1);
        let answers = engine.execute_rewritten(&rewritten).unwrap().answers;
        assert_eq!(answers.len(), 1);
        assert_eq!(
            answers[0].links_used,
            vec![Link::new("http://db/LeBron", "http://nyt/lebron-james")],
            "the substituted branch owes its answer to the link"
        );
    }

    #[test]
    fn stale_rewrite_is_rejected() {
        let mut engine = engine();
        let q = parse(CROSS_SOURCE).unwrap();
        let rewritten = engine.rewrite(&q);
        engine
            .links_mut()
            .add(Link::new("http://db/Durant", "http://nyt/kevin-durant"));
        let err = engine.execute_rewritten(&rewritten).unwrap_err();
        assert!(err.to_string().contains("stale sameAs rewrite"), "{err}");
    }

    #[test]
    fn rewritten_cache_keys_miss_after_any_closure_change() {
        let (mut engine, counter) = cached_engine();
        let q = parse("SELECT ?article WHERE { ?article <http://nyt/about> <http://db/LeBron> }")
            .unwrap();
        let rw = engine.rewrite(&q);
        let first = engine.execute_rewritten(&rw).unwrap();
        assert_eq!(first.answers.len(), 1);
        let warm = calls(&counter);
        assert_eq!(
            engine.execute_rewritten(&rw).unwrap(),
            first,
            "same closure: repeat is served warm"
        );
        assert_eq!(calls(&counter), warm);

        // A mutation that does not touch this query's anchors would leave
        // plain entries warm — but it bumps the closure generation, so the
        // re-rewritten execution must go back to the endpoints rather than
        // trust entries computed under the old closure.
        engine
            .links_mut()
            .add(Link::new("http://db/Unrelated", "http://nyt/unrelated"));
        let rw2 = engine.rewrite(&q);
        let misses_before = engine.cache_stats().unwrap().misses;
        let again = engine.execute_rewritten(&rw2).unwrap();
        assert_eq!(again.answers, first.answers);
        assert!(
            engine.cache_stats().unwrap().misses > misses_before,
            "generation-stamped keys must miss, not stale-hit"
        );
        assert!(calls(&counter) > warm);
    }
}
