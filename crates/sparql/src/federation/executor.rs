//! The federated query executor.
//!
//! FedX-style evaluation over in-process endpoints: per-pattern source
//! selection, greedy variable-counting join ordering, bound nested-loop
//! joins, and — the part ALEX depends on — `owl:sameAs` expansion with
//! per-answer link provenance. When a pattern's subject or object is bound
//! to an IRI, the executor also probes every sameAs-equivalent IRI; any
//! answer produced through an equivalent records the link that enabled it.

use std::collections::HashSet;

use alex_telemetry::{counter, emit, span, Event};

use crate::ast::{Query, TermPattern, TriplePattern};
use crate::error::Result;
use crate::expr::{eval_expr, expr_variables, Bindings};
use crate::value::Value;

use super::endpoint::Endpoint;
use super::links::{Link, SameAsLinks};

/// One answer row: the projected bindings plus the sameAs links used to
/// produce it. Feedback on the answer is feedback on those links (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Variable bindings, projected per the query's SELECT clause.
    pub bindings: Bindings,
    /// The sameAs links that bridged data sets for this answer, in stored
    /// orientation. Empty for single-source answers.
    pub links_used: Vec<Link>,
}

/// A federation of endpoints plus the sameAs link index.
#[derive(Default)]
pub struct FederatedEngine {
    endpoints: Vec<Box<dyn Endpoint>>,
    links: SameAsLinks,
}

/// Per-execution telemetry tallies, folded into the global counters and the
/// `federated_query` event when the query finishes.
#[derive(Default)]
struct ExecStats {
    /// Per-endpoint `matching` probes issued (source selection + joins).
    probes: u64,
    /// Bound-join iterations: one per (pattern, partial-solution) pair.
    bound_join_iterations: u64,
    /// sameAs alternatives probed for bound subject/object IRIs.
    sameas_expansions: u64,
}

impl FederatedEngine {
    /// An engine with no endpoints and no links.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an endpoint.
    pub fn add_endpoint(&mut self, ep: Box<dyn Endpoint>) {
        self.endpoints.push(ep);
    }

    /// Replace the link index.
    pub fn set_links(&mut self, links: SameAsLinks) {
        self.links = links;
    }

    /// Borrow the link index.
    pub fn links(&self) -> &SameAsLinks {
        &self.links
    }

    /// Mutably borrow the link index (ALEX adds/removes links here).
    pub fn links_mut(&mut self) -> &mut SameAsLinks {
        &mut self.links
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Execute a parsed query.
    pub fn execute(&self, query: &Query) -> Result<Vec<QueryAnswer>> {
        let query_span = span("federated_query");
        let mut stats = ExecStats::default();
        let patterns: Vec<&TriplePattern> = query.patterns().collect();
        let pattern_count = patterns.len();
        let filters: Vec<_> = query.filters().collect();

        // Partial solutions: bindings + links used so far.
        let mut partials: Vec<(Bindings, Vec<Link>)> = vec![(Bindings::new(), Vec::new())];
        let mut remaining: Vec<&TriplePattern> = patterns;
        let mut applied_filters = vec![false; filters.len()];

        while !remaining.is_empty() {
            // Greedy variable-counting order (FedX's heuristic): prefer the
            // pattern with the most positions bound given current bindings.
            let bound_vars: HashSet<String> = partials
                .first()
                .map(|(b, _)| b.keys().cloned().collect())
                .unwrap_or_default();
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| boundness(p, &bound_vars))
                .expect("remaining is non-empty");
            let pattern = remaining.remove(idx);

            let mut next: Vec<(Bindings, Vec<Link>)> = Vec::new();
            for (bindings, links_used) in &partials {
                self.extend_with_pattern(pattern, bindings, links_used, &mut next, &mut stats);
            }
            partials = next;
            if partials.is_empty() {
                break;
            }

            // Apply any filter whose variables are all bound now.
            let now_bound: HashSet<String> = partials
                .first()
                .map(|(b, _)| b.keys().cloned().collect())
                .unwrap_or_default();
            for (fi, filter) in filters.iter().enumerate() {
                if applied_filters[fi] {
                    continue;
                }
                if expr_variables(filter)
                    .iter()
                    .all(|v| now_bound.contains(*v))
                {
                    applied_filters[fi] = true;
                    let mut kept = Vec::with_capacity(partials.len());
                    for (b, l) in partials {
                        if eval_expr(filter, &b)? {
                            kept.push((b, l));
                        }
                    }
                    partials = kept;
                }
            }
        }

        // Any filter not yet applied (e.g. over a variable that never got
        // bound) is evaluated now and surfaces unbound-variable errors.
        for (fi, filter) in filters.iter().enumerate() {
            if applied_filters[fi] {
                continue;
            }
            let mut kept = Vec::with_capacity(partials.len());
            for (b, l) in partials {
                if eval_expr(filter, &b)? {
                    kept.push((b, l));
                }
            }
            partials = kept;
        }

        // OPTIONAL groups: left outer join. Each surviving solution is
        // extended with every compatible solution of the group; solutions
        // the group cannot extend are kept unextended.
        for group in query.optionals() {
            let mut next: Vec<(Bindings, Vec<Link>)> = Vec::new();
            for (bindings, links_used) in partials {
                let seed = vec![(bindings.clone(), links_used.clone())];
                let extended = self.join_patterns(seed, group.iter().collect(), &mut stats);
                if extended.is_empty() {
                    next.push((bindings, links_used));
                } else {
                    next.extend(extended);
                }
            }
            partials = next;
        }

        // ORDER BY (on full bindings, before projection — SPARQL allows
        // ordering by non-projected variables).
        if !query.order_by.is_empty() {
            partials.sort_by(|(a, _), (b, _)| {
                for key in &query.order_by {
                    let ord = compare_optional(a.get(&key.variable), b.get(&key.variable));
                    let ord = if key.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        // Projection, DISTINCT, LIMIT.
        let projection = query.projection();
        let mut answers: Vec<QueryAnswer> = Vec::with_capacity(partials.len());
        let mut seen: HashSet<Vec<(String, Value)>> = HashSet::new();
        for (bindings, mut links_used) in partials {
            let projected: Bindings = projection
                .iter()
                .filter_map(|v| bindings.get(v).map(|val| (v.clone(), val.clone())))
                .collect();
            if query.distinct {
                let key: Vec<(String, Value)> = projected
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                if !seen.insert(key) {
                    continue;
                }
            }
            links_used.sort_unstable();
            links_used.dedup();
            answers.push(QueryAnswer {
                bindings: projected,
                links_used,
            });
            if let Some(limit) = query.limit {
                if answers.len() >= limit {
                    break;
                }
            }
        }

        let provenance_answers = answers.iter().filter(|a| !a.links_used.is_empty()).count() as u64;
        counter!("alex_federated_queries_total").inc();
        counter!("alex_source_selection_probes_total").add(stats.probes);
        counter!("alex_bound_join_iterations_total").add(stats.bound_join_iterations);
        counter!("alex_sameas_expansions_total").add(stats.sameas_expansions);
        counter!("alex_provenance_answers_total").add(provenance_answers);
        emit!(Event::FederatedQuery {
            patterns: pattern_count as u64,
            answers: answers.len() as u64,
            provenance_answers,
            probes: stats.probes,
            bound_join_iterations: stats.bound_join_iterations,
            sameas_expansions: stats.sameas_expansions,
            duration_us: query_span.elapsed().as_micros() as u64,
        });
        Ok(answers)
    }

    /// Evaluate an ASK query (or any query as an existence check): whether
    /// at least one solution exists.
    pub fn ask(&self, query: &Query) -> Result<bool> {
        let mut bounded = query.clone();
        bounded.limit = Some(1);
        bounded.order_by.clear(); // ordering cannot change existence
        Ok(!self.execute(&bounded)?.is_empty())
    }

    /// Join a set of partial solutions with a pattern group using the
    /// greedy variable-counting order (no filters). Used for OPTIONAL
    /// groups; the main BGP loop inlines the same logic plus eager filters.
    fn join_patterns(
        &self,
        mut partials: Vec<(Bindings, Vec<Link>)>,
        mut remaining: Vec<&TriplePattern>,
        stats: &mut ExecStats,
    ) -> Vec<(Bindings, Vec<Link>)> {
        while !remaining.is_empty() && !partials.is_empty() {
            let bound_vars: HashSet<String> = partials
                .first()
                .map(|(b, _)| b.keys().cloned().collect())
                .unwrap_or_default();
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| boundness(p, &bound_vars))
                .expect("remaining is non-empty");
            let pattern = remaining.remove(idx);
            let mut next = Vec::new();
            for (bindings, links_used) in &partials {
                self.extend_with_pattern(pattern, bindings, links_used, &mut next, stats);
            }
            partials = next;
        }
        partials
    }

    /// Join one pattern against all endpoints for one partial solution,
    /// expanding bound IRIs through sameAs links.
    fn extend_with_pattern(
        &self,
        pattern: &TriplePattern,
        bindings: &Bindings,
        links_used: &[Link],
        out: &mut Vec<(Bindings, Vec<Link>)>,
        stats: &mut ExecStats,
    ) {
        stats.bound_join_iterations += 1;

        // Resolve each position: bound value (with sameAs alternatives for
        // IRIs in subject/object position) or wildcard.
        let s_alts = alternatives(&pattern.subject, bindings, &self.links);
        let p_alts = alternatives_no_expand(&pattern.predicate, bindings);
        let o_alts = alternatives(&pattern.object, bindings, &self.links);

        // Every entry beyond the bound value itself is a sameAs expansion.
        stats.sameas_expansions += (s_alts.len() - 1) as u64 + (o_alts.len() - 1) as u64;

        for (s_val, s_link) in &s_alts {
            for p_val in &p_alts {
                for (o_val, o_link) in &o_alts {
                    for ep in &self.endpoints {
                        stats.probes += 1;
                        let rows = ep.matching(s_val.as_ref(), p_val.as_ref(), o_val.as_ref());
                        for [rs, rp, ro] in rows {
                            let mut b = bindings.clone();
                            if !bind_position(&mut b, bindings, &pattern.subject, rs) {
                                continue;
                            }
                            if !bind_position(&mut b, bindings, &pattern.predicate, rp) {
                                continue;
                            }
                            if !bind_position(&mut b, bindings, &pattern.object, ro) {
                                continue;
                            }
                            let mut l = links_used.to_vec();
                            if let Some(link) = s_link {
                                l.push(link.clone());
                            }
                            if let Some(link) = o_link {
                                l.push(link.clone());
                            }
                            out.push((b, l));
                        }
                    }
                }
            }
        }
    }
}

/// How many positions of `pattern` are constants or already-bound variables.
fn boundness(pattern: &TriplePattern, bound: &HashSet<String>) -> usize {
    [&pattern.subject, &pattern.predicate, &pattern.object]
        .into_iter()
        .filter(|t| match t {
            TermPattern::Value(_) => true,
            TermPattern::Var(v) => bound.contains(v.as_str()),
        })
        .count()
}

/// SPARQL-ish value ordering for ORDER BY: unbound sorts last; numbers
/// compare numerically when both sides parse; everything else compares by
/// lexical form, then by term shape for stability.
fn compare_optional(a: Option<&Value>, b: Option<&Value>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Greater,
        (Some(_), None) => Ordering::Less,
        (Some(x), Some(y)) => {
            if let (Some(nx), Some(ny)) = (x.as_number(), y.as_number()) {
                return nx.total_cmp(&ny);
            }
            x.lexical().cmp(y.lexical()).then_with(|| x.cmp(y))
        }
    }
}

/// The probe values for a position: the bound/constant value itself plus,
/// for IRIs, every sameAs-equivalent (each tagged with the enabling link).
/// An unbound variable yields a single wildcard.
fn alternatives(
    position: &TermPattern,
    bindings: &Bindings,
    links: &SameAsLinks,
) -> Vec<(Option<Value>, Option<Link>)> {
    let value = match position {
        TermPattern::Value(v) => Some(v.clone()),
        TermPattern::Var(name) => bindings.get(name).cloned(),
    };
    match value {
        None => vec![(None, None)],
        Some(v) => {
            let mut out = vec![(Some(v.clone()), None)];
            if let Value::Iri(iri) = &v {
                for (other, link) in links.equivalents(iri) {
                    out.push((Some(Value::iri(other)), Some(link)));
                }
            }
            out
        }
    }
}

/// Probe values for the predicate position (never sameAs-expanded).
fn alternatives_no_expand(position: &TermPattern, bindings: &Bindings) -> Vec<Option<Value>> {
    match position {
        TermPattern::Value(v) => vec![Some(v.clone())],
        TermPattern::Var(name) => vec![bindings.get(name).cloned()],
    }
}

/// Bind a pattern position to a concrete matched value.
///
/// * A variable bound *before* this pattern was probed keeps its original
///   binding: the probe was substituted (possibly through a sameAs
///   alternative), so the row is consistent by construction.
/// * A variable bound *within* this row (duplicate variable in one pattern,
///   e.g. `?x ?p ?x`) must match exactly.
fn bind_position(
    bindings: &mut Bindings,
    pre: &Bindings,
    position: &TermPattern,
    matched: Value,
) -> bool {
    match position {
        TermPattern::Value(_) => true,
        TermPattern::Var(name) => {
            if pre.contains_key(name) {
                return true;
            }
            match bindings.get(name) {
                None => {
                    bindings.insert(name.clone(), matched);
                    true
                }
                Some(existing) => *existing == matched,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::endpoint::DatasetEndpoint;
    use crate::parser::parse;
    use alex_rdf::Dataset;

    /// The paper's motivating scenario: NYT articles + DBpedia facts.
    fn engine() -> FederatedEngine {
        let mut dbpedia = Dataset::new("DBpedia");
        dbpedia.add_str("http://db/LeBron", "http://db/award", "NBA MVP 2013");
        dbpedia.add_str("http://db/LeBron", "http://db/label", "LeBron James");
        dbpedia.add_str("http://db/Durant", "http://db/award", "NBA MVP 2014");

        let mut nyt = Dataset::new("NYTimes");
        nyt.add_iri(
            "http://nyt/article1",
            "http://nyt/about",
            "http://nyt/lebron-james",
        );
        nyt.add_str(
            "http://nyt/article1",
            "http://nyt/headline",
            "James Leads Heat",
        );
        nyt.add_iri(
            "http://nyt/article2",
            "http://nyt/about",
            "http://nyt/someone-else",
        );

        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(dbpedia)));
        engine.add_endpoint(Box::new(DatasetEndpoint::new(nyt)));
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://db/LeBron",
            "http://nyt/lebron-james",
        )]));
        engine
    }

    #[test]
    fn single_source_query_has_no_provenance() {
        let engine = engine();
        let q = parse("SELECT ?who WHERE { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].bindings["who"], Value::iri("http://db/LeBron"));
        assert!(answers[0].links_used.is_empty());
    }

    #[test]
    fn cross_source_join_uses_same_as_and_records_provenance() {
        let engine = engine();
        // "Find all NYT articles about the NBA MVP of 2013."
        let q = parse(
            "SELECT ?article ?who WHERE { \
               ?who <http://db/award> \"NBA MVP 2013\" . \
               ?article <http://nyt/about> ?who }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        let a = &answers[0];
        assert_eq!(a.bindings["article"], Value::iri("http://nyt/article1"));
        assert_eq!(
            a.links_used,
            vec![Link::new("http://db/LeBron", "http://nyt/lebron-james")]
        );
    }

    #[test]
    fn no_link_no_answer() {
        let mut engine = engine();
        engine.set_links(SameAsLinks::new());
        let q = parse(
            "SELECT ?article WHERE { \
               ?who <http://db/award> \"NBA MVP 2013\" . \
               ?article <http://nyt/about> ?who }",
        )
        .unwrap();
        assert!(engine.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn filters_apply() {
        let engine = engine();
        let q = parse(
            "SELECT ?who ?award WHERE { ?who <http://db/award> ?award \
             FILTER(CONTAINS(STR(?award), \"2014\")) }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].bindings["who"], Value::iri("http://db/Durant"));
    }

    #[test]
    fn distinct_and_limit() {
        let engine = engine();
        let q = parse("SELECT DISTINCT ?p WHERE { ?s ?p ?o } LIMIT 2").unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 2);
        assert_ne!(answers[0].bindings["p"], answers[1].bindings["p"]);
    }

    #[test]
    fn reverse_orientation_links_also_bridge() {
        let mut engine = engine();
        // Store the link in the opposite orientation; joins must still work
        // and provenance must preserve the stored orientation.
        engine.set_links(SameAsLinks::from_pairs(vec![(
            "http://nyt/lebron-james",
            "http://db/LeBron",
        )]));
        let q = parse(
            "SELECT ?article WHERE { \
               ?who <http://db/award> \"NBA MVP 2013\" . \
               ?article <http://nyt/about> ?who }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            answers[0].links_used,
            vec![Link::new("http://nyt/lebron-james", "http://db/LeBron")]
        );
    }

    #[test]
    fn duplicate_variable_in_one_pattern_requires_equality() {
        let mut ds = Dataset::new("T");
        ds.add_iri("http://e/a", "http://e/p", "http://e/a"); // self-loop
        ds.add_iri("http://e/a", "http://e/p", "http://e/b");
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));
        let q = parse("SELECT ?x WHERE { ?x <http://e/p> ?x }").unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].bindings["x"], Value::iri("http://e/a"));
    }

    #[test]
    fn empty_engine_returns_nothing() {
        let engine = FederatedEngine::new();
        let q = parse("SELECT * WHERE { ?s ?p ?o }").unwrap();
        assert!(engine.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn order_by_sorts_answers() {
        let mut ds = Dataset::new("T");
        for (i, name) in ["Charlie", "Alice", "Bob"].iter().enumerate() {
            ds.add_str(&format!("http://e/{i}"), "http://e/name", name);
            ds.add_typed(
                &format!("http://e/{i}"),
                "http://e/rank",
                &(10 - i).to_string(),
                alex_rdf::vocab::XSD_INTEGER,
            );
        }
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));

        let q = parse("SELECT ?n WHERE { ?s <http://e/name> ?n } ORDER BY ?n").unwrap();
        let names: Vec<String> = engine
            .execute(&q)
            .unwrap()
            .iter()
            .map(|a| a.bindings["n"].lexical().to_string())
            .collect();
        assert_eq!(names, vec!["Alice", "Bob", "Charlie"]);

        // Numeric descending order (not lexicographic).
        let q = parse(
            "SELECT ?n WHERE { ?s <http://e/name> ?n . ?s <http://e/rank> ?r } \
             ORDER BY DESC(?r)",
        )
        .unwrap();
        let names: Vec<String> = engine
            .execute(&q)
            .unwrap()
            .iter()
            .map(|a| a.bindings["n"].lexical().to_string())
            .collect();
        assert_eq!(names, vec!["Charlie", "Alice", "Bob"]);
    }

    #[test]
    fn optional_is_left_outer_join() {
        let mut ds = Dataset::new("T");
        ds.add_str("http://e/a", "http://e/name", "Alice");
        ds.add_str("http://e/a", "http://e/email", "alice@example.org");
        ds.add_str("http://e/b", "http://e/name", "Bob"); // no email
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));
        let q = parse(
            "SELECT ?n ?m WHERE { ?s <http://e/name> ?n \
             OPTIONAL { ?s <http://e/email> ?m } } ORDER BY ?n",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].bindings["n"].lexical(), "Alice");
        assert_eq!(answers[0].bindings["m"].lexical(), "alice@example.org");
        assert_eq!(answers[1].bindings["n"].lexical(), "Bob");
        assert!(
            !answers[1].bindings.contains_key("m"),
            "Bob keeps his row with ?m unbound"
        );
    }

    #[test]
    fn optional_can_multiply_rows() {
        let mut ds = Dataset::new("T");
        ds.add_str("http://e/a", "http://e/name", "Alice");
        ds.add_str("http://e/a", "http://e/email", "a1@example.org");
        ds.add_str("http://e/a", "http://e/email", "a2@example.org");
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));
        let q = parse(
            "SELECT ?n ?m WHERE { ?s <http://e/name> ?n OPTIONAL { ?s <http://e/email> ?m } }",
        )
        .unwrap();
        assert_eq!(engine.execute(&q).unwrap().len(), 2);
    }

    #[test]
    fn optional_across_sameas_carries_provenance() {
        let engine = engine();
        // Every awarded player, optionally with the NYT articles about them.
        let q = parse(
            "SELECT ?who ?article WHERE { ?who <http://db/award> ?a \
             OPTIONAL { ?article <http://nyt/about> ?who } }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        // LeBron (linked, 1 article match) + Durant (unlinked, kept bare).
        assert_eq!(answers.len(), 2);
        let with_article: Vec<_> = answers
            .iter()
            .filter(|a| a.bindings.contains_key("article"))
            .collect();
        assert_eq!(with_article.len(), 1);
        assert_eq!(
            with_article[0].links_used.len(),
            1,
            "optional match used the link"
        );
        let bare: Vec<_> = answers
            .iter()
            .filter(|a| !a.bindings.contains_key("article"))
            .collect();
        assert!(bare[0].links_used.is_empty());
    }

    #[test]
    fn ask_reports_existence() {
        let engine = engine();
        let yes = parse("ASK { ?who <http://db/award> \"NBA MVP 2013\" }").unwrap();
        assert!(engine.ask(&yes).unwrap());
        let no = parse("ASK { ?who <http://db/award> \"NBA MVP 1903\" }").unwrap();
        assert!(!engine.ask(&no).unwrap());
    }

    #[test]
    fn join_order_prefers_bound_patterns() {
        // Regardless of syntactic order, the selective pattern runs first;
        // verify by result correctness on a reversed-order query.
        let engine = engine();
        let q = parse(
            "SELECT ?article WHERE { \
               ?article <http://nyt/about> ?who . \
               ?who <http://db/award> \"NBA MVP 2013\" }",
        )
        .unwrap();
        let answers = engine.execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].links_used.len(), 1);
    }
}
