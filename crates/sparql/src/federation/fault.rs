//! Deterministic fault injection for federated execution.
//!
//! [`FaultyEndpoint`] wraps any [`Endpoint`] and injects seeded faults from
//! a [`FaultProfile`]: transient errors, permanent outage windows, added
//! latency, and truncated (short-read) results. Every failure is drawn from
//! a seeded RNG keyed to the call sequence, so chaos tests and benches
//! replay the exact same fault schedule on every run.

use std::sync::Mutex;
use std::time::Duration;

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::value::Value;

use super::endpoint::Endpoint;
use super::resilience::{Deadline, EndpointError};

/// A seeded fault schedule for one wrapped endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// RNG seed; the same seed replays the same fault sequence.
    pub seed: u64,
    /// Probability in [0, 1] that a call fails transiently.
    pub transient_rate: f64,
    /// Probability in [0, 1] that a call returns a truncated (short-read)
    /// result, surfaced as [`EndpointError::Truncated`].
    pub truncate_rate: f64,
    /// Latency added to every call (a real sleep, so deadlines trip).
    pub latency: Duration,
    /// Half-open call-index window `[start, end)` during which the
    /// endpoint is hard-down ([`EndpointError::Unavailable`]). Use
    /// `u64::MAX` as the end for a permanent outage.
    pub outage: Option<(u64, u64)>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// A profile that injects nothing (useful to measure wrapper overhead).
    pub fn none() -> FaultProfile {
        FaultProfile {
            seed: 0,
            transient_rate: 0.0,
            truncate_rate: 0.0,
            latency: Duration::ZERO,
            outage: None,
        }
    }

    /// Whether this profile injects no faults at all.
    pub fn is_noop(&self) -> bool {
        self.transient_rate <= 0.0
            && self.truncate_rate <= 0.0
            && self.latency.is_zero()
            && self.outage.is_none()
    }

    /// Derive a profile with a different seed (so each endpoint in a
    /// federation draws an independent fault sequence).
    pub fn with_seed(&self, seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            ..self.clone()
        }
    }

    /// Parse a comma-separated `key=value` spec, e.g.
    /// `seed=7,transient=0.3,truncate=0.1,latency-ms=5,outage=100..200`.
    ///
    /// Keys: `seed` (u64), `transient` (probability), `truncate`
    /// (probability), `latency-ms` (u64 milliseconds), `outage`
    /// (`start..end` call-index window; `start..` means forever).
    pub fn parse(spec: &str) -> Result<FaultProfile, String> {
        let mut profile = FaultProfile::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault profile entry '{part}' is not key=value"))?;
            let bad = |what: &str| format!("fault profile {key}: invalid {what} '{value}'");
            match key.trim() {
                "seed" => profile.seed = value.parse().map_err(|_| bad("u64"))?,
                "transient" => {
                    profile.transient_rate = parse_rate(value).ok_or_else(|| bad("rate"))?
                }
                "truncate" => {
                    profile.truncate_rate = parse_rate(value).ok_or_else(|| bad("rate"))?
                }
                "latency-ms" => {
                    profile.latency = Duration::from_millis(value.parse().map_err(|_| bad("u64"))?)
                }
                "outage" => {
                    let (start, end) = value
                        .split_once("..")
                        .ok_or_else(|| bad("window (want start..end)"))?;
                    let start: u64 = start.trim().parse().map_err(|_| bad("window start"))?;
                    let end: u64 = if end.trim().is_empty() {
                        u64::MAX
                    } else {
                        end.trim().parse().map_err(|_| bad("window end"))?
                    };
                    if end <= start {
                        return Err(bad("window (end must exceed start)"));
                    }
                    profile.outage = Some((start, end));
                }
                other => return Err(format!("unknown fault profile key '{other}'")),
            }
        }
        Ok(profile)
    }
}

fn parse_rate(value: &str) -> Option<f64> {
    let rate: f64 = value.parse().ok()?;
    (0.0..=1.0).contains(&rate).then_some(rate)
}

/// Per-endpoint mutable fault state, behind a mutex because endpoint calls
/// take `&self`.
#[derive(Debug)]
struct FaultState {
    rng: StdRng,
    calls: u64,
}

/// A decorator injecting deterministic faults into any [`Endpoint`].
#[derive(Debug)]
pub struct FaultyEndpoint<E> {
    inner: E,
    profile: FaultProfile,
    state: Mutex<FaultState>,
}

impl<E: Endpoint> FaultyEndpoint<E> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: E, profile: FaultProfile) -> Self {
        let state = Mutex::new(FaultState {
            rng: StdRng::seed_from_u64(profile.seed),
            calls: 0,
        });
        FaultyEndpoint {
            inner,
            profile,
            state,
        }
    }

    /// Calls observed so far (fault schedule position).
    pub fn calls(&self) -> u64 {
        match self.state.lock() {
            Ok(state) => state.calls,
            Err(poisoned) => poisoned.into_inner().calls,
        }
    }

    /// Draw the fault decision for the next call: `Ok(())` means the call
    /// proceeds to the inner endpoint; `Err` is the injected fault.
    fn inject(&self, deadline: &Deadline) -> Result<bool, EndpointError> {
        let mut state = match self.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        let call = state.calls;
        state.calls += 1;
        // Latency first: a slow endpoint burns the caller's budget whether
        // or not the call would have succeeded. The injected sleep is
        // clamped to the deadline's remaining budget — sleeping past it
        // would overshoot the caller's per-call deadline by the full
        // injected latency — and when the clamp bites, the verdict is
        // already known: surface `DeadlineExceeded` without racing
        // `deadline.check` against the clock.
        if !self.profile.latency.is_zero() {
            match deadline.remaining() {
                Some(remaining) if remaining <= self.profile.latency => {
                    std::thread::sleep(remaining);
                    return Err(EndpointError::DeadlineExceeded {
                        endpoint: self.inner.name().to_string(),
                    });
                }
                _ => std::thread::sleep(self.profile.latency),
            }
        }
        deadline.check(self.inner.name())?;
        if let Some((start, end)) = self.profile.outage {
            if call >= start && call < end {
                return Err(EndpointError::Unavailable {
                    endpoint: self.inner.name().to_string(),
                    message: format!("injected outage (call {call} in {start}..{end})"),
                });
            }
        }
        if self.profile.transient_rate > 0.0 && state.rng.random_bool(self.profile.transient_rate) {
            return Err(EndpointError::Transient {
                endpoint: self.inner.name().to_string(),
                message: format!("injected transient failure (call {call})"),
            });
        }
        let truncate =
            self.profile.truncate_rate > 0.0 && state.rng.random_bool(self.profile.truncate_rate);
        Ok(truncate)
    }
}

impl<E: Endpoint> Endpoint for FaultyEndpoint<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn matching(
        &self,
        s: Option<&Value>,
        p: Option<&Value>,
        o: Option<&Value>,
        deadline: &Deadline,
    ) -> Result<Vec<[Value; 3]>, EndpointError> {
        let truncate = self.inject(deadline)?;
        let rows = self.inner.matching(s, p, o, deadline)?;
        if truncate {
            // A short read is detectable (the stream was cut), so it is
            // surfaced as a retryable error rather than silent partial data.
            return Err(EndpointError::Truncated {
                endpoint: self.inner.name().to_string(),
                returned: rows.len() / 2,
            });
        }
        Ok(rows)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::federation::endpoint::DatasetEndpoint;
    use alex_rdf::Dataset;

    fn inner() -> DatasetEndpoint {
        let mut ds = Dataset::new("T");
        ds.add_str("http://e/a", "http://e/name", "Alpha");
        ds.add_str("http://e/b", "http://e/name", "Beta");
        DatasetEndpoint::new(ds)
    }

    #[test]
    fn noop_profile_is_transparent() {
        let ep = FaultyEndpoint::new(inner(), FaultProfile::none());
        assert_eq!(ep.name(), "T");
        let rows = ep.matching(None, None, None, &Deadline::none()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(ep.has_matches(None, None, None, &Deadline::none()).unwrap());
        assert_eq!(ep.calls(), 2, "matching + has_matches (via default)");
    }

    #[test]
    fn transient_faults_are_deterministic_per_seed() {
        let schedule = |seed: u64| -> Vec<bool> {
            let ep = FaultyEndpoint::new(
                inner(),
                FaultProfile {
                    seed,
                    transient_rate: 0.5,
                    ..FaultProfile::none()
                },
            );
            (0..32)
                .map(|_| ep.matching(None, None, None, &Deadline::none()).is_err())
                .collect()
        };
        let a = schedule(7);
        assert_eq!(a, schedule(7), "same seed, same fault sequence");
        assert_ne!(a, schedule(8), "different seed, different sequence");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn outage_window_is_hard_down() {
        let ep = FaultyEndpoint::new(
            inner(),
            FaultProfile {
                outage: Some((1, 3)),
                ..FaultProfile::none()
            },
        );
        let call = || ep.matching(None, None, None, &Deadline::none());
        assert!(call().is_ok(), "call 0 precedes the window");
        for expected_call in 1..3 {
            match call() {
                Err(EndpointError::Unavailable { endpoint, message }) => {
                    assert_eq!(endpoint, "T");
                    assert!(message.contains(&format!("call {expected_call}")));
                }
                other => panic!("expected Unavailable, got {other:?}"),
            }
        }
        assert!(call().is_ok(), "recovered after the window");
    }

    #[test]
    fn truncation_reports_short_read() {
        let ep = FaultyEndpoint::new(
            inner(),
            FaultProfile {
                truncate_rate: 1.0,
                ..FaultProfile::none()
            },
        );
        match ep.matching(None, None, None, &Deadline::none()) {
            Err(EndpointError::Truncated { endpoint, returned }) => {
                assert_eq!(endpoint, "T");
                assert_eq!(returned, 1, "2 rows truncated to half");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn latency_trips_an_already_tight_deadline() {
        let ep = FaultyEndpoint::new(
            inner(),
            FaultProfile {
                latency: Duration::from_millis(2),
                ..FaultProfile::none()
            },
        );
        let out = ep.matching(
            None,
            None,
            None,
            &Deadline::within(Duration::from_micros(100)),
        );
        assert_eq!(
            out,
            Err(EndpointError::DeadlineExceeded {
                endpoint: "T".into()
            })
        );
        // With room to spare the same call succeeds.
        let out = ep.matching(None, None, None, &Deadline::within(Duration::from_secs(10)));
        assert_eq!(out.unwrap().len(), 2);
    }

    #[test]
    fn injected_latency_is_clamped_to_the_remaining_budget() {
        // Injected latency far beyond the deadline: the call must give up
        // at the deadline, not sleep the whole injected duration.
        let ep = FaultyEndpoint::new(
            inner(),
            FaultProfile {
                latency: Duration::from_secs(30),
                ..FaultProfile::none()
            },
        );
        let started = std::time::Instant::now();
        let out = ep.matching(
            None,
            None,
            None,
            &Deadline::within(Duration::from_millis(20)),
        );
        assert_eq!(
            out,
            Err(EndpointError::DeadlineExceeded {
                endpoint: "T".into()
            })
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "sleep overshot the deadline: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultProfile::parse(
            "seed=7, transient=0.3, truncate=0.1, latency-ms=5, outage=100..200",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.transient_rate, 0.3);
        assert_eq!(p.truncate_rate, 0.1);
        assert_eq!(p.latency, Duration::from_millis(5));
        assert_eq!(p.outage, Some((100, 200)));
        assert!(!p.is_noop());
    }

    #[test]
    fn parse_open_ended_outage_and_empty_spec() {
        let p = FaultProfile::parse("outage=10..").unwrap();
        assert_eq!(p.outage, Some((10, u64::MAX)));
        assert!(FaultProfile::parse("").unwrap().is_noop());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "transient=1.5",
            "transient=-0.1",
            "bogus=1",
            "seed",
            "outage=5..2",
            "latency-ms=abc",
        ] {
            assert!(FaultProfile::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn with_seed_keeps_rates() {
        let p = FaultProfile::parse("transient=0.25,seed=1")
            .unwrap()
            .with_seed(9);
        assert_eq!(p.seed, 9);
        assert_eq!(p.transient_rate, 0.25);
    }
}
