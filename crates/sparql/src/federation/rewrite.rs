//! sameAs-closure query rewriting.
//!
//! The executor already chases `owl:sameAs` at probe time: when a
//! pattern position holds an IRI, [`SameAsLinks`](super::SameAsLinks)
//! supplies the equivalence class and every member is probed. That
//! expansion is implicit — it never shows up in the query text, the
//! canonical fingerprint, or the answer cache key, which makes it
//! impossible to reason about (or cache) a query *as rewritten against a
//! specific closure state*.
//!
//! [`rewrite_sameas`] makes the closure explicit: each required triple
//! pattern whose constant subject/object IRIs have non-empty equivalence
//! classes is replaced by a `{ … } UNION { … }` alternation, one branch
//! per member combination, original first. The result is a
//! [`RewrittenQuery`] carrying
//!
//! * the rewritten [`Query`] (plain AST — it prints, parses, and
//!   fingerprints like any hand-written UNION query),
//! * the link-closure **generation** it was rewritten at, stamped into
//!   every answer-cache key of the execution so a closure change can
//!   never serve a stale rewritten answer, and
//! * per-branch **link provenance**, so answers produced by a
//!   substituted branch still credit the links that enabled them —
//!   byte-compatible with the implicit expansion's `links_used`.
//!
//! Inside UNION branches the executor suppresses implicit *constant*
//! expansion (the alternation is the expansion); runtime-bound variable
//! values still expand, so rewriting can only make the closure visible,
//! never lose answers. Rewriting is idempotent: patterns already inside
//! a UNION are left untouched, so `rewrite(rewrite(q)) == rewrite(q)`
//! under the same closure.

use std::collections::BTreeMap;

use crate::ast::{Query, TermPattern, TriplePattern, WhereElement};
use crate::value::Value;

use super::links::{Link, SameAsLinks};

/// A query rewritten against a specific sameAs-closure state.
#[derive(Debug, Clone, PartialEq)]
pub struct RewrittenQuery {
    query: Query,
    generation: u64,
    rewritten_patterns: u64,
    /// Links that justify each substituted branch, keyed by
    /// `(union index, branch index)` in [`Query::unions`] order. Absent
    /// key means the branch used no links (e.g. the original branch, or
    /// a union already present before rewriting).
    branch_links: BTreeMap<(usize, usize), Vec<Link>>,
}

impl RewrittenQuery {
    /// The rewritten query (plain AST; unions are ordinary unions).
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The link-closure generation this rewrite reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of required patterns converted into unions.
    pub fn rewritten_patterns(&self) -> u64 {
        self.rewritten_patterns
    }

    /// Whether the closure has changed since this rewrite was computed.
    pub fn is_stale(&self, links: &SameAsLinks) -> bool {
        links.generation() != self.generation
    }

    /// Links credited to branch `bi` of union `ui` (empty for original
    /// branches and pre-existing unions).
    pub fn links_for(&self, ui: usize, bi: usize) -> &[Link] {
        self.branch_links
            .get(&(ui, bi))
            .map_or(&[], |links| links.as_slice())
    }
}

/// The sameAs alternatives of one pattern position: the original term
/// first, then one entry per equivalence-class member, each with the
/// link that justifies it. Non-constant and non-IRI positions have no
/// alternatives beyond themselves.
fn alternatives(term: &TermPattern, links: &SameAsLinks) -> Vec<(TermPattern, Option<Link>)> {
    let mut out = vec![(term.clone(), None)];
    if let TermPattern::Value(Value::Iri(iri)) = term {
        for (other, link) in links.equivalents(iri) {
            out.push((TermPattern::Value(Value::iri(other)), Some(link)));
        }
    }
    out
}

/// Rewrite `query` against the current closure in `links`.
///
/// Only required patterns are rewritten; OPTIONAL groups, filters, and
/// pre-existing unions pass through verbatim (which is what makes the
/// rewrite idempotent). A pattern whose constant IRIs have no
/// equivalents stays a plain pattern — no single-branch unions.
pub fn rewrite_sameas(query: &Query, links: &SameAsLinks) -> RewrittenQuery {
    let mut where_clause = Vec::with_capacity(query.where_clause.len());
    let mut branch_links = BTreeMap::new();
    let mut rewritten_patterns = 0u64;
    // Index into `Query::unions()` order: every Union pushed — copied or
    // freshly created — claims the next slot.
    let mut ui = 0usize;
    for element in &query.where_clause {
        match element {
            WhereElement::Pattern(p) => {
                let s_alts = alternatives(&p.subject, links);
                let o_alts = alternatives(&p.object, links);
                if s_alts.len() * o_alts.len() == 1 {
                    where_clause.push(WhereElement::Pattern(p.clone()));
                    continue;
                }
                let mut branches = Vec::with_capacity(s_alts.len() * o_alts.len());
                for (bi_s, (s, s_link)) in s_alts.iter().enumerate() {
                    for (bi_o, (o, o_link)) in o_alts.iter().enumerate() {
                        let bi = bi_s * o_alts.len() + bi_o;
                        let used: Vec<Link> =
                            [s_link, o_link].into_iter().flatten().cloned().collect();
                        if !used.is_empty() {
                            branch_links.insert((ui, bi), used);
                        }
                        branches.push(vec![TriplePattern {
                            subject: s.clone(),
                            predicate: p.predicate.clone(),
                            object: o.clone(),
                        }]);
                    }
                }
                where_clause.push(WhereElement::Union(branches));
                rewritten_patterns += 1;
                ui += 1;
            }
            WhereElement::Union(branches) => {
                where_clause.push(WhereElement::Union(branches.clone()));
                ui += 1;
            }
            other => where_clause.push(other.clone()),
        }
    }
    RewrittenQuery {
        query: Query {
            where_clause,
            ..query.clone()
        },
        generation: links.generation(),
        rewritten_patterns,
        branch_links,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn links() -> SameAsLinks {
        SameAsLinks::from_pairs([("http://db/LeBron", "http://nyt/lebron-james")])
    }

    #[test]
    fn constant_subject_becomes_a_two_branch_union() {
        let q = parse("SELECT ?o WHERE { <http://db/LeBron> <http://db/award> ?o . }").unwrap();
        let rw = rewrite_sameas(&q, &links());
        assert_eq!(rw.rewritten_patterns(), 1);
        let unions: Vec<_> = rw.query().unions().collect();
        assert_eq!(unions.len(), 1);
        assert_eq!(unions[0].len(), 2);
        assert_eq!(
            rw.query().to_sparql(),
            "SELECT ?o WHERE { { <http://db/LeBron> <http://db/award> ?o . } UNION \
             { <http://nyt/lebron-james> <http://db/award> ?o . } }"
        );
        assert_eq!(rw.links_for(0, 0), &[]);
        assert_eq!(
            rw.links_for(0, 1),
            &[Link::new("http://db/LeBron", "http://nyt/lebron-james")]
        );
    }

    #[test]
    fn variables_and_unlinked_constants_pass_through() {
        let q = parse(
            "SELECT ?s ?o WHERE { ?s <http://db/award> ?o . \
             <http://db/Nobody> <http://db/award> ?o . }",
        )
        .unwrap();
        let rw = rewrite_sameas(&q, &links());
        assert_eq!(rw.rewritten_patterns(), 0);
        assert_eq!(rw.query(), &q, "nothing to rewrite: query unchanged");
    }

    #[test]
    fn subject_and_object_links_cross_product() {
        let mut links = links();
        links.add(Link::new("http://db/Heat", "http://nyt/miami-heat"));
        let q = parse("SELECT ?x WHERE { <http://db/LeBron> <http://db/team> <http://db/Heat> . }")
            .unwrap();
        let rw = rewrite_sameas(&q, &links);
        let unions: Vec<_> = rw.query().unions().collect();
        assert_eq!(unions[0].len(), 4, "2 subjects x 2 objects");
        // Branch 3 = (alt subject, alt object): credits both links.
        assert_eq!(rw.links_for(0, 3).len(), 2);
        // Branch order is subject-major: branch 1 = (orig s, alt o).
        assert_eq!(
            rw.links_for(0, 1),
            &[Link::new("http://db/Heat", "http://nyt/miami-heat")]
        );
    }

    #[test]
    fn rewrite_is_idempotent() {
        let links = links();
        let q = parse(
            "SELECT ?o ?v WHERE { <http://db/LeBron> <http://db/award> ?o . \
             OPTIONAL { ?o <http://db/year> ?v . } }",
        )
        .unwrap();
        let once = rewrite_sameas(&q, &links);
        let twice = rewrite_sameas(once.query(), &links);
        assert_eq!(twice.query(), once.query());
        assert_eq!(twice.rewritten_patterns(), 0);
        assert!(twice.branch_links.is_empty());
    }

    #[test]
    fn staleness_tracks_the_closure_generation() {
        let mut links = links();
        let q = parse("SELECT ?o WHERE { <http://db/LeBron> <http://db/award> ?o . }").unwrap();
        let rw = rewrite_sameas(&q, &links);
        assert!(!rw.is_stale(&links));
        links.add(Link::new("http://db/Heat", "http://nyt/miami-heat"));
        assert!(rw.is_stale(&links));
        let fresh = rewrite_sameas(&q, &links);
        assert!(!fresh.is_stale(&links));
        assert_eq!(fresh.generation(), links.generation());
    }

    #[test]
    fn pre_existing_unions_keep_their_index_slot() {
        let mut links = links();
        links.add(Link::new("http://db/Heat", "http://nyt/miami-heat"));
        let q = parse(
            "SELECT ?a ?b WHERE { \
             { ?a <http://p/1> ?b . } UNION { ?a <http://p/2> ?b . } \
             <http://db/Heat> <http://db/arena> ?b . }",
        )
        .unwrap();
        let rw = rewrite_sameas(&q, &links);
        let unions: Vec<_> = rw.query().unions().collect();
        assert_eq!(unions.len(), 2);
        assert_eq!(unions[0].len(), 2, "hand-written union copied verbatim");
        assert_eq!(
            rw.links_for(0, 1),
            &[],
            "no credit for hand-written branches"
        );
        assert_eq!(
            rw.links_for(1, 1),
            &[Link::new("http://db/Heat", "http://nyt/miami-heat")]
        );
    }
}
