//! FedX-style federated query processing with sameAs provenance.

pub mod endpoint;
pub mod executor;
pub mod links;

pub use endpoint::{DatasetEndpoint, Endpoint};
pub use executor::{FederatedEngine, QueryAnswer};
pub use links::{Link, SameAsLinks};
