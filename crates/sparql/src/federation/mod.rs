//! FedX-style federated query processing with sameAs provenance, hardened
//! against unreliable sources (fault injection, retries, circuit breakers,
//! and partial-answer degradation).
//!
//! Panicking call sites are banned throughout this module tree (enforced
//! below via `clippy::unwrap_used` / `clippy::expect_used`): an endpoint
//! failure must degrade or surface as a typed error, never crash the loop.

#[deny(clippy::unwrap_used, clippy::expect_used)]
pub(crate) mod cache;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod catalog;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod endpoint;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod executor;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod fault;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod links;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod resilience;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod rewrite;

pub use catalog::{Catalog, CatalogParseError, Coverage};
pub use endpoint::{DatasetEndpoint, Endpoint};
pub use executor::{FederatedEngine, FederatedResult, QueryAnswer};
pub use fault::{FaultProfile, FaultyEndpoint};
pub use links::{Link, LinkObserver, SameAsLinks};
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, Completeness, Deadline, EndpointError,
    ResilienceConfig, RetryPolicy,
};
pub use rewrite::{rewrite_sameas, RewrittenQuery};
