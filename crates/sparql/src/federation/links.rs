//! The `owl:sameAs` link index used by the federation engine.
//!
//! This is the mutable link store ALEX operates on: federated joins consult
//! it to bridge entities across data sets, query answers record which links
//! they used (provenance), and ALEX's feedback loop adds and removes links.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A directed `owl:sameAs` link between two entity IRIs, in the orientation
/// it was asserted (left data set → right data set).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Entity IRI in the left data set.
    pub left: String,
    /// Entity IRI in the right data set.
    pub right: String,
}

impl Link {
    /// Construct a link.
    pub fn new(left: impl Into<String>, right: impl Into<String>) -> Link {
        Link {
            left: left.into(),
            right: right.into(),
        }
    }
}

/// Observer notified on every *effective* link mutation.
///
/// `add` and `remove` are the only two methods that mutate the index
/// (every other constructor or bulk path funnels through them), so a
/// subscriber — e.g. the answer cache's invalidator — provably sees
/// every mutation site. No-op calls (duplicate add, absent remove) do
/// not notify.
pub trait LinkObserver: Send + Sync {
    /// A link was inserted that was not previously present.
    fn link_added(&self, link: &Link);
    /// A link that was present was removed.
    fn link_removed(&self, link: &Link);
}

/// A bidirectional index over sameAs links.
#[derive(Default)]
pub struct SameAsLinks {
    forward: HashMap<String, Vec<String>>,
    backward: HashMap<String, Vec<String>>,
    set: HashSet<Link>,
    observers: Vec<Arc<dyn LinkObserver>>,
    generation: u64,
}

impl std::fmt::Debug for SameAsLinks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SameAsLinks")
            .field("links", &self.set.len())
            .field("generation", &self.generation)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Clone for SameAsLinks {
    /// Clones carry the link data (and closure generation) but *not* the
    /// observers: a subscriber watches one index instance, and silently
    /// attaching it to copies would make it fire for mutations of state
    /// it never indexed.
    fn clone(&self) -> Self {
        SameAsLinks {
            forward: self.forward.clone(),
            backward: self.backward.clone(),
            set: self.set.clone(),
            observers: Vec::new(),
            generation: self.generation,
        }
    }
}

impl SameAsLinks {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of (left, right) IRI pairs.
    pub fn from_pairs<I, L, R>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (L, R)>,
        L: Into<String>,
        R: Into<String>,
    {
        let mut s = Self::new();
        for (l, r) in pairs {
            s.add(Link::new(l, r));
        }
        s
    }

    /// Subscribe an observer to all future effective mutations.
    pub fn subscribe(&mut self, observer: Arc<dyn LinkObserver>) {
        self.observers.push(observer);
    }

    /// Detach all observers.
    pub fn clear_observers(&mut self) {
        self.observers.clear();
    }

    /// Closure generation: a counter bumped on every *effective* mutation
    /// (the same events observers see). Two indexes with equal generation
    /// that started from the same state hold the same link closure, so
    /// rewrite provenance and cache keys can use it as a cheap staleness
    /// stamp — any add or remove invalidates every key that embeds it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Add a link. Returns `true` if it was new. Observers are notified
    /// only when the index actually changed.
    pub fn add(&mut self, link: Link) -> bool {
        if !self.set.insert(link.clone()) {
            return false;
        }
        self.generation += 1;
        self.forward
            .entry(link.left.clone())
            .or_default()
            .push(link.right.clone());
        self.backward
            .entry(link.right.clone())
            .or_default()
            .push(link.left.clone());
        for obs in &self.observers {
            obs.link_added(&link);
        }
        true
    }

    /// Remove a link. Returns `true` if it was present. Observers are
    /// notified only when the index actually changed.
    pub fn remove(&mut self, link: &Link) -> bool {
        if !self.set.remove(link) {
            return false;
        }
        self.generation += 1;
        if let Some(v) = self.forward.get_mut(&link.left) {
            v.retain(|r| r != &link.right);
        }
        if let Some(v) = self.backward.get_mut(&link.right) {
            v.retain(|l| l != &link.left);
        }
        for obs in &self.observers {
            obs.link_removed(link);
        }
        true
    }

    /// Whether the exact (oriented) link exists.
    pub fn contains(&self, link: &Link) -> bool {
        self.set.contains(link)
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Entities equivalent to `iri` in either direction, each with the link
    /// that asserts the equivalence (in stored orientation, so provenance
    /// can be traced back to the original assertion).
    pub fn equivalents<'a>(&'a self, iri: &str) -> Vec<(&'a str, Link)> {
        let mut out = Vec::new();
        if let Some(rights) = self.forward.get(iri) {
            for r in rights {
                out.push((r.as_str(), Link::new(iri, r.clone())));
            }
        }
        if let Some(lefts) = self.backward.get(iri) {
            for l in lefts {
                out.push((l.as_str(), Link::new(l.clone(), iri)));
            }
        }
        out
    }

    /// Iterate over all links, sorted by `(left, right)`. The backing set
    /// hashes, so raw iteration order would vary per process — and this
    /// ordering seeds the agent's candidate set, where it decides which
    /// index the seeded sampler maps to which pair. Sorting here keeps
    /// whole improve runs byte-reproducible across processes and thread
    /// counts.
    pub fn iter(&self) -> impl Iterator<Item = &Link> {
        let mut links: Vec<&Link> = self.set.iter().collect();
        links.sort_unstable();
        links.into_iter()
    }

    /// Serialize every link as `owl:sameAs` N-Triples (sorted, stable) —
    /// the interchange format other linked-data tools understand.
    pub fn to_ntriples(&self) -> String {
        let mut links: Vec<&Link> = self.set.iter().collect();
        links.sort();
        let mut out = String::new();
        for l in links {
            out.push_str(&format!(
                "<{}> <{}> <{}> .\n",
                l.left,
                alex_rdf::vocab::OWL_SAME_AS,
                l.right
            ));
        }
        out
    }

    /// Parse `owl:sameAs` links from an N-Triples document. Triples with a
    /// different predicate or non-IRI endpoints are ignored.
    pub fn from_ntriples(doc: &str) -> Result<SameAsLinks, alex_rdf::RdfError> {
        let mut ds = alex_rdf::Dataset::new("links");
        alex_rdf::ntriples::parse_into(&mut ds, doc)?;
        let mut out = SameAsLinks::new();
        let Some(same_as) = ds.interner().get(alex_rdf::vocab::OWL_SAME_AS) else {
            return Ok(out);
        };
        for t in ds.graph().iter() {
            if t.predicate != alex_rdf::Term::Iri(same_as) {
                continue;
            }
            if let (alex_rdf::Term::Iri(l), alex_rdf::Term::Iri(r)) = (t.subject, t.object) {
                out.add(Link::new(ds.resolve_sym(l), ds.resolve_sym(r)));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn add_and_contains() {
        let mut s = SameAsLinks::new();
        assert!(s.add(Link::new("a", "x")));
        assert!(!s.add(Link::new("a", "x")), "duplicates rejected");
        assert!(s.contains(&Link::new("a", "x")));
        assert!(!s.contains(&Link::new("x", "a")), "orientation matters");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_cleans_both_directions() {
        let mut s = SameAsLinks::new();
        s.add(Link::new("a", "x"));
        assert!(s.remove(&Link::new("a", "x")));
        assert!(!s.remove(&Link::new("a", "x")));
        assert!(s.equivalents("a").is_empty());
        assert!(s.equivalents("x").is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn equivalents_both_directions_with_provenance() {
        let mut s = SameAsLinks::new();
        s.add(Link::new("a", "x"));
        s.add(Link::new("b", "x"));
        let eq_x = s.equivalents("x");
        assert_eq!(eq_x.len(), 2);
        for (other, link) in &eq_x {
            assert!(s.contains(link), "provenance link {link:?} must exist");
            assert!(*other == "a" || *other == "b");
        }
        let eq_a = s.equivalents("a");
        assert_eq!(eq_a.len(), 1);
        assert_eq!(eq_a[0].0, "x");
        assert_eq!(eq_a[0].1, Link::new("a", "x"));
    }

    #[test]
    fn generation_counts_effective_mutations_only() {
        let mut s = SameAsLinks::new();
        assert_eq!(s.generation(), 0);
        s.add(Link::new("a", "x"));
        assert_eq!(s.generation(), 1);
        s.add(Link::new("a", "x")); // duplicate: no-op
        assert_eq!(s.generation(), 1);
        s.remove(&Link::new("ghost", "y")); // absent: no-op
        assert_eq!(s.generation(), 1);
        s.remove(&Link::new("a", "x"));
        assert_eq!(s.generation(), 2);
        // Clones carry the closure stamp; a mutated clone diverges.
        let mut c = s.clone();
        assert_eq!(c.generation(), 2);
        c.add(Link::new("b", "y"));
        assert_eq!(c.generation(), 3);
        assert_eq!(s.generation(), 2);
    }

    #[test]
    fn from_pairs_builds_index() {
        let s = SameAsLinks::from_pairs(vec![("a", "x"), ("b", "y")]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn unknown_iri_has_no_equivalents() {
        let s = SameAsLinks::new();
        assert!(s.equivalents("ghost").is_empty());
    }

    #[test]
    fn ntriples_round_trip() {
        let s = SameAsLinks::from_pairs(vec![
            ("http://a/1", "http://b/1"),
            ("http://a/2", "http://b/2"),
        ]);
        let doc = s.to_ntriples();
        assert_eq!(doc.lines().count(), 2);
        assert!(doc.contains("owl#sameAs"));
        let back = SameAsLinks::from_ntriples(&doc).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.contains(&Link::new("http://a/1", "http://b/1")));
        // Stable output.
        assert_eq!(back.to_ntriples(), doc);
    }

    use std::sync::Mutex;

    /// Records every notification so tests can assert exactly which
    /// mutations were observed.
    #[derive(Default)]
    struct Recorder {
        added: Mutex<Vec<Link>>,
        removed: Mutex<Vec<Link>>,
    }

    impl LinkObserver for Recorder {
        fn link_added(&self, link: &Link) {
            self.added.lock().unwrap().push(link.clone());
        }
        fn link_removed(&self, link: &Link) {
            self.removed.lock().unwrap().push(link.clone());
        }
    }

    #[test]
    fn observer_sees_add() {
        let rec = Arc::new(Recorder::default());
        let mut s = SameAsLinks::new();
        s.subscribe(rec.clone());
        s.add(Link::new("a", "x"));
        assert_eq!(*rec.added.lock().unwrap(), vec![Link::new("a", "x")]);
        assert!(rec.removed.lock().unwrap().is_empty());
    }

    #[test]
    fn observer_sees_remove() {
        let rec = Arc::new(Recorder::default());
        let mut s = SameAsLinks::new();
        s.add(Link::new("a", "x"));
        s.subscribe(rec.clone());
        s.remove(&Link::new("a", "x"));
        assert_eq!(*rec.removed.lock().unwrap(), vec![Link::new("a", "x")]);
        assert!(rec.added.lock().unwrap().is_empty());
    }

    #[test]
    fn observer_silent_on_noop_mutations() {
        let rec = Arc::new(Recorder::default());
        let mut s = SameAsLinks::new();
        s.add(Link::new("a", "x"));
        s.subscribe(rec.clone());
        assert!(!s.add(Link::new("a", "x")), "duplicate add is a no-op");
        assert!(
            !s.remove(&Link::new("ghost", "y")),
            "absent remove is a no-op"
        );
        assert!(rec.added.lock().unwrap().is_empty());
        assert!(rec.removed.lock().unwrap().is_empty());
    }

    #[test]
    fn bulk_constructors_funnel_through_add() {
        // from_pairs and from_ntriples construct fresh indexes via add(),
        // so a subscriber attached afterwards still sees every later
        // mutation; there is no second mutation path to audit.
        let mut s = SameAsLinks::from_pairs(vec![("a", "x")]);
        let rec = Arc::new(Recorder::default());
        s.subscribe(rec.clone());
        s.add(Link::new("b", "y"));
        assert_eq!(rec.added.lock().unwrap().len(), 1);

        let doc = "<http://a/1> <http://www.w3.org/2002/07/owl#sameAs> <http://b/1> .\n";
        let mut t = SameAsLinks::from_ntriples(doc).unwrap();
        t.subscribe(rec.clone());
        t.remove(&Link::new("http://a/1", "http://b/1"));
        assert_eq!(rec.removed.lock().unwrap().len(), 1);
    }

    #[test]
    fn clone_detaches_observers() {
        let rec = Arc::new(Recorder::default());
        let mut s = SameAsLinks::new();
        s.subscribe(rec.clone());
        let mut copy = s.clone();
        copy.add(Link::new("a", "x"));
        assert!(
            rec.added.lock().unwrap().is_empty(),
            "mutating a clone must not notify the original's observers"
        );
    }

    #[test]
    fn from_ntriples_ignores_other_predicates() {
        let doc = "<http://a/1> <http://other/pred> <http://b/1> .\n\
                   <http://a/2> <http://www.w3.org/2002/07/owl#sameAs> \"literal\" .\n\
                   <http://a/3> <http://www.w3.org/2002/07/owl#sameAs> <http://b/3> .\n";
        let links = SameAsLinks::from_ntriples(doc).unwrap();
        assert_eq!(links.len(), 1);
        assert!(links.contains(&Link::new("http://a/3", "http://b/3")));
    }
}
