//! Per-endpoint coverage catalogs for source selection.
//!
//! Broadcasting every triple pattern to every endpoint is the dominant
//! cost of federated evaluation: most sources cannot answer most
//! patterns, and every useless probe burns latency, retry budget, and
//! cache capacity. A [`Catalog`] records, per endpoint, which predicate
//! IRIs (and, for `rdf:type`, which class IRIs) the source holds, so the
//! executor can *prove* a probe would return nothing and skip it.
//!
//! Two ways to build coverage:
//!
//! * **probing** ([`Catalog::probe_endpoint`]) — a wildcard scan of the
//!   endpoint collects the full predicate/class sets. Probing is always
//!   exhaustive, never sampled: a sampled catalog could miss a predicate
//!   the endpoint does hold, and a false "not covered" verdict silently
//!   loses answers — the one failure mode a pruning layer must never
//!   have. (Sources too large to scan should declare instead.)
//! * **declaration** ([`Catalog::declare`]) — coverage supplied upfront
//!   (a VoID-style description, a service manifest).
//!
//! Staleness is explicit: the catalog carries a version counter, every
//! coverage entry records the version it was built at, and
//! [`Catalog::bump_version`] marks all existing entries stale when the
//! underlying data may have changed. A stale (or absent) entry means
//! *unknown*, and unknown endpoints are broadcast — the catalog can only
//! narrow selection when it has fresh positive knowledge, so a forgotten
//! refresh degrades to the old broadcast behavior instead of losing
//! answers.
//!
//! The completeness contract: a catalog prune asserts "this endpoint
//! provably holds no matching triple", so it does **not** downgrade
//! [`Completeness`](super::resilience::Completeness). Resilience skips
//! (breaker open, retries exhausted, budget blown) keep their explicit
//! downgrade — the catalog consults coverage only, never health, so it
//! can never convert an outage into a silent gap.

use std::collections::{BTreeMap, BTreeSet};

use crate::value::Value;

use super::endpoint::Endpoint;
use super::resilience::{Deadline, EndpointError};

/// What one endpoint is known to hold.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Predicate IRIs with at least one triple.
    pub predicates: BTreeSet<String>,
    /// Class IRIs with at least one `rdf:type` assertion.
    pub classes: BTreeSet<String>,
    /// Catalog version this entry was built at; older than the catalog's
    /// current version means stale (treated as unknown).
    pub built_version: u64,
}

/// Error from parsing a serialized catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for CatalogParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "catalog parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for CatalogParseError {}

/// A versioned map from endpoint name to [`Coverage`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    version: u64,
    entries: BTreeMap<String, Coverage>,
}

impl Catalog {
    /// An empty catalog (covers nothing, prunes nothing).
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// The current data version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of endpoints with coverage entries (fresh or stale).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no endpoint has a coverage entry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mark the underlying data as changed: every existing entry becomes
    /// stale (unknown) until re-probed or re-declared.
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Declare an endpoint's coverage upfront (stamped fresh at the
    /// current version).
    pub fn declare<P, C>(&mut self, endpoint: impl Into<String>, predicates: P, classes: C)
    where
        P: IntoIterator<Item = String>,
        C: IntoIterator<Item = String>,
    {
        self.entries.insert(
            endpoint.into(),
            Coverage {
                predicates: predicates.into_iter().collect(),
                classes: classes.into_iter().collect(),
                built_version: self.version,
            },
        );
    }

    /// Build (or refresh) an endpoint's coverage by an exhaustive
    /// wildcard scan. On error the endpoint's previous entry is left
    /// untouched (possibly stale — i.e. broadcast), never half-written.
    pub fn probe_endpoint(
        &mut self,
        ep: &dyn Endpoint,
        deadline: &Deadline,
    ) -> Result<(), EndpointError> {
        let rows = ep.matching(None, None, None, deadline)?;
        let mut coverage = Coverage {
            built_version: self.version,
            ..Coverage::default()
        };
        for [_, p, o] in &rows {
            if let Value::Iri(p_iri) = p {
                coverage.predicates.insert(p_iri.clone());
                if p_iri == alex_rdf::vocab::RDF_TYPE {
                    if let Value::Iri(class) = o {
                        coverage.classes.insert(class.clone());
                    }
                }
            }
        }
        self.entries.insert(ep.name().to_string(), coverage);
        Ok(())
    }

    /// The coverage entry for an endpoint, if any (fresh or stale).
    pub fn coverage(&self, endpoint: &str) -> Option<&Coverage> {
        self.entries.get(endpoint)
    }

    /// Whether the endpoint's entry is stale (or missing): stale entries
    /// are treated as unknown and never prune.
    pub fn is_stale(&self, endpoint: &str) -> bool {
        self.entries
            .get(endpoint)
            .is_none_or(|c| c.built_version < self.version)
    }

    /// Whether a probe `(p, o)` *may* match on `endpoint`. `false` is a
    /// proof of emptiness (safe to prune); `true` means unknown-or-maybe
    /// (must probe). Only fresh positive knowledge prunes:
    ///
    /// * no entry, or a stale entry → `true` (unknown);
    /// * bound IRI predicate not in the predicate set → `false`;
    /// * `rdf:type` with a bound IRI object not in the class set → `false`;
    /// * anything else (unbound or non-IRI predicate) → `true`.
    pub fn may_match(&self, endpoint: &str, p: Option<&Value>, o: Option<&Value>) -> bool {
        let Some(coverage) = self.entries.get(endpoint) else {
            return true;
        };
        if coverage.built_version < self.version {
            return true;
        }
        let Some(Value::Iri(p_iri)) = p else {
            return true;
        };
        if !coverage.predicates.contains(p_iri) {
            return false;
        }
        if p_iri == alex_rdf::vocab::RDF_TYPE {
            if let Some(Value::Iri(class)) = o {
                return coverage.classes.contains(class);
            }
        }
        true
    }

    /// Serialize to a line-oriented text document (stable: sorted maps).
    ///
    /// ```text
    /// alex-catalog v1
    /// version 3
    /// endpoint 3 DBpedia
    /// predicate http://db/award
    /// class http://db/Player
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("alex-catalog v1\n");
        out.push_str(&format!("version {}\n", self.version));
        for (name, coverage) in &self.entries {
            out.push_str(&format!("endpoint {} {}\n", coverage.built_version, name));
            for p in &coverage.predicates {
                out.push_str(&format!("predicate {p}\n"));
            }
            for c in &coverage.classes {
                out.push_str(&format!("class {c}\n"));
            }
        }
        out
    }

    /// Parse a document produced by [`Catalog::to_text`].
    pub fn from_text(doc: &str) -> Result<Catalog, CatalogParseError> {
        let err = |line: usize, message: &str| CatalogParseError {
            line,
            message: message.to_string(),
        };
        let mut lines = doc.lines().enumerate();
        match lines.next() {
            Some((_, "alex-catalog v1")) => {}
            _ => return Err(err(1, "expected header 'alex-catalog v1'")),
        }
        let mut catalog = Catalog::new();
        let mut current: Option<String> = None;
        let mut saw_version = false;
        for (i, line) in lines {
            let lineno = i + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (kind, rest) = line
                .split_once(' ')
                .ok_or_else(|| err(lineno, "expected '<kind> <value>'"))?;
            match kind {
                "version" => {
                    catalog.version = rest
                        .parse()
                        .map_err(|_| err(lineno, "invalid version number"))?;
                    saw_version = true;
                }
                "endpoint" => {
                    let (built, name) = rest
                        .split_once(' ')
                        .ok_or_else(|| err(lineno, "expected 'endpoint <version> <name>'"))?;
                    let built_version: u64 = built
                        .parse()
                        .map_err(|_| err(lineno, "invalid endpoint version"))?;
                    if name.is_empty() {
                        return Err(err(lineno, "empty endpoint name"));
                    }
                    catalog.entries.insert(
                        name.to_string(),
                        Coverage {
                            built_version,
                            ..Coverage::default()
                        },
                    );
                    current = Some(name.to_string());
                }
                "predicate" | "class" => {
                    let Some(name) = &current else {
                        return Err(err(lineno, "coverage line before any endpoint"));
                    };
                    // The entry was just inserted above; guard anyway to
                    // stay panic-free.
                    let Some(coverage) = catalog.entries.get_mut(name) else {
                        return Err(err(lineno, "coverage line before any endpoint"));
                    };
                    if kind == "predicate" {
                        coverage.predicates.insert(rest.to_string());
                    } else {
                        coverage.classes.insert(rest.to_string());
                    }
                }
                other => return Err(err(lineno, &format!("unknown line kind '{other}'"))),
            }
        }
        if !saw_version {
            return Err(err(1, "missing 'version' line"));
        }
        Ok(catalog)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::federation::endpoint::DatasetEndpoint;
    use alex_rdf::Dataset;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new("T");
        ds.add_str("http://e/a", "http://e/name", "Alpha");
        ds.add_iri("http://e/a", alex_rdf::vocab::RDF_TYPE, "http://e/Person");
        ds.add_iri("http://e/b", "http://e/knows", "http://e/a");
        ds
    }

    #[test]
    fn probe_collects_predicates_and_classes() {
        let ep = DatasetEndpoint::new(dataset());
        let mut cat = Catalog::new();
        cat.probe_endpoint(&ep, &Deadline::none()).unwrap();
        let cov = cat.coverage("T").unwrap();
        assert!(cov.predicates.contains("http://e/name"));
        assert!(cov.predicates.contains("http://e/knows"));
        assert!(cov.predicates.contains(alex_rdf::vocab::RDF_TYPE));
        assert_eq!(cov.classes.len(), 1);
        assert!(cov.classes.contains("http://e/Person"));
        assert!(!cat.is_stale("T"));
    }

    #[test]
    fn may_match_prunes_only_with_fresh_positive_knowledge() {
        let ep = DatasetEndpoint::new(dataset());
        let mut cat = Catalog::new();
        let name = Value::iri("http://e/name");
        let ghost = Value::iri("http://e/ghost");

        // Unknown endpoint: never prune.
        assert!(cat.may_match("T", Some(&ghost), None));
        cat.probe_endpoint(&ep, &Deadline::none()).unwrap();
        // Fresh knowledge: covered predicates pass, absent ones prune.
        assert!(cat.may_match("T", Some(&name), None));
        assert!(!cat.may_match("T", Some(&ghost), None));
        // Unbound and non-IRI predicates never prune.
        assert!(cat.may_match("T", None, None));
        assert!(cat.may_match("T", Some(&Value::plain("lit")), None));
        // rdf:type narrows by class.
        let rdf_type = Value::iri(alex_rdf::vocab::RDF_TYPE);
        assert!(cat.may_match("T", Some(&rdf_type), Some(&Value::iri("http://e/Person"))));
        assert!(!cat.may_match("T", Some(&rdf_type), Some(&Value::iri("http://e/Robot"))));
        assert!(cat.may_match("T", Some(&rdf_type), None));
    }

    #[test]
    fn bump_version_makes_entries_stale_and_disables_pruning() {
        let ep = DatasetEndpoint::new(dataset());
        let mut cat = Catalog::new();
        cat.probe_endpoint(&ep, &Deadline::none()).unwrap();
        let ghost = Value::iri("http://e/ghost");
        assert!(!cat.may_match("T", Some(&ghost), None));
        cat.bump_version();
        assert!(cat.is_stale("T"));
        assert!(
            cat.may_match("T", Some(&ghost), None),
            "stale entries must broadcast, not prune"
        );
        // Re-probing restores fresh pruning at the new version.
        cat.probe_endpoint(&ep, &Deadline::none()).unwrap();
        assert!(!cat.is_stale("T"));
        assert!(!cat.may_match("T", Some(&ghost), None));
    }

    #[test]
    fn declared_coverage_prunes_like_probed() {
        let mut cat = Catalog::new();
        cat.declare(
            "Remote With Spaces",
            vec!["http://e/name".to_string()],
            vec!["http://e/Person".to_string()],
        );
        assert!(cat.may_match(
            "Remote With Spaces",
            Some(&Value::iri("http://e/name")),
            None
        ));
        assert!(!cat.may_match(
            "Remote With Spaces",
            Some(&Value::iri("http://e/other")),
            None
        ));
    }

    #[test]
    fn text_round_trip_is_stable() {
        let ep = DatasetEndpoint::new(dataset());
        let mut cat = Catalog::new();
        cat.bump_version();
        cat.probe_endpoint(&ep, &Deadline::none()).unwrap();
        cat.declare(
            "Semantic Web Dogfood",
            vec!["http://s/p".to_string()],
            Vec::new(),
        );
        let doc = cat.to_text();
        let back = Catalog::from_text(&doc).unwrap();
        assert_eq!(back, cat);
        assert_eq!(back.to_text(), doc, "serialization is a fixpoint");
        assert_eq!(back.version(), 1);
        assert!(!back.is_stale("Semantic Web Dogfood"));
    }

    #[test]
    fn from_text_rejects_malformed_documents() {
        assert!(Catalog::from_text("").is_err());
        assert!(Catalog::from_text("not-a-catalog\n").is_err());
        assert!(
            Catalog::from_text("alex-catalog v1\n").is_err(),
            "missing version"
        );
        assert!(Catalog::from_text("alex-catalog v1\nversion x\n").is_err());
        assert!(
            Catalog::from_text("alex-catalog v1\nversion 0\npredicate http://p\n").is_err(),
            "coverage before endpoint"
        );
        assert!(Catalog::from_text("alex-catalog v1\nversion 0\nwhat is this\n").is_err());
        let e =
            Catalog::from_text("alex-catalog v1\nversion 0\nendpoint notanumber T\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn probe_failure_leaves_previous_entry_untouched() {
        use crate::federation::fault::{FaultProfile, FaultyEndpoint};
        let good = DatasetEndpoint::new(dataset());
        let mut cat = Catalog::new();
        cat.probe_endpoint(&good, &Deadline::none()).unwrap();
        let before = cat.clone();
        let dead = FaultyEndpoint::new(
            DatasetEndpoint::new(dataset()),
            FaultProfile {
                outage: Some((0, u64::MAX)),
                ..FaultProfile::none()
            },
        );
        assert!(cat.probe_endpoint(&dead, &Deadline::none()).is_err());
        assert_eq!(cat, before);
    }
}
