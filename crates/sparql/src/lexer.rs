//! Tokenizer for the SPARQL subset.

use crate::error::{Result, SparqlError};

/// A lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the input.
    pub position: usize,
    /// Token payload.
    pub kind: TokenKind,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare word: keyword (`SELECT`) or prefixed-name part.
    Word(String),
    /// A prefixed name `prefix:local`.
    Prefixed(String, String),
    /// `?name` variable.
    Var(String),
    /// `<iri>`.
    Iri(String),
    /// String literal with optional `@lang` / `^^<dt>` suffix.
    Literal {
        /// Lexical form (unescaped).
        lexical: String,
        /// Language tag.
        lang: Option<String>,
        /// Datatype IRI.
        datatype: Option<String>,
    },
    /// Numeric literal, kept as text.
    Number(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// Comparison or boolean operator: `= != < <= > >= && || !`.
    Op(String),
    /// End of input.
    Eof,
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Decode the actual character: casting the lead byte of a
        // multi-byte UTF-8 sequence to `char` would misclassify it (the
        // lead byte of '😀' casts to 'ð', which is alphabetic) and could
        // stall the scanner on a zero-length word.
        let c = input[i..].chars().next().expect("in-bounds char");
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(tok(start, TokenKind::LBrace));
                i += 1;
            }
            '}' => {
                tokens.push(tok(start, TokenKind::RBrace));
                i += 1;
            }
            '(' => {
                tokens.push(tok(start, TokenKind::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(tok(start, TokenKind::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(tok(start, TokenKind::Comma));
                i += 1;
            }
            '*' => {
                tokens.push(tok(start, TokenKind::Star));
                i += 1;
            }
            '.' => {
                // A dot starting a number (".5") is not supported; treat as punctuation.
                tokens.push(tok(start, TokenKind::Dot));
                i += 1;
            }
            '<' => {
                // `<iri>` or `<` / `<=` operator. An IRI never contains spaces.
                if let Some(end) = input[i + 1..].find('>') {
                    let candidate = &input[i + 1..i + 1 + end];
                    if !candidate.contains(char::is_whitespace) && !candidate.contains('<') {
                        tokens.push(tok(start, TokenKind::Iri(candidate.to_string())));
                        i += end + 2;
                        continue;
                    }
                }
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(tok(start, TokenKind::Op("<=".into())));
                    i += 2;
                } else {
                    tokens.push(tok(start, TokenKind::Op("<".into())));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(tok(start, TokenKind::Op(">=".into())));
                    i += 2;
                } else {
                    tokens.push(tok(start, TokenKind::Op(">".into())));
                    i += 1;
                }
            }
            '=' => {
                tokens.push(tok(start, TokenKind::Op("=".into())));
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(tok(start, TokenKind::Op("!=".into())));
                    i += 2;
                } else {
                    tokens.push(tok(start, TokenKind::Op("!".into())));
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    tokens.push(tok(start, TokenKind::Op("&&".into())));
                    i += 2;
                } else {
                    return Err(err(start, "expected '&&'"));
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    tokens.push(tok(start, TokenKind::Op("||".into())));
                    i += 2;
                } else {
                    return Err(err(start, "expected '||'"));
                }
            }
            '?' | '$' => {
                let word_end = scan_word(input, i + 1);
                if word_end == i + 1 {
                    return Err(err(start, "empty variable name"));
                }
                tokens.push(tok(
                    start,
                    TokenKind::Var(input[i + 1..word_end].to_string()),
                ));
                i = word_end;
            }
            '"' => {
                let (lexical, after) = scan_string(input, i)?;
                let mut lang = None;
                let mut datatype = None;
                let mut j = after;
                if j < bytes.len() && bytes[j] == b'@' {
                    let end = scan_word(input, j + 1);
                    lang = Some(input[j + 1..end].to_string());
                    j = end;
                } else if input[j..].starts_with("^^<") {
                    let Some(end) = input[j + 3..].find('>') else {
                        return Err(err(j, "unterminated datatype IRI"));
                    };
                    datatype = Some(input[j + 3..j + 3 + end].to_string());
                    j += end + 4;
                }
                tokens.push(tok(
                    start,
                    TokenKind::Literal {
                        lexical,
                        lang,
                        datatype,
                    },
                ));
                i = j;
            }
            c if c.is_ascii_digit() || (c == '-' && peek_digit(bytes, i + 1)) => {
                let mut j = i + 1;
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    // Don't consume a trailing statement dot ("42 ." vs "4.2").
                    if bytes[j] == b'.' && !peek_digit(bytes, j + 1) {
                        break;
                    }
                    j += 1;
                }
                tokens.push(tok(start, TokenKind::Number(input[i..j].to_string())));
                i = j;
            }
            c if is_word_start(c) => {
                let end = scan_word(input, i);
                let word = &input[i..end];
                // Prefixed name?
                if end < bytes.len() && bytes[end] == b':' {
                    let local_end = scan_word(input, end + 1);
                    tokens.push(tok(
                        start,
                        TokenKind::Prefixed(
                            word.to_string(),
                            input[end + 1..local_end].to_string(),
                        ),
                    ));
                    i = local_end;
                } else {
                    tokens.push(tok(start, TokenKind::Word(word.to_string())));
                    i = end;
                }
            }
            ':' => {
                // Default prefix `:local`.
                let local_end = scan_word(input, i + 1);
                tokens.push(tok(
                    start,
                    TokenKind::Prefixed(String::new(), input[i + 1..local_end].to_string()),
                ));
                i = local_end;
            }
            other => return Err(err(start, &format!("unexpected character '{other}'"))),
        }
    }
    tokens.push(tok(input.len(), TokenKind::Eof));
    Ok(tokens)
}

fn tok(position: usize, kind: TokenKind) -> Token {
    Token { position, kind }
}

fn err(position: usize, message: &str) -> SparqlError {
    SparqlError::Parse {
        position,
        message: message.to_string(),
    }
}

fn peek_digit(bytes: &[u8], i: usize) -> bool {
    i < bytes.len() && (bytes[i] as char).is_ascii_digit()
}

fn is_word_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

fn scan_word(input: &str, from: usize) -> usize {
    input[from..]
        .char_indices()
        .find(|(_, c)| !is_word_char(*c))
        .map(|(i, _)| from + i)
        .unwrap_or(input.len())
}

/// Scan a quoted string starting at the opening quote; returns the unescaped
/// content and the index just past the closing quote.
fn scan_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                if i + 1 >= bytes.len() {
                    break;
                }
                match bytes[i + 1] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => {
                        return Err(err(i, &format!("unsupported escape '\\{}'", other as char)))
                    }
                }
                i += 2;
            }
            _ => {
                // Copy a full UTF-8 character.
                let ch = input[i..].chars().next().expect("valid UTF-8");
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(err(start, "unterminated string literal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_select_query() {
        let ks = kinds("SELECT ?s WHERE { ?s <http://e/p> \"v\" . }");
        assert_eq!(
            ks,
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Var("s".into()),
                TokenKind::Word("WHERE".into()),
                TokenKind::LBrace,
                TokenKind::Var("s".into()),
                TokenKind::Iri("http://e/p".into()),
                TokenKind::Literal {
                    lexical: "v".into(),
                    lang: None,
                    datatype: None
                },
                TokenKind::Dot,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn literal_suffixes() {
        let ks = kinds("\"a\"@en \"2\"^^<http://dt>");
        assert_eq!(
            ks[0],
            TokenKind::Literal {
                lexical: "a".into(),
                lang: Some("en".into()),
                datatype: None
            }
        );
        assert_eq!(
            ks[1],
            TokenKind::Literal {
                lexical: "2".into(),
                lang: None,
                datatype: Some("http://dt".into())
            }
        );
    }

    #[test]
    fn operators() {
        let ks = kinds("= != < <= > >= && || !");
        let ops: Vec<String> = ks
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::Op(o) => Some(o),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["=", "!=", "<", "<=", ">", ">=", "&&", "||", "!"]);
    }

    #[test]
    fn less_than_vs_iri() {
        // `<` followed by a var is an operator, not an IRI opener.
        let ks = kinds("?x < 5");
        assert!(matches!(ks[1], TokenKind::Op(ref o) if o == "<"));
        assert!(matches!(ks[2], TokenKind::Number(ref n) if n == "5"));
    }

    #[test]
    fn numbers_and_statement_dot() {
        let ks = kinds("42 . 4.5 -3");
        assert_eq!(ks[0], TokenKind::Number("42".into()));
        assert_eq!(ks[1], TokenKind::Dot);
        assert_eq!(ks[2], TokenKind::Number("4.5".into()));
        assert_eq!(ks[3], TokenKind::Number("-3".into()));
    }

    #[test]
    fn prefixed_names() {
        let ks = kinds("foaf:name :local");
        assert_eq!(ks[0], TokenKind::Prefixed("foaf".into(), "name".into()));
        assert_eq!(ks[1], TokenKind::Prefixed("".into(), "local".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT # everything\n?x");
        assert_eq!(ks.len(), 3);
    }

    #[test]
    fn string_escapes() {
        let ks = kinds(r#""say \"hi\"\n""#);
        assert_eq!(
            ks[0],
            TokenKind::Literal {
                lexical: "say \"hi\"\n".into(),
                lang: None,
                datatype: None
            }
        );
    }

    #[test]
    fn errors_are_positioned() {
        let e = tokenize("?x @").unwrap_err();
        assert!(matches!(e, SparqlError::Parse { .. }));
        let e = tokenize("\"unterminated").unwrap_err();
        assert!(matches!(e, SparqlError::Parse { .. }));
        let e = tokenize("a & b").unwrap_err();
        assert!(matches!(e, SparqlError::Parse { .. }));
    }

    #[test]
    fn multibyte_input_never_stalls() {
        // Regression: the lead byte of a multi-byte char must not be
        // misclassified as a word start (infinite empty-word loop).
        assert!(tokenize("😀").is_err(), "emoji is not a token");
        let ks = kinds("café 世界");
        assert_eq!(ks[0], TokenKind::Word("café".into()));
        assert_eq!(ks[1], TokenKind::Word("世界".into()));
    }

    #[test]
    fn dollar_variables() {
        let ks = kinds("$x");
        assert_eq!(ks[0], TokenKind::Var("x".into()));
    }
}
