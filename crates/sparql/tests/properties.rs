//! Property-based tests for the SPARQL engine: lexer robustness, parser
//! determinism, value ordering, and executor invariants.

use alex_rdf::Dataset;
use alex_sparql::{parse, DatasetEndpoint, FederatedEngine, SameAsLinks, Value};
use proptest::prelude::*;

proptest! {
    /// The lexer and parser must never panic on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input);
    }

    /// Parsing a well-formed query is deterministic.
    #[test]
    fn parsing_is_deterministic(
        var in "[a-z]{1,6}",
        iri in "[a-z]{1,8}",
        lit in "[a-zA-Z0-9 ]{0,12}",
        limit in 1usize..50,
    ) {
        let q = format!(
            "SELECT ?{var} WHERE {{ ?{var} <http://e/{iri}> \"{lit}\" }} LIMIT {limit}"
        );
        let a = parse(&q).expect("well-formed");
        let b = parse(&q).expect("well-formed");
        prop_assert_eq!(a, b);
    }

    /// Value ordering is a total order consistent with equality.
    #[test]
    fn value_ordering_is_total(
        a in "[a-z:/#0-9]{0,12}",
        b in "[a-z:/#0-9]{0,12}",
    ) {
        let va = Value::iri(a);
        let vb = Value::plain(b);
        // Antisymmetry between distinct kinds:
        prop_assert_ne!(va.cmp(&vb), std::cmp::Ordering::Equal);
        prop_assert_eq!(va.cmp(&vb), vb.cmp(&va).reverse());
        prop_assert_eq!(va.cmp(&va), std::cmp::Ordering::Equal);
    }

    /// LIMIT always bounds the result size; DISTINCT never yields duplicates.
    #[test]
    fn limit_and_distinct_hold(
        n_triples in 1usize..40,
        limit in 1usize..10,
    ) {
        let mut ds = Dataset::new("P");
        for i in 0..n_triples {
            ds.add_str(
                &format!("http://e/s{}", i % 7),
                "http://e/p",
                &format!("v{}", i % 5),
            );
        }
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));

        let q = parse(&format!(
            "SELECT DISTINCT ?o WHERE {{ ?s <http://e/p> ?o }} LIMIT {limit}"
        ))
        .expect("well-formed");
        let answers = engine.execute(&q).expect("evaluates");
        prop_assert!(answers.len() <= limit);
        let mut seen = std::collections::HashSet::new();
        for a in &answers {
            prop_assert!(seen.insert(a.bindings.clone()), "duplicate under DISTINCT");
        }
    }

    /// Every answer binding must come from the data (soundness of BGP
    /// matching): any bound ?o value appears as an object in the store.
    #[test]
    fn bgp_answers_are_sound(
        rows in proptest::collection::vec((0u32..6, 0u32..3, 0u32..6), 1..30)
    ) {
        let mut ds = Dataset::new("P");
        let mut objects = std::collections::HashSet::new();
        for (s, p, o) in &rows {
            let obj = format!("o{o}");
            ds.add_str(&format!("http://e/s{s}"), &format!("http://e/p{p}"), &obj);
            objects.insert(obj);
        }
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(ds)));
        let q = parse("SELECT ?s ?o WHERE { ?s <http://e/p0> ?o }").expect("ok");
        for a in engine.execute(&q).expect("evaluates") {
            let o = a.bindings.get("o").expect("projected");
            prop_assert!(objects.contains(o.lexical()));
        }
    }

    /// sameAs expansion only ever adds answers, never removes them, and
    /// every extra answer carries provenance.
    #[test]
    fn sameas_expansion_is_monotone(n_linked in 0usize..6) {
        let mut left = Dataset::new("L");
        let mut right = Dataset::new("R");
        let mut links = Vec::new();
        for i in 0..6 {
            left.add_str(&format!("http://l/{i}"), "http://l/flag", "yes");
            right.add_iri(&format!("http://r/doc{i}"), "http://r/about", &format!("http://r/{i}"));
            if i < n_linked {
                links.push((format!("http://l/{i}"), format!("http://r/{i}")));
            }
        }
        let q = parse(
            "SELECT ?doc WHERE { ?x <http://l/flag> \"yes\" . ?doc <http://r/about> ?x }",
        )
        .expect("ok");

        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(left.clone())));
        engine.add_endpoint(Box::new(DatasetEndpoint::new(right.clone())));
        let baseline = engine.execute(&q).expect("evaluates").len();
        engine.set_links(SameAsLinks::from_pairs(links));
        let answers = engine.execute(&q).expect("evaluates");
        prop_assert!(answers.len() >= baseline);
        prop_assert_eq!(answers.len(), n_linked);
        for a in &answers {
            prop_assert_eq!(a.links_used.len(), 1, "every bridged answer has provenance");
        }
    }
}
