//! Sharded, thread-safe LRU answer cache with anchor-indexed invalidation.
//!
//! `alex-cache` is a zero-dependency building block for the federated
//! executor: it maps canonicalized sub-query keys to immutable answer
//! batches and supports *exact* invalidation. Every entry is inserted
//! together with the set of IRIs ("anchors") whose `owl:sameAs`
//! neighbourhood the cached answers depend on; an inverted
//! anchor → entry index lets a link mutation on the pair `(l, r)`
//! evict precisely the entries anchored at `l` or `r` — never a full
//! flush, never a stale survivor.
//!
//! The cache is sharded by key hash: each shard holds its own LRU list
//! and anchor index behind its own mutex, so concurrent readers on
//! different shards never contend. Values are stored as [`Arc`]s, so a
//! hit is a pointer clone and entries stay immutable after insertion.
//! Capacity is bounded per shard (total capacity divided evenly);
//! insertion past capacity evicts the shard's least-recently-used
//! entry.
//!
//! Hit/miss/invalidation/eviction totals are tracked with relaxed
//! atomics and exposed via [`AnswerCache::stats`]; callers mirror them
//! into whatever telemetry registry they use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Sentinel slot index meaning "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// Counter snapshot returned by [`AnswerCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed because an anchor they depend on was mutated.
    pub invalidations: u64,
    /// Entries evicted by LRU capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// One cached entry plus its intrusive LRU links.
struct Slot<V> {
    key: String,
    value: Arc<V>,
    anchors: Vec<String>,
    prev: usize,
    next: usize,
}

/// One lock domain: key map, slot slab, LRU list, and anchor index.
struct Shard<V> {
    map: HashMap<String, usize>,
    slots: Vec<Option<Slot<V>>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    /// Inverted index: anchor IRI → slots whose answers depend on it.
    anchor_index: HashMap<String, HashSet<usize>>,
    capacity: usize,
}

impl<V> Shard<V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            anchor_index: HashMap::new(),
            capacity,
        }
    }

    /// Detach `idx` from the LRU list (it must currently be linked).
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = match &self.slots[idx] {
            Some(slot) => (slot.prev, slot.next),
            None => return,
        };
        match prev {
            NIL => self.head = next,
            p => {
                if let Some(s) = self.slots[p].as_mut() {
                    s.next = next;
                }
            }
        }
        match next {
            NIL => self.tail = prev,
            n => {
                if let Some(s) = self.slots[n].as_mut() {
                    s.prev = prev;
                }
            }
        }
    }

    /// Link `idx` at the head (most recently used end) of the LRU list.
    fn link_front(&mut self, idx: usize) {
        let old_head = self.head;
        if let Some(s) = self.slots[idx].as_mut() {
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = idx,
            h => {
                if let Some(s) = self.slots[h].as_mut() {
                    s.prev = idx;
                }
            }
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.link_front(idx);
    }

    /// Remove the slot entirely: LRU list, key map, anchor index, slab.
    fn remove_slot(&mut self, idx: usize) {
        self.unlink(idx);
        let Some(slot) = self.slots[idx].take() else {
            return;
        };
        self.map.remove(&slot.key);
        for anchor in &slot.anchors {
            if let Some(set) = self.anchor_index.get_mut(anchor) {
                set.remove(&idx);
                if set.is_empty() {
                    self.anchor_index.remove(anchor);
                }
            }
        }
        self.free.push(idx);
    }

    fn get(&mut self, key: &str) -> Option<Arc<V>> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        self.slots[idx].as_ref().map(|s| Arc::clone(&s.value))
    }

    /// Insert (or replace) `key`; returns how many entries LRU-evicted.
    fn insert(&mut self, key: &str, anchors: &[String], value: Arc<V>) -> usize {
        if let Some(&idx) = self.map.get(key) {
            // Replacement: drop the old entry so its anchor set cannot
            // linger, then fall through to a fresh insert.
            self.remove_slot(idx);
        }
        let mut evicted = 0;
        while self.map.len() >= self.capacity {
            let tail = self.tail;
            if tail == NIL {
                break;
            }
            self.remove_slot(tail);
            evicted += 1;
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[idx] = Some(Slot {
            key: key.to_string(),
            value,
            anchors: anchors.to_vec(),
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key.to_string(), idx);
        for anchor in anchors {
            self.anchor_index
                .entry(anchor.clone())
                .or_default()
                .insert(idx);
        }
        self.link_front(idx);
        evicted
    }

    /// Drop every entry anchored at `anchor`; returns the count dropped.
    fn invalidate_anchor(&mut self, anchor: &str) -> usize {
        let Some(set) = self.anchor_index.remove(anchor) else {
            return 0;
        };
        let mut indices: Vec<usize> = set.into_iter().collect();
        indices.sort_unstable();
        let dropped = indices.len();
        for idx in indices {
            self.remove_slot(idx);
        }
        dropped
    }

    fn clear(&mut self) -> usize {
        let dropped = self.map.len();
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.anchor_index.clear();
        self.head = NIL;
        self.tail = NIL;
        dropped
    }
}

/// Sharded, thread-safe LRU cache keyed by string fingerprints, with an
/// inverted anchor index for exact invalidation.
///
/// `V` is the answer-batch type; the cache stores `Arc<V>` so hits are
/// cheap and entries are immutable once inserted.
pub struct AnswerCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl<V> std::fmt::Debug for AnswerCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// FNV-1a over the key bytes: deterministic across runs and platforms,
/// so shard assignment (and therefore eviction order) is reproducible.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<V> AnswerCache<V> {
    /// Default shard count: enough to spread a few worker threads
    /// without splintering tiny capacities.
    const DEFAULT_SHARDS: usize = 8;

    /// Create a cache holding at most `capacity` entries total, with a
    /// default shard count. Capacity is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS)
    }

    /// Create a cache with an explicit shard count (clamped to ≥ 1).
    /// Total capacity is divided evenly; each shard gets at least 1.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let per_shard = capacity.div_ceil(shards);
        AnswerCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> MutexGuard<'_, Shard<V>> {
        let idx = (fnv1a(key) % self.shards.len() as u64) as usize;
        lock_unpoisoned(&self.shards[idx])
    }

    /// Total entry capacity across all shards (as configured).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, refreshing its LRU position on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        let found = self.shard(key).get(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert `value` under `key`, recording the anchors whose sameAs
    /// neighbourhood the value depends on. Returns the number of
    /// entries evicted by capacity pressure.
    pub fn insert(&self, key: &str, anchors: &[String], value: V) -> usize {
        let evicted = self.shard(key).insert(key, anchors, Arc::new(value));
        if evicted > 0 {
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        evicted
    }

    /// Drop every entry that depends on `anchor`. Returns the number of
    /// entries dropped (across all shards).
    pub fn invalidate_anchor(&self, anchor: &str) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += lock_unpoisoned(shard).invalidate_anchor(anchor);
        }
        if dropped > 0 {
            self.invalidations
                .fetch_add(dropped as u64, Ordering::Relaxed);
        }
        dropped
    }

    /// Drop every entry that depends on either side of a mutated sameAs
    /// pair. Entries anchored at both sides are only counted once.
    pub fn invalidate_pair(&self, left: &str, right: &str) -> usize {
        let mut dropped = self.invalidate_anchor(left);
        if left != right {
            dropped += self.invalidate_anchor(right);
        }
        dropped
    }

    /// Drop everything. Returns the number of entries dropped. Cleared
    /// entries are *not* counted as invalidations or evictions — this
    /// is the wholesale path (e.g. a link-set replacement), and the
    /// stats distinguish it by omission.
    pub fn clear(&self) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += lock_unpoisoned(shard).clear();
        }
        dropped
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s).map.len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the hit/miss/invalidation/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// Recover the guard even if a holder panicked: shard state is kept
/// structurally consistent before every unlock, so the data is usable.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchors(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn get_after_insert_returns_value() {
        let cache: AnswerCache<Vec<u32>> = AnswerCache::new(16);
        assert!(cache.get("k1").is_none());
        cache.insert("k1", &anchors(&["a"]), vec![1, 2, 3]);
        assert_eq!(cache.get("k1").as_deref(), Some(&vec![1, 2, 3]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn replacement_updates_value_and_anchor_sets() {
        let cache: AnswerCache<u32> = AnswerCache::with_shards(8, 1);
        cache.insert("k", &anchors(&["a"]), 1);
        cache.insert("k", &anchors(&["b"]), 2);
        assert_eq!(cache.get("k").as_deref(), Some(&2));
        // The old anchor no longer reaches the entry…
        assert_eq!(cache.invalidate_anchor("a"), 0);
        assert_eq!(cache.get("k").as_deref(), Some(&2));
        // …but the new one does.
        assert_eq!(cache.invalidate_anchor("b"), 1);
        assert!(cache.get("k").is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let cache: AnswerCache<u32> = AnswerCache::with_shards(2, 1);
        cache.insert("a", &[], 1);
        cache.insert("b", &[], 2);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.get("a").is_some());
        let evicted = cache.insert("c", &[], 3);
        assert_eq!(evicted, 1);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_cleans_anchor_index() {
        let cache: AnswerCache<u32> = AnswerCache::with_shards(1, 1);
        cache.insert("a", &anchors(&["x"]), 1);
        cache.insert("b", &anchors(&["x"]), 2); // evicts "a"
                                                // Invalidating "x" must only drop the live entry, not a ghost.
        assert_eq!(cache.invalidate_anchor("x"), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_pair_hits_both_sides_once() {
        let cache: AnswerCache<u32> = AnswerCache::new(16);
        cache.insert("l", &anchors(&["left"]), 1);
        cache.insert("r", &anchors(&["right"]), 2);
        cache.insert("both", &anchors(&["left", "right"]), 3);
        cache.insert("other", &anchors(&["elsewhere"]), 4);
        assert_eq!(cache.invalidate_pair("left", "right"), 3);
        assert!(cache.get("other").is_some());
        assert_eq!(cache.stats().invalidations, 3);
    }

    #[test]
    fn invalidate_pair_with_identical_sides_counts_once() {
        let cache: AnswerCache<u32> = AnswerCache::new(16);
        cache.insert("k", &anchors(&["same"]), 1);
        assert_eq!(cache.invalidate_pair("same", "same"), 1);
    }

    #[test]
    fn clear_drops_everything_without_counting_invalidations() {
        let cache: AnswerCache<u32> = AnswerCache::new(16);
        cache.insert("a", &anchors(&["x"]), 1);
        cache.insert("b", &anchors(&["y"]), 2);
        assert_eq!(cache.clear(), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 0);
        // Anchor index is gone too: nothing left to invalidate.
        assert_eq!(cache.invalidate_anchor("x"), 0);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let cache: AnswerCache<u32> = AnswerCache::with_shards(2, 1);
        for i in 0..100 {
            cache.insert(&format!("k{i}"), &anchors(&["a"]), i);
        }
        let shard = lock_unpoisoned(&cache.shards[0]);
        assert!(
            shard.slots.len() <= 3,
            "slab should recycle slots, got {}",
            shard.slots.len()
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache: AnswerCache<u32> = AnswerCache::new(0);
        cache.insert("k", &[], 1);
        assert!(cache.get("k").is_some());
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        let cache: Arc<AnswerCache<u64>> = Arc::new(AnswerCache::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let key = format!("k{}", (t * 200 + i) % 97);
                    cache.insert(&key, &[format!("anchor{}", i % 7)], t * 1000 + i);
                    cache.get(&key);
                    if i % 13 == 0 {
                        cache.invalidate_anchor(&format!("anchor{}", i % 7));
                    }
                }
            }));
        }
        for h in handles {
            h.join().ok();
        }
        assert!(cache.len() <= 64);
        let stats = cache.stats();
        assert!(stats.hits + stats.misses >= 800);
    }

    #[test]
    fn shard_selection_is_deterministic() {
        // FNV-1a must not vary across runs: same key, same shard, same
        // eviction behaviour — reproducibility depends on it.
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
        assert_ne!(fnv1a("abc"), fnv1a("abd"));
    }
}
