//! # alex-linking — automatic linking substrate
//!
//! ALEX starts from candidate links "obtained using any automatic linking
//! algorithm" (§1); the paper uses PARIS \[21\]. This crate provides:
//!
//! * [`blocking`] — token blocking for sub-quadratic candidate generation;
//! * [`Paris`] — a simplified but faithful PARIS re-implementation:
//!   functionality-weighted noisy-or evidence with iterative relation
//!   alignment and holistic IRI-object propagation;
//! * [`LabelBaseline`] — a naive best-label-similarity linker, the strawman
//!   PARIS is compared against in the linking bench;
//! * [`LinkSet`] / [`LinkerOutput`] — scored links plus the entity indexes
//!   that give the dense ids meaning.
//!
//! ```
//! use alex_rdf::Dataset;
//! use alex_linking::Paris;
//!
//! let mut left = Dataset::new("L");
//! let mut right = Dataset::new("R");
//! for (i, name) in ["LeBron James", "Michael Jordan", "Tim Duncan"].iter().enumerate() {
//!     left.add_str(&format!("http://l/{i}"), "http://l/label", name);
//!     right.add_str(&format!("http://r/{i}"), "http://r/name", name);
//! }
//! let out = Paris::new().link(&left, &right);
//! assert_eq!(out.links.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod blocking;
pub mod candidates;
pub mod paris;

pub use baseline::LabelBaseline;
pub use blocking::{candidate_pairs, BlockingConfig};
pub use candidates::{LinkSet, LinkerOutput, ScoredLink};
pub use paris::{AlignmentConfig, Functionality, Paris, ParisConfig};
