//! A naive label-matching baseline linker.
//!
//! Links two entities when their best literal-value similarity exceeds a
//! threshold, with greedy one-to-one assignment. This is the "syntax only"
//! strawman that PARIS (and ALEX on top of it) improves upon; the linking
//! bench compares the two.

use alex_rdf::{Dataset, Term};
use alex_sim::term_similarity;

use crate::blocking::{candidate_pairs, BlockingConfig};
use crate::candidates::{LinkSet, LinkerOutput, ScoredLink};

/// Configuration for the label baseline.
#[derive(Debug, Clone)]
pub struct LabelBaseline {
    /// Minimum best-value similarity to emit a link.
    pub threshold: f64,
    /// Blocking configuration for candidate generation.
    pub blocking: BlockingConfig,
}

impl Default for LabelBaseline {
    fn default() -> Self {
        LabelBaseline {
            threshold: 0.85,
            blocking: BlockingConfig::default(),
        }
    }
}

impl LabelBaseline {
    /// Link `left` and `right` by best literal-value similarity.
    pub fn link(&self, left: &Dataset, right: &Dataset) -> LinkerOutput {
        let left_index = left.entity_index();
        let right_index = right.entity_index();
        let pairs = candidate_pairs(left, &left_index, right, &right_index, &self.blocking);

        let mut links = LinkSet::new();
        for (lid, rid) in pairs {
            let l_term = left_index.term(lid);
            let r_term = right_index.term(rid);
            let score = best_literal_similarity(left, l_term, right, r_term);
            if score >= self.threshold {
                links.push(ScoredLink {
                    left: lid,
                    right: rid,
                    score,
                });
            }
        }
        LinkerOutput {
            links: links.one_to_one(),
            left_index,
            right_index,
        }
    }
}

/// The best similarity between any literal value of `l` and any literal
/// value of `r`.
pub fn best_literal_similarity(left: &Dataset, l: Term, right: &Dataset, r: Term) -> f64 {
    let mut best: f64 = 0.0;
    for lt in left.graph().matching(Some(l), None, None) {
        if !lt.object.is_literal() {
            continue;
        }
        for rt in right.graph().matching(Some(r), None, None) {
            if !rt.object.is_literal() {
                continue;
            }
            best = best.max(term_similarity(left, lt.object, right, rt.object));
            if best >= 1.0 {
                return 1.0;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datasets() -> (Dataset, Dataset) {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/o/label", "LeBron James");
        left.add_str("http://l/b", "http://l/o/label", "Michael Jordan");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/p/name", "James, LeBron");
        right.add_str("http://r/2", "http://r/p/name", "Jordan, Michael");
        right.add_str("http://r/3", "http://r/p/name", "Kobe Bryant");
        (left, right)
    }

    #[test]
    fn links_matching_names() {
        let (left, right) = datasets();
        let out = LabelBaseline::default().link(&left, &right);
        assert_eq!(out.links.len(), 2);
        let pairs = out.links.to_term_pairs(&out.left_index, &out.right_index);
        let as_strings: Vec<(String, String)> = pairs
            .iter()
            .map(|&(l, r)| (left.resolve(l).to_string(), right.resolve(r).to_string()))
            .collect();
        assert!(as_strings.contains(&("http://l/a".into(), "http://r/1".into())));
        assert!(as_strings.contains(&("http://l/b".into(), "http://r/2".into())));
    }

    #[test]
    fn threshold_excludes_weak_matches() {
        let (left, right) = datasets();
        let strict = LabelBaseline {
            threshold: 1.01, // impossible
            ..LabelBaseline::default()
        };
        let out = strict.link(&left, &right);
        assert!(out.links.is_empty());
    }

    #[test]
    fn best_literal_similarity_maximizes() {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/p1", "zzz");
        left.add_str("http://l/a", "http://l/p2", "LeBron James");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/q", "lebron james");
        let (li, ri) = (left.entity_index(), right.entity_index());
        let s = best_literal_similarity(&left, li.term(0), &right, ri.term(0));
        assert_eq!(s, 1.0);
    }

    #[test]
    fn one_to_one_enforced() {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/p", "Duplicate Name");
        left.add_str("http://l/b", "http://l/p", "Duplicate Name");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/q", "Duplicate Name");
        let out = LabelBaseline::default().link(&left, &right);
        assert_eq!(out.links.len(), 1);
    }
}
