//! A naive label-matching baseline linker.
//!
//! Links two entities when their best literal-value similarity exceeds a
//! threshold, with greedy one-to-one assignment. This is the "syntax only"
//! strawman that PARIS (and ALEX on top of it) improves upon; the linking
//! bench compares the two.

use alex_rdf::{Dataset, EntityIndex, Term};
use alex_sim::{
    prepared_similarity, term_similarity, typed_value, BatchScorer, PreparedCorpus, PreparedText,
    PreparedValue, TokenInterner, TypedValue,
};

use crate::blocking::{candidate_pairs, BlockingConfig};
use crate::candidates::{LinkSet, LinkerOutput, ScoredLink};

/// Configuration for the label baseline.
#[derive(Debug, Clone)]
pub struct LabelBaseline {
    /// Minimum best-value similarity to emit a link.
    pub threshold: f64,
    /// Blocking configuration for candidate generation.
    pub blocking: BlockingConfig,
}

impl Default for LabelBaseline {
    fn default() -> Self {
        LabelBaseline {
            threshold: 0.85,
            blocking: BlockingConfig::default(),
        }
    }
}

impl LabelBaseline {
    /// Link `left` and `right` by best literal-value similarity.
    ///
    /// Each left entity's text literals become probes — one precompiled
    /// [`BatchScorer`] apiece — swept over each right entity's text
    /// literals packed in a [`PreparedCorpus`]; remaining literal pairs go
    /// through [`prepared_similarity`]. Scores are byte-identical to the
    /// naive per-pair [`best_literal_similarity`] oracle (tested below):
    /// the batch kernel equals `string_similarity`, and `max` is
    /// order-independent.
    pub fn link(&self, left: &Dataset, right: &Dataset) -> LinkerOutput {
        let left_index = left.entity_index();
        let right_index = right.entity_index();
        let pairs = candidate_pairs(left, &left_index, right, &right_index, &self.blocking);

        let mut interner = TokenInterner::new();
        let probes: Vec<ProbeEntity> = (0..left_index.len() as u32)
            .map(|id| ProbeEntity::build(left, &left_index, id, &mut interner))
            .collect();
        let cands: Vec<CandidateEntity> = (0..right_index.len() as u32)
            .map(|id| CandidateEntity::build(right, &right_index, id, &mut interner))
            .collect();

        let mut links = LinkSet::new();
        for (lid, rid) in pairs {
            let score = probes[lid as usize].best_against(&cands[rid as usize]);
            if score >= self.threshold {
                links.push(ScoredLink {
                    left: lid,
                    right: rid,
                    score,
                });
            }
        }
        LinkerOutput {
            links: links.one_to_one(),
            left_index,
            right_index,
        }
    }
}

/// A left entity's literal values, prepared once: a compiled batch scorer
/// per text literal, plus every literal's [`PreparedValue`] for the mixed
/// and non-text combinations.
struct ProbeEntity {
    values: Vec<PreparedValue>,
    /// One scorer per `Text` entry of `values`, in the same order.
    scorers: Vec<BatchScorer>,
}

/// A right entity's literal values, prepared once: its text literals
/// packed in an arena corpus for batch sweeps, plus every literal's
/// [`PreparedValue`].
struct CandidateEntity {
    values: Vec<PreparedValue>,
    text_corpus: PreparedCorpus,
}

fn literal_values(
    ds: &Dataset,
    idx: &EntityIndex,
    id: u32,
    interner: &mut TokenInterner,
) -> Vec<PreparedValue> {
    ds.graph()
        .matching(Some(idx.term(id)), None, None)
        .filter(|t| t.object.is_literal())
        .map(|t| PreparedValue::prepare(typed_value(ds, t.object), interner))
        .collect()
}

fn is_text(v: &PreparedValue) -> bool {
    matches!(v.value(), TypedValue::Text(_))
}

impl ProbeEntity {
    fn build(
        ds: &Dataset,
        idx: &EntityIndex,
        id: u32,
        interner: &mut TokenInterner,
    ) -> ProbeEntity {
        let values = literal_values(ds, idx, id, interner);
        let scorers = values
            .iter()
            .filter(|v| is_text(v))
            .map(|v| {
                let text = v.text().cloned().unwrap_or_else(PreparedText::default);
                BatchScorer::from_prepared(text)
            })
            .collect();
        ProbeEntity { values, scorers }
    }

    /// The best similarity between any literal of this entity and any
    /// literal of `cand` — equal to [`best_literal_similarity`] on the raw
    /// terms, including its ≥ 1.0 short-circuit.
    fn best_against(&self, cand: &CandidateEntity) -> f64 {
        let mut best = 0.0f64;
        // Text × text: batch kernel sweeps over the packed corpus.
        for scorer in &self.scorers {
            best = best.max(scorer.best_in(&cand.text_corpus));
            if best >= 1.0 {
                return 1.0;
            }
        }
        // Every combination with a non-text side: generic prepared path.
        for lv in &self.values {
            for rv in &cand.values {
                if is_text(lv) && is_text(rv) {
                    continue;
                }
                best = best.max(prepared_similarity(lv, rv));
                if best >= 1.0 {
                    return 1.0;
                }
            }
        }
        best
    }
}

impl CandidateEntity {
    fn build(
        ds: &Dataset,
        idx: &EntityIndex,
        id: u32,
        interner: &mut TokenInterner,
    ) -> CandidateEntity {
        let values = literal_values(ds, idx, id, interner);
        let mut text_corpus = PreparedCorpus::new();
        for v in values.iter().filter(|v| is_text(v)) {
            if let Some(text) = v.text() {
                text_corpus.push_prepared(text);
            }
        }
        CandidateEntity {
            values,
            text_corpus,
        }
    }
}

/// The best similarity between any literal value of `l` and any literal
/// value of `r` — the naive per-pair formulation, kept as the oracle the
/// batched path in [`LabelBaseline::link`] is tested against.
pub fn best_literal_similarity(left: &Dataset, l: Term, right: &Dataset, r: Term) -> f64 {
    let mut best: f64 = 0.0;
    for lt in left.graph().matching(Some(l), None, None) {
        if !lt.object.is_literal() {
            continue;
        }
        for rt in right.graph().matching(Some(r), None, None) {
            if !rt.object.is_literal() {
                continue;
            }
            best = best.max(term_similarity(left, lt.object, right, rt.object));
            if best >= 1.0 {
                return 1.0;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datasets() -> (Dataset, Dataset) {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/o/label", "LeBron James");
        left.add_str("http://l/b", "http://l/o/label", "Michael Jordan");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/p/name", "James, LeBron");
        right.add_str("http://r/2", "http://r/p/name", "Jordan, Michael");
        right.add_str("http://r/3", "http://r/p/name", "Kobe Bryant");
        (left, right)
    }

    #[test]
    fn links_matching_names() {
        let (left, right) = datasets();
        let out = LabelBaseline::default().link(&left, &right);
        assert_eq!(out.links.len(), 2);
        let pairs = out.links.to_term_pairs(&out.left_index, &out.right_index);
        let as_strings: Vec<(String, String)> = pairs
            .iter()
            .map(|&(l, r)| (left.resolve(l).to_string(), right.resolve(r).to_string()))
            .collect();
        assert!(as_strings.contains(&("http://l/a".into(), "http://r/1".into())));
        assert!(as_strings.contains(&("http://l/b".into(), "http://r/2".into())));
    }

    #[test]
    fn threshold_excludes_weak_matches() {
        let (left, right) = datasets();
        let strict = LabelBaseline {
            threshold: 1.01, // impossible
            ..LabelBaseline::default()
        };
        let out = strict.link(&left, &right);
        assert!(out.links.is_empty());
    }

    #[test]
    fn best_literal_similarity_maximizes() {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/p1", "zzz");
        left.add_str("http://l/a", "http://l/p2", "LeBron James");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/q", "lebron james");
        let (li, ri) = (left.entity_index(), right.entity_index());
        let s = best_literal_similarity(&left, li.term(0), &right, ri.term(0));
        assert_eq!(s, 1.0);
    }

    #[test]
    fn batched_scoring_matches_naive_oracle() {
        // Mixed-kind literals: text, numeric-looking text, typed years,
        // plus multi-valued entities — every dispatch arm of the batched
        // path must agree bitwise with the naive per-pair oracle.
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/label", "LeBron James");
        left.add_str("http://l/a", "http://l/born", "1984");
        left.add_str("http://l/b", "http://l/label", "Café München");
        left.add_str("http://l/b", "http://l/alt", "cafe muenchen");
        left.add_str("http://l/c", "http://l/num", "42");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/name", "James, LeBron");
        right.add_str("http://r/1", "http://r/year", "1984");
        right.add_str("http://r/2", "http://r/name", "Cafe Munchen");
        right.add_str("http://r/3", "http://r/name", "42.0");
        let (li, ri) = (left.entity_index(), right.entity_index());

        let mut interner = TokenInterner::new();
        let probes: Vec<ProbeEntity> = (0..li.len() as u32)
            .map(|id| ProbeEntity::build(&left, &li, id, &mut interner))
            .collect();
        let cands: Vec<CandidateEntity> = (0..ri.len() as u32)
            .map(|id| CandidateEntity::build(&right, &ri, id, &mut interner))
            .collect();
        for l in 0..li.len() as u32 {
            for r in 0..ri.len() as u32 {
                let batched = probes[l as usize].best_against(&cands[r as usize]);
                let naive = best_literal_similarity(&left, li.term(l), &right, ri.term(r));
                assert_eq!(batched.to_bits(), naive.to_bits(), "pair ({l}, {r})");
            }
        }
    }

    #[test]
    fn one_to_one_enforced() {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/p", "Duplicate Name");
        left.add_str("http://l/b", "http://l/p", "Duplicate Name");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/q", "Duplicate Name");
        let out = LabelBaseline::default().link(&left, &right);
        assert_eq!(out.links.len(), 1);
    }
}
