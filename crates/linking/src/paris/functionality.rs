//! Relation functionality, PARIS's core statistical signal.
//!
//! The (inverse) functionality of a relation measures how identifying its
//! values are. PARIS (Suchanek et al., VLDB 2011) defines:
//!
//! * functionality  `fun(r)  = #distinct subjects(r) / #triples(r)`
//! * inverse funct. `ifun(r) = #distinct objects(r) / #triples(r)`
//!
//! Sharing the value of a highly inverse-functional relation (a name, a
//! code) is strong evidence of equality; sharing the value of a relation
//! whose objects repeat massively (`rdf:type`) is weak evidence. This is
//! what lets PARIS — and our reproduction — discount non-distinctive
//! attributes without supervision.

use std::collections::{HashMap, HashSet};

use alex_rdf::{Dataset, Sym, Term};

/// Per-predicate functionality statistics for one data set.
#[derive(Debug, Clone, Default)]
pub struct Functionality {
    fun: HashMap<Sym, f64>,
    ifun: HashMap<Sym, f64>,
}

impl Functionality {
    /// Compute statistics for every predicate of `ds`.
    ///
    /// Counting fans out over the worker pool: chunk-local accumulators
    /// (triple counts + subject/object sets per predicate) merge by
    /// integer addition and set union — both order-independent — so the
    /// resulting statistics are identical at any thread count.
    pub fn compute(ds: &Dataset) -> Functionality {
        #[derive(Default)]
        struct Acc {
            triples: usize,
            subjects: HashSet<Term>,
            objects: HashSet<Term>,
        }
        let triples: Vec<(Sym, Term, Term)> = ds
            .graph()
            .iter()
            .map(|t| {
                let p = t.predicate.as_iri().expect("predicates are IRIs");
                (p, t.subject, t.object)
            })
            .collect();
        // Counting a triple costs well under a microsecond, so without a
        // floor the pool splits small datasets into ~22µs chunks that cost
        // more to dispatch than to run (0.15 parallel efficiency in the
        // PR-7 attribution). The 4096-item floor keeps every chunk's work
        // comfortably above dispatch overhead, and small inputs collapse
        // to a single inline chunk with no spawn at all.
        let pool = alex_parallel::Pool::new("paris_functionality").with_min_chunk(4096);
        let acc: HashMap<Sym, Acc> = pool.reduce(
            &triples,
            HashMap::new,
            |acc, &(p, s, o)| {
                let e: &mut Acc = acc.entry(p).or_default();
                e.triples += 1;
                e.subjects.insert(s);
                e.objects.insert(o);
            },
            |acc, other| {
                for (p, partial) in other {
                    let e: &mut Acc = acc.entry(p).or_default();
                    e.triples += partial.triples;
                    e.subjects.extend(partial.subjects);
                    e.objects.extend(partial.objects);
                }
            },
        );
        let mut fun = HashMap::with_capacity(acc.len());
        let mut ifun = HashMap::with_capacity(acc.len());
        for (p, e) in acc {
            let n = e.triples as f64;
            fun.insert(p, e.subjects.len() as f64 / n);
            ifun.insert(p, e.objects.len() as f64 / n);
        }
        Functionality { fun, ifun }
    }

    /// `fun(r)`: 1.0 when every subject has exactly one value.
    pub fn fun(&self, p: Sym) -> f64 {
        self.fun.get(&p).copied().unwrap_or(0.0)
    }

    /// `ifun(r)`: 1.0 when every value identifies its subject uniquely.
    pub fn ifun(&self, p: Sym) -> f64 {
        self.ifun.get(&p).copied().unwrap_or(0.0)
    }

    /// Number of predicates with statistics.
    pub fn len(&self) -> usize {
        self.fun.len()
    }

    /// Whether no predicate was seen.
    pub fn is_empty(&self) -> bool {
        self.fun.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_values_have_ifun_one() {
        let mut ds = Dataset::new("t");
        ds.add_str("http://e/a", "http://e/name", "Alpha");
        ds.add_str("http://e/b", "http://e/name", "Beta");
        ds.add_str("http://e/c", "http://e/name", "Gamma");
        let f = Functionality::compute(&ds);
        let name = ds.interner().get("http://e/name").unwrap();
        assert_eq!(f.ifun(name), 1.0);
        assert_eq!(f.fun(name), 1.0);
    }

    #[test]
    fn repeated_values_lower_ifun() {
        let mut ds = Dataset::new("t");
        for i in 0..10 {
            ds.add_str(&format!("http://e/{i}"), "http://e/type", "Thing");
        }
        let f = Functionality::compute(&ds);
        let ty = ds.interner().get("http://e/type").unwrap();
        assert!((f.ifun(ty) - 0.1).abs() < 1e-12);
        assert_eq!(f.fun(ty), 1.0);
    }

    #[test]
    fn multi_valued_predicates_lower_fun() {
        let mut ds = Dataset::new("t");
        ds.add_str("http://e/a", "http://e/team", "Heat");
        ds.add_str("http://e/a", "http://e/team", "Cavaliers");
        let f = Functionality::compute(&ds);
        let team = ds.interner().get("http://e/team").unwrap();
        assert!((f.fun(team) - 0.5).abs() < 1e-12);
        assert_eq!(f.ifun(team), 1.0);
    }

    #[test]
    fn unknown_predicate_is_zero() {
        let ds = Dataset::new("t");
        let f = Functionality::compute(&ds);
        assert!(f.is_empty());
        assert_eq!(f.fun(alex_rdf::Sym::from_index(99)), 0.0);
        assert_eq!(f.ifun(alex_rdf::Sym::from_index(99)), 0.0);
    }

    #[test]
    fn name_beats_type_as_evidence() {
        // The statistical heart of PARIS: names are better evidence than types.
        let mut ds = Dataset::new("t");
        for i in 0..20 {
            ds.add_str(&format!("http://e/{i}"), "http://e/name", &format!("N{i}"));
            ds.add_str(&format!("http://e/{i}"), "http://e/type", "person");
        }
        let f = Functionality::compute(&ds);
        let name = ds.interner().get("http://e/name").unwrap();
        let ty = ds.interner().get("http://e/type").unwrap();
        assert!(f.ifun(name) > 10.0 * f.ifun(ty));
    }
}
