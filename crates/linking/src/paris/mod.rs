//! The PARIS-like automatic linker.
//!
//! The paper uses PARIS \[21\] to generate initial candidate links because it
//! is fully automatic, domain-independent, and produced the best link
//! quality among contemporary tools. This module is a simplified but
//! faithful re-implementation: token blocking, functionality-weighted
//! noisy-or evidence combination, iterative relation alignment, and a final
//! score threshold with one-to-one assignment (the paper keeps PARIS links
//! scoring above 0.95).

pub mod alignment;
pub mod functionality;

pub use alignment::AlignmentConfig;
pub use functionality::Functionality;

use alex_rdf::Dataset;

use crate::blocking::{candidate_pairs, BlockingConfig};
use crate::candidates::LinkerOutput;

/// Configuration for the PARIS-like linker.
#[derive(Debug, Clone)]
pub struct ParisConfig {
    /// Blocking configuration for candidate generation.
    pub blocking: BlockingConfig,
    /// Alignment iteration tunables.
    pub alignment: AlignmentConfig,
    /// Final score threshold (the paper's experiments use 0.95 on PARIS's
    /// own scale; our noisy-or scale peaks lower, so 0.80 plays the same
    /// "keep only confident links" role).
    pub output_threshold: f64,
    /// Whether to enforce one link per entity (greedy by score).
    pub one_to_one: bool,
}

impl Default for ParisConfig {
    fn default() -> Self {
        ParisConfig {
            blocking: BlockingConfig::default(),
            alignment: AlignmentConfig::default(),
            output_threshold: 0.80,
            one_to_one: true,
        }
    }
}

/// The PARIS-like linker.
#[derive(Debug, Clone, Default)]
pub struct Paris {
    /// Configuration.
    pub config: ParisConfig,
}

impl Paris {
    /// A linker with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A linker with a custom configuration.
    pub fn with_config(config: ParisConfig) -> Self {
        Paris { config }
    }

    /// Link two data sets, producing scored candidate links.
    pub fn link(&self, left: &Dataset, right: &Dataset) -> LinkerOutput {
        let left_index = left.entity_index();
        let right_index = right.entity_index();
        let pairs = candidate_pairs(
            left,
            &left_index,
            right,
            &right_index,
            &self.config.blocking,
        );
        let raw = alignment::align(
            left,
            &left_index,
            right,
            &right_index,
            &pairs,
            &self.config.alignment,
        );
        let mut links = raw.threshold(self.config.output_threshold);
        if self.config.one_to_one {
            links = links.one_to_one();
        } else {
            links.sort_by_score();
        }
        LinkerOutput {
            links,
            left_index,
            right_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_obvious_duplicates() {
        let mut left = Dataset::new("L");
        let mut right = Dataset::new("R");
        for (i, name) in ["LeBron James", "Michael Jordan", "Tim Duncan"]
            .iter()
            .enumerate()
        {
            left.add_str(&format!("http://l/{i}"), "http://l/label", name);
            left.add_str(&format!("http://l/{i}"), "http://l/type", "person");
            right.add_str(&format!("http://r/{i}"), "http://r/name", name);
            right.add_str(&format!("http://r/{i}"), "http://r/class", "person");
        }
        let out = Paris::new().link(&left, &right);
        assert_eq!(out.links.len(), 3);
        for pair in out.term_pairs() {
            let l = left.resolve(pair.0);
            let r = right.resolve(pair.1);
            assert_eq!(
                l.rsplit('/').next().unwrap(),
                r.rsplit('/').next().unwrap(),
                "mismatched {l} ↔ {r}"
            );
        }
    }

    #[test]
    fn empty_datasets_link_to_nothing() {
        let left = Dataset::new("L");
        let right = Dataset::new("R");
        let out = Paris::new().link(&left, &right);
        assert!(out.links.is_empty());
    }

    #[test]
    fn threshold_controls_output_size() {
        let mut left = Dataset::new("L");
        left.add_str("http://l/0", "http://l/label", "Somewhat Similar Name");
        let mut right = Dataset::new("R");
        right.add_str("http://r/0", "http://r/name", "Somewhat Similar Nom");
        let strict = Paris::with_config(ParisConfig {
            output_threshold: 0.999,
            ..ParisConfig::default()
        });
        let lenient = Paris::with_config(ParisConfig {
            output_threshold: 0.1,
            ..ParisConfig::default()
        });
        assert!(strict.link(&left, &right).links.len() <= lenient.link(&left, &right).links.len());
    }
}
