//! The iterative probabilistic alignment at the heart of the PARIS-like
//! linker.
//!
//! Simplified from Suchanek et al. (PVLDB 2011) but preserving its three
//! mutually recursive estimates:
//!
//! 1. **Entity equivalence** `P(x ≡ y)` — combined by a noisy-or over shared
//!    attribute evidence, each piece weighted by inverse functionality and
//!    the current relation alignment;
//! 2. **Relation alignment** `align(r, r')` — the probability that values of
//!    `r` and `r'` agree on currently-matched entity pairs;
//! 3. **Value equivalence** — literal similarity for literals, and for
//!    IRI-valued attributes the current entity-equivalence estimate
//!    (so matched teams reinforce player matches).
//!
//! Iterating the three to a fixed point is what makes PARIS holistic.
//!
//! ## Hot-path layout
//!
//! The inner loop compares every attribute of `x` against every attribute
//! of `y` for every candidate pair, every pass. Three structures keep that
//! loop allocation-free:
//!
//! * [`AttrArena`] — per-entity attribute lists packed into one flat
//!   vector with offsets; each distinct object term's [`PreparedValue`]
//!   (typed value + normalized/tokenized/interned text) is computed
//!   **once** per data set, and IRI objects carry their pre-resolved
//!   entity id.
//! * [`ScoreTable`] — the previous pass's equivalence estimates in a dense
//!   pair-indexed `Vec<f64>` (0.0 = no evidence), with the pair→index map
//!   built once; the hot path does one hash probe instead of building and
//!   cloning a `HashMap` per pass.
//! * A **value-similarity memo** keyed by `(left term, right term)`.
//!   Memoized values are pure function results — `prepared_similarity`
//!   depends only on the two terms — so *what* the memo contains can never
//!   change a score, only how fast it is produced. Workers fill per-chunk
//!   shards that are merged into the global memo in chunk order after each
//!   pass; any insertion order yields the same map contents because every
//!   shard computes identical values for identical keys. Hit/miss totals
//!   land in `simmemo_hits_total` / `simmemo_misses_total`.
//!
//! Every pass retains snapshot semantics: each pair scores against the
//! estimates from the *previous* pass only, so per-pair scoring fans out
//! over the pool with an ordered merge and the result is byte-identical at
//! any thread count.

use std::collections::HashMap;

use alex_rdf::{Dataset, EntityIndex, Sym, Term};
use alex_sim::{prepared_similarity, typed_value, PreparedValue, TokenInterner};
use alex_telemetry::{counter, emit, span, Event};

use super::functionality::Functionality;
use crate::candidates::{LinkSet, ScoredLink};

/// Tunables for the alignment iteration.
#[derive(Debug, Clone, Copy)]
pub struct AlignmentConfig {
    /// Number of refinement iterations after the bootstrap pass.
    pub iterations: usize,
    /// Value-similarity floor: evidence below this contributes nothing.
    pub sim_threshold: f64,
    /// Entity pairs above this score count as "matched" when estimating
    /// relation alignment.
    pub match_threshold: f64,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        AlignmentConfig {
            iterations: 2,
            sim_threshold: 0.6,
            match_threshold: 0.5,
        }
    }
}

/// One packed attribute: predicate, the raw object term (the memo key),
/// the object's entity id when it is an indexed IRI, and the index of its
/// prepared value in the arena's value table.
struct PackedAttr {
    pred: Sym,
    term: Term,
    /// Pre-resolved `idx.id(term)` for IRI objects — saves a hash probe
    /// per comparison in the hot loop.
    entity: Option<u32>,
    /// Index into [`AttrArena::values`].
    value: u32,
}

/// Arena-packed per-entity attribute lists for one data set.
///
/// `attrs` holds every (entity, predicate, object) occurrence back to
/// back, grouped by entity id with `offsets` delimiting each group (same
/// iteration order as the triple store, so noisy-or factor order — and
/// therefore the floating-point product — is unchanged from the unpacked
/// representation). `values` holds one [`PreparedValue`] per *distinct*
/// object term: literals are typed, normalized, and tokenized exactly
/// once per data set instead of once per comparison.
struct AttrArena {
    attrs: Vec<PackedAttr>,
    /// `attrs[offsets[id] .. offsets[id + 1]]` are entity `id`'s attributes.
    offsets: Vec<u32>,
    values: Vec<PreparedValue>,
}

impl AttrArena {
    fn build(ds: &Dataset, idx: &EntityIndex, interner: &mut TokenInterner) -> AttrArena {
        let mut attrs = Vec::new();
        let mut offsets = Vec::with_capacity(idx.len() + 1);
        offsets.push(0u32);
        let mut values: Vec<PreparedValue> = Vec::new();
        let mut value_of: HashMap<Term, u32> = HashMap::new();
        for id in 0..idx.len() as u32 {
            let entity = idx.term(id);
            for t in ds.graph().matching(Some(entity), None, None) {
                let pred = t.predicate.as_iri().expect("IRI predicate");
                let term = t.object;
                let value = *value_of.entry(term).or_insert_with(|| {
                    let v = u32::try_from(values.len()).expect("value table fits u32");
                    values.push(PreparedValue::prepare(typed_value(ds, term), interner));
                    v
                });
                let entity_ref = if term.is_iri() { idx.id(term) } else { None };
                attrs.push(PackedAttr {
                    pred,
                    term,
                    entity: entity_ref,
                    value,
                });
            }
            offsets.push(u32::try_from(attrs.len()).expect("arena fits u32"));
        }
        AttrArena {
            attrs,
            offsets,
            values,
        }
    }

    fn attrs(&self, id: u32) -> &[PackedAttr] {
        let lo = self.offsets[id as usize] as usize;
        let hi = self.offsets[id as usize + 1] as usize;
        &self.attrs[lo..hi]
    }

    fn value(&self, a: &PackedAttr) -> &PreparedValue {
        &self.values[a.value as usize]
    }
}

/// The previous pass's equivalence estimates, dense over the candidate
/// pair list: `scores[i]` belongs to `pairs[i]`, 0.0 meaning "no
/// evidence" (the sparse map never stored non-positive scores, and
/// `sim.max(0.0)` is the identity, so the dense default is equivalent).
struct ScoreTable {
    /// Pair → index into `scores`; built once, reused every pass.
    index: HashMap<(u32, u32), u32>,
    scores: Vec<f64>,
}

impl ScoreTable {
    fn new(pairs: &[(u32, u32)]) -> ScoreTable {
        let index = pairs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, u32::try_from(i).expect("pair count fits u32")))
            .collect();
        ScoreTable {
            index,
            scores: vec![0.0; pairs.len()],
        }
    }

    #[inline]
    fn get(&self, l: u32, r: u32) -> f64 {
        match self.index.get(&(l, r)) {
            Some(&i) => self.scores[i as usize],
            None => 0.0,
        }
    }

    fn positive(&self) -> usize {
        self.scores.iter().filter(|&&s| s > 0.0).count()
    }
}

/// Memoized value similarities keyed by `(left term, right term)`.
///
/// Values are pure function results of the key, so the map's contents are
/// independent of which worker inserted them — determinism needs no
/// coordination, only the chunk-ordered merge below for reproducible
/// *capacity* behaviour.
type SimMemo = HashMap<(Term, Term), f64>;

/// Per-chunk output of one scoring pass: the chunk's scores in input
/// order, its freshly computed memo entries, and memo traffic counts.
struct ChunkOut {
    scores: Vec<f64>,
    shard: SimMemo,
    hits: u64,
    misses: u64,
}

/// Run the alignment over the blocked candidate pairs, returning the raw
/// (not yet thresholded or one-to-one) scored links.
pub fn align(
    left: &Dataset,
    left_idx: &EntityIndex,
    right: &Dataset,
    right_idx: &EntityIndex,
    pairs: &[(u32, u32)],
    cfg: &AlignmentConfig,
) -> LinkSet {
    let left_fun = Functionality::compute(left);
    let right_fun = Functionality::compute(right);

    // Pack both attribute arenas against one shared token interner: token
    // ids must agree across data sets for the interned Jaccard kernel.
    let mut interner = TokenInterner::new();
    let left_arena = AttrArena::build(left, left_idx, &mut interner);
    let right_arena = AttrArena::build(right, right_idx, &mut interner);

    let pool = alex_parallel::Pool::new("paris");
    let mut table = ScoreTable::new(pairs);
    let mut memo: SimMemo = SimMemo::new();

    // Pass 0 bootstraps with a uniform relation alignment and no previous
    // equivalence estimates; passes 1..=iterations re-estimate both.
    for pass in 0..=cfg.iterations {
        let pass_span = span(if pass == 0 {
            "paris/bootstrap"
        } else {
            "paris/iteration"
        });
        let rel_align = if pass == 0 {
            RelationAlignment::uniform()
        } else {
            RelationAlignment::estimate(
                &left_arena,
                &right_arena,
                pairs,
                &table,
                cfg,
                &pool,
                &mut memo,
            )
        };
        let chunks = pool.map_chunks(pairs, |chunk| {
            let mut out = ChunkOut {
                scores: Vec::with_capacity(chunk.len()),
                shard: SimMemo::new(),
                hits: 0,
                misses: 0,
            };
            for &(l, r) in chunk {
                let s = pair_score(
                    &left_arena,
                    &right_arena,
                    left_arena.attrs(l),
                    right_arena.attrs(r),
                    &left_fun,
                    &right_fun,
                    &rel_align,
                    &table,
                    &memo,
                    &mut out,
                    cfg,
                );
                out.scores.push(s);
            }
            out
        });
        // Ordered merge: scores concatenate in chunk order (byte-identical
        // to the sequential map at any thread count); memo shards fold in
        // chunk order — shard contents are pure function results, so merge
        // order could not change them anyway.
        let mut next = Vec::with_capacity(pairs.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for chunk in chunks {
            next.extend(chunk.scores);
            memo.extend(chunk.shard);
            hits += chunk.hits;
            misses += chunk.misses;
        }
        table.scores = next;
        counter!("simmemo_hits_total").add(hits);
        counter!("simmemo_misses_total").add(misses);
        emit!(Event::ParisIteration {
            iteration: pass as u64,
            matches: table.positive() as u64,
            duration_us: pass_span.elapsed().as_micros() as u64,
        });
    }

    // Emit links in (left, right) order: the candidate pair slice's order
    // is the blocker's, and downstream consumers (diffs, link dumps, the
    // one-to-one pass on score ties) deserve a reproducible sequence.
    let mut links: Vec<ScoredLink> = pairs
        .iter()
        .zip(&table.scores)
        .filter(|&(_, &s)| s > 0.0)
        .map(|(&(l, r), &score)| ScoredLink {
            left: l,
            right: r,
            score,
        })
        .collect();
    links.sort_by_key(|l| (l.left, l.right));
    links.into_iter().collect()
}

/// Memoized similarity of one attribute pair's values.
///
/// Only pairs where both sides carry prepared text go through the memo —
/// string comparison is the expensive kernel worth caching; numeric and
/// temporal comparisons are a few flops, cheaper than the hash probe.
#[inline]
fn sim_for(
    left_arena: &AttrArena,
    right_arena: &AttrArena,
    la: &PackedAttr,
    ra: &PackedAttr,
    memo: &SimMemo,
    out: &mut ChunkOut,
) -> f64 {
    let lv = left_arena.value(la);
    let rv = right_arena.value(ra);
    if !(lv.is_texty() && rv.is_texty()) {
        return prepared_similarity(lv, rv);
    }
    let key = (la.term, ra.term);
    if let Some(&s) = memo.get(&key) {
        out.hits += 1;
        return s;
    }
    if let Some(&s) = out.shard.get(&key) {
        out.hits += 1;
        return s;
    }
    out.misses += 1;
    let s = prepared_similarity(lv, rv);
    out.shard.insert(key, s);
    s
}

/// Pairwise relation alignment estimates.
struct RelationAlignment {
    /// `align(r, r')` for observed relation pairs; `None` map = uniform 1.0.
    table: Option<HashMap<(Sym, Sym), f64>>,
}

impl RelationAlignment {
    fn uniform() -> Self {
        RelationAlignment { table: None }
    }

    fn get(&self, l: Sym, r: Sym) -> f64 {
        match &self.table {
            None => 1.0,
            Some(t) => t.get(&(l, r)).copied().unwrap_or(0.1),
        }
    }

    /// Estimate `align(r, r')` from currently-matched pairs: the fraction of
    /// matches where some value of `r` agrees (similarity above the floor)
    /// with some value of `r'`.
    ///
    /// Matched pairs are filtered sequentially (one dense-table scan), then
    /// chunk-local agree/seen counts fan out over `pool` and merge by
    /// addition in chunk order — exact for integer-valued `f64` counters,
    /// so the table is independent of both chunk boundaries and thread
    /// count. Freshly computed similarities flow back into the caller's
    /// memo, so the scoring pass that follows starts warm.
    #[allow(clippy::too_many_arguments)]
    fn estimate(
        left_arena: &AttrArena,
        right_arena: &AttrArena,
        pairs: &[(u32, u32)],
        table: &ScoreTable,
        cfg: &AlignmentConfig,
        pool: &alex_parallel::Pool,
        memo: &mut SimMemo,
    ) -> Self {
        type Counts = HashMap<(Sym, Sym), (f64, f64)>;
        let matched: Vec<(u32, u32)> = pairs
            .iter()
            .zip(&table.scores)
            .filter(|&(_, &s)| s >= cfg.match_threshold)
            .map(|(&p, _)| p)
            .collect();
        let chunks = pool.map_chunks(&matched, |chunk| {
            let mut counts = Counts::new();
            let mut out = ChunkOut {
                scores: Vec::new(),
                shard: SimMemo::new(),
                hits: 0,
                misses: 0,
            };
            for &(l, r) in chunk {
                for la in left_arena.attrs(l) {
                    for ra in right_arena.attrs(r) {
                        let sim = sim_for(left_arena, right_arena, la, ra, memo, &mut out);
                        let entry = counts.entry((la.pred, ra.pred)).or_insert((0.0, 0.0));
                        entry.1 += 1.0;
                        if sim >= cfg.sim_threshold {
                            entry.0 += 1.0;
                        }
                    }
                }
            }
            (counts, out)
        });
        let mut counts = Counts::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for (partial, out) in chunks {
            for (key, (a, n)) in partial {
                let entry = counts.entry(key).or_insert((0.0, 0.0));
                entry.0 += a;
                entry.1 += n;
            }
            memo.extend(out.shard);
            hits += out.hits;
            misses += out.misses;
        }
        counter!("simmemo_hits_total").add(hits);
        counter!("simmemo_misses_total").add(misses);
        let table = counts
            .into_iter()
            .map(|(key, (a, n))| {
                // Laplace-smoothed agreement rate.
                (key, (a + 0.5) / (n + 1.0))
            })
            .collect();
        RelationAlignment { table: Some(table) }
    }
}

/// Noisy-or combination of attribute evidence for one candidate pair.
///
/// Factor order is the arena's attribute order — the triple store's
/// iteration order, identical to the pre-arena representation — so the
/// floating-point product is byte-identical to the unpacked code path.
#[allow(clippy::too_many_arguments)]
fn pair_score(
    left_arena: &AttrArena,
    right_arena: &AttrArena,
    l_attrs: &[PackedAttr],
    r_attrs: &[PackedAttr],
    left_fun: &Functionality,
    right_fun: &Functionality,
    rel_align: &RelationAlignment,
    prev: &ScoreTable,
    memo: &SimMemo,
    out: &mut ChunkOut,
    cfg: &AlignmentConfig,
) -> f64 {
    let mut not_equal = 1.0f64;
    for la in l_attrs {
        for ra in r_attrs {
            let mut sim = sim_for(left_arena, right_arena, la, ra, memo, out);
            // IRI-valued objects: reuse the previous pass's
            // entity-equivalence estimate when both objects are indexed
            // entities (ids pre-resolved at arena build).
            if let (Some(li), Some(ri)) = (la.entity, ra.entity) {
                sim = sim.max(prev.get(li, ri));
            }
            if sim < cfg.sim_threshold {
                continue;
            }
            let weight = right_fun.ifun(ra.pred).max(left_fun.ifun(la.pred))
                * rel_align.get(la.pred, ra.pred);
            let evidence = (weight * sim).clamp(0.0, 1.0);
            not_equal *= 1.0 - evidence;
        }
    }
    1.0 - not_equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (Dataset, Dataset) {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/label", "LeBron James");
        left.add_str("http://l/a", "http://l/type", "person");
        left.add_str("http://l/b", "http://l/label", "Michael Jordan");
        left.add_str("http://l/b", "http://l/type", "person");
        left.add_str("http://l/c", "http://l/label", "Kobe Bryant");
        left.add_str("http://l/c", "http://l/type", "person");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/name", "LeBron James");
        right.add_str("http://r/1", "http://r/class", "person");
        right.add_str("http://r/2", "http://r/name", "Michael Jordan");
        right.add_str("http://r/2", "http://r/class", "person");
        right.add_str("http://r/3", "http://r/name", "Tim Duncan");
        right.add_str("http://r/3", "http://r/class", "person");
        (left, right)
    }

    fn all_pairs(li: &EntityIndex, ri: &EntityIndex) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for l in 0..li.len() as u32 {
            for r in 0..ri.len() as u32 {
                out.push((l, r));
            }
        }
        out
    }

    #[test]
    fn matching_names_score_higher_than_type_only() {
        let (left, right) = build();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = all_pairs(&li, &ri);
        let links = align(&left, &li, &right, &ri, &pairs, &AlignmentConfig::default());
        let score_of = |l: &str, r: &str| {
            let lt = li
                .id(left.interner().get(l).map(Term::Iri).unwrap())
                .unwrap();
            let rt = ri
                .id(right.interner().get(r).map(Term::Iri).unwrap())
                .unwrap();
            links
                .iter()
                .find(|x| x.left == lt && x.right == rt)
                .map(|x| x.score)
                .unwrap_or(0.0)
        };
        let same = score_of("http://l/a", "http://r/1");
        let cross = score_of("http://l/a", "http://r/3");
        assert!(same > 0.6, "same-name pair scored {same}");
        assert!(
            same > cross + 0.3,
            "same {same} not clearly above cross {cross}"
        );
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let (left, right) = build();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = all_pairs(&li, &ri);
        let links = align(&left, &li, &right, &ri, &pairs, &AlignmentConfig::default());
        for l in links.iter() {
            assert!((0.0..=1.0).contains(&l.score), "{:?}", l);
        }
    }

    #[test]
    fn empty_pairs_give_empty_links() {
        let (left, right) = build();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let links = align(&left, &li, &right, &ri, &[], &AlignmentConfig::default());
        assert!(links.is_empty());
    }

    #[test]
    fn iri_objects_propagate_equivalence() {
        // Players point at teams; team names match, so after iteration the
        // players that share only the team attribute still gain score.
        let mut left = Dataset::new("L");
        left.add_str("http://l/heat", "http://l/label", "Miami Heat");
        left.add_iri("http://l/p1", "http://l/team", "http://l/heat");
        left.add_str("http://l/p1", "http://l/label", "LeBron James");
        let mut right = Dataset::new("R");
        right.add_str("http://r/heat", "http://r/name", "Miami Heat");
        right.add_iri("http://r/p1", "http://r/club", "http://r/heat");
        right.add_str("http://r/p1", "http://r/name", "LeBron James");
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = all_pairs(&li, &ri);
        let cfg = AlignmentConfig {
            iterations: 3,
            ..AlignmentConfig::default()
        };
        let links = align(&left, &li, &right, &ri, &pairs, &cfg);
        let p1_l = li
            .id(Term::Iri(left.interner().get("http://l/p1").unwrap()))
            .unwrap();
        let p1_r = ri
            .id(Term::Iri(right.interner().get("http://r/p1").unwrap()))
            .unwrap();
        let s = links
            .iter()
            .find(|x| x.left == p1_l && x.right == p1_r)
            .map(|x| x.score)
            .unwrap_or(0.0);
        assert!(s > 0.8, "player pair scored {s}");
    }

    #[test]
    fn alignment_byte_identical_across_thread_counts() {
        let (left, right) = build();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = all_pairs(&li, &ri);
        let run = |threads: usize| {
            alex_parallel::set_threads(threads);
            let links = align(&left, &li, &right, &ri, &pairs, &AlignmentConfig::default());
            alex_parallel::set_threads(0);
            links
                .iter()
                .map(|l| (l.left, l.right, l.score.to_bits()))
                .collect::<Vec<_>>()
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn simmemo_counters_reach_prometheus_export() {
        let (left, right) = build();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = all_pairs(&li, &ri);
        align(&left, &li, &right, &ri, &pairs, &AlignmentConfig::default());
        let text = alex_telemetry::global().metrics().render_prometheus();
        for name in ["simmemo_hits_total", "simmemo_misses_total"] {
            assert!(text.contains(&format!("# TYPE {name} counter")), "{text}");
            // The fixture revisits every literal pair across iterations, so
            // both counters must be strictly positive after one alignment.
            assert!(
                text.lines().any(|l| {
                    l.strip_prefix(&format!("{name} "))
                        .is_some_and(|v| v.parse::<u64>().is_ok_and(|n| n >= 1))
                }),
                "{name} missing or zero in export:\n{text}"
            );
        }
    }
}
