//! The iterative probabilistic alignment at the heart of the PARIS-like
//! linker.
//!
//! Simplified from Suchanek et al. (PVLDB 2011) but preserving its three
//! mutually recursive estimates:
//!
//! 1. **Entity equivalence** `P(x ≡ y)` — combined by a noisy-or over shared
//!    attribute evidence, each piece weighted by inverse functionality and
//!    the current relation alignment;
//! 2. **Relation alignment** `align(r, r')` — the probability that values of
//!    `r` and `r'` agree on currently-matched entity pairs;
//! 3. **Value equivalence** — literal similarity for literals, and for
//!    IRI-valued attributes the current entity-equivalence estimate
//!    (so matched teams reinforce player matches).
//!
//! Iterating the three to a fixed point is what makes PARIS holistic.

use std::collections::HashMap;

use alex_rdf::{Dataset, EntityIndex, Sym, Term};
use alex_sim::term_similarity;
use alex_telemetry::{emit, span, Event};

use super::functionality::Functionality;
use crate::candidates::{LinkSet, ScoredLink};

/// One entity's attribute list, precomputed for the inner loop.
type AttrList = Vec<(Sym, Term)>;

/// Tunables for the alignment iteration.
#[derive(Debug, Clone, Copy)]
pub struct AlignmentConfig {
    /// Number of refinement iterations after the bootstrap pass.
    pub iterations: usize,
    /// Value-similarity floor: evidence below this contributes nothing.
    pub sim_threshold: f64,
    /// Entity pairs above this score count as "matched" when estimating
    /// relation alignment.
    pub match_threshold: f64,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        AlignmentConfig {
            iterations: 2,
            sim_threshold: 0.6,
            match_threshold: 0.5,
        }
    }
}

/// Run the alignment over the blocked candidate pairs, returning the raw
/// (not yet thresholded or one-to-one) scored links.
pub fn align(
    left: &Dataset,
    left_idx: &EntityIndex,
    right: &Dataset,
    right_idx: &EntityIndex,
    pairs: &[(u32, u32)],
    cfg: &AlignmentConfig,
) -> LinkSet {
    let left_fun = Functionality::compute(left);
    let right_fun = Functionality::compute(right);

    // Precompute attribute lists.
    let left_attrs: Vec<AttrList> = (0..left_idx.len() as u32)
        .map(|id| attrs(left, left_idx.term(id)))
        .collect();
    let right_attrs: Vec<AttrList> = (0..right_idx.len() as u32)
        .map(|id| attrs(right, right_idx.term(id)))
        .collect();

    // IRI-valued objects can refer to entities that are themselves candidate
    // pairs; map terms back to ids to reuse equivalence estimates.
    //
    // Every pass has snapshot semantics: each pair scores against the
    // estimates from the *previous* pass only, never against updates made
    // within the current one. That makes each pass order-independent, so
    // the per-pair scoring fans out over the pool with an ordered merge
    // and the result is byte-identical at any thread count.
    let pool = alex_parallel::Pool::new("paris");
    let mut scores: HashMap<(u32, u32), f64> = HashMap::with_capacity(pairs.len());
    // Bootstrap pass: relation alignment unknown, assume 1; no previous
    // equivalence estimates yet.
    {
        let bootstrap_span = span("paris/bootstrap");
        let uniform_align = RelationAlignment::uniform();
        let prev: HashMap<(u32, u32), f64> = HashMap::new();
        let boot = pool.map(pairs, |&(l, r)| {
            pair_score(
                left,
                right,
                &left_attrs[l as usize],
                &right_attrs[r as usize],
                &left_fun,
                &right_fun,
                &uniform_align,
                &prev,
                left_idx,
                right_idx,
                cfg,
            )
        });
        for (&(l, r), s) in pairs.iter().zip(boot) {
            if s > 0.0 {
                scores.insert((l, r), s);
            }
        }
        emit!(Event::ParisIteration {
            iteration: 0,
            matches: scores.len() as u64,
            duration_us: bootstrap_span.elapsed().as_micros() as u64,
        });
    }

    for iteration in 0..cfg.iterations {
        let iter_span = span("paris/iteration");
        let rel_align = RelationAlignment::estimate(
            left,
            right,
            &left_attrs,
            &right_attrs,
            pairs,
            &scores,
            cfg,
            &pool,
        );
        let prev = scores.clone();
        let next = pool.map(pairs, |&(l, r)| {
            pair_score(
                left,
                right,
                &left_attrs[l as usize],
                &right_attrs[r as usize],
                &left_fun,
                &right_fun,
                &rel_align,
                &prev,
                left_idx,
                right_idx,
                cfg,
            )
        });
        for (&(l, r), s) in pairs.iter().zip(next) {
            if s > 0.0 {
                scores.insert((l, r), s);
            } else {
                scores.remove(&(l, r));
            }
        }
        emit!(Event::ParisIteration {
            iteration: iteration as u64 + 1,
            matches: scores.len() as u64,
            duration_us: iter_span.elapsed().as_micros() as u64,
        });
    }

    // Emit links in (left, right) order: HashMap iteration order varies
    // per process, and downstream consumers (diffs, link dumps, the
    // one-to-one pass on score ties) deserve a reproducible sequence.
    let mut links: Vec<ScoredLink> = scores
        .into_iter()
        .map(|((l, r), score)| ScoredLink {
            left: l,
            right: r,
            score,
        })
        .collect();
    links.sort_by_key(|l| (l.left, l.right));
    links.into_iter().collect()
}

fn attrs(ds: &Dataset, entity: Term) -> AttrList {
    ds.graph()
        .matching(Some(entity), None, None)
        .map(|t| (t.predicate.as_iri().expect("IRI predicate"), t.object))
        .collect()
}

/// Pairwise relation alignment estimates.
struct RelationAlignment {
    /// `align(r, r')` for observed relation pairs; `None` map = uniform 1.0.
    table: Option<HashMap<(Sym, Sym), f64>>,
}

impl RelationAlignment {
    fn uniform() -> Self {
        RelationAlignment { table: None }
    }

    fn get(&self, l: Sym, r: Sym) -> f64 {
        match &self.table {
            None => 1.0,
            Some(t) => t.get(&(l, r)).copied().unwrap_or(0.1),
        }
    }

    /// Estimate `align(r, r')` from currently-matched pairs: the fraction of
    /// matches where some value of `r` agrees (similarity above the floor)
    /// with some value of `r'`.
    ///
    /// Walks the candidate `pairs` slice (not the score map, whose
    /// iteration order is arbitrary) and fans chunks out over `pool`.
    /// Chunk-local agree/seen counts merge by addition, which is exact for
    /// integer-valued `f64` counters, so the table is independent of both
    /// chunk boundaries and thread count.
    #[allow(clippy::too_many_arguments)]
    fn estimate(
        left: &Dataset,
        right: &Dataset,
        left_attrs: &[AttrList],
        right_attrs: &[AttrList],
        pairs: &[(u32, u32)],
        scores: &HashMap<(u32, u32), f64>,
        cfg: &AlignmentConfig,
        pool: &alex_parallel::Pool,
    ) -> Self {
        type Counts = HashMap<(Sym, Sym), (f64, f64)>;
        let counts: Counts = pool.reduce(
            pairs,
            Counts::new,
            |acc, &(l, r)| {
                let matched = scores
                    .get(&(l, r))
                    .is_some_and(|&s| s >= cfg.match_threshold);
                if !matched {
                    return;
                }
                let la = &left_attrs[l as usize];
                let ra = &right_attrs[r as usize];
                for &(lp, lo) in la {
                    for &(rp, ro) in ra {
                        let sim = term_similarity(left, lo, right, ro);
                        let entry = acc.entry((lp, rp)).or_insert((0.0, 0.0));
                        entry.1 += 1.0;
                        if sim >= cfg.sim_threshold {
                            entry.0 += 1.0;
                        }
                    }
                }
            },
            |acc, other| {
                for (key, (a, n)) in other {
                    let entry = acc.entry(key).or_insert((0.0, 0.0));
                    entry.0 += a;
                    entry.1 += n;
                }
            },
        );
        let table = counts
            .into_iter()
            .map(|(key, (a, n))| {
                // Laplace-smoothed agreement rate.
                (key, (a + 0.5) / (n + 1.0))
            })
            .collect();
        RelationAlignment { table: Some(table) }
    }
}

/// Noisy-or combination of attribute evidence for one candidate pair.
#[allow(clippy::too_many_arguments)]
fn pair_score(
    left: &Dataset,
    right: &Dataset,
    l_attrs: &AttrList,
    r_attrs: &AttrList,
    left_fun: &Functionality,
    right_fun: &Functionality,
    rel_align: &RelationAlignment,
    prev_scores: &HashMap<(u32, u32), f64>,
    left_idx: &EntityIndex,
    right_idx: &EntityIndex,
    cfg: &AlignmentConfig,
) -> f64 {
    let mut not_equal = 1.0f64;
    for &(lp, lo) in l_attrs {
        for &(rp, ro) in r_attrs {
            let mut sim = term_similarity(left, lo, right, ro);
            // IRI-valued objects: reuse the current entity-equivalence
            // estimate when both objects are indexed entities.
            if lo.is_iri() && ro.is_iri() {
                if let (Some(li), Some(ri)) = (left_idx.id(lo), right_idx.id(ro)) {
                    if let Some(&s) = prev_scores.get(&(li, ri)) {
                        sim = sim.max(s);
                    }
                }
            }
            if sim < cfg.sim_threshold {
                continue;
            }
            let weight = right_fun.ifun(rp).max(left_fun.ifun(lp)) * rel_align.get(lp, rp);
            let evidence = (weight * sim).clamp(0.0, 1.0);
            not_equal *= 1.0 - evidence;
        }
    }
    1.0 - not_equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (Dataset, Dataset) {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/label", "LeBron James");
        left.add_str("http://l/a", "http://l/type", "person");
        left.add_str("http://l/b", "http://l/label", "Michael Jordan");
        left.add_str("http://l/b", "http://l/type", "person");
        left.add_str("http://l/c", "http://l/label", "Kobe Bryant");
        left.add_str("http://l/c", "http://l/type", "person");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/name", "LeBron James");
        right.add_str("http://r/1", "http://r/class", "person");
        right.add_str("http://r/2", "http://r/name", "Michael Jordan");
        right.add_str("http://r/2", "http://r/class", "person");
        right.add_str("http://r/3", "http://r/name", "Tim Duncan");
        right.add_str("http://r/3", "http://r/class", "person");
        (left, right)
    }

    fn all_pairs(li: &EntityIndex, ri: &EntityIndex) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for l in 0..li.len() as u32 {
            for r in 0..ri.len() as u32 {
                out.push((l, r));
            }
        }
        out
    }

    #[test]
    fn matching_names_score_higher_than_type_only() {
        let (left, right) = build();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = all_pairs(&li, &ri);
        let links = align(&left, &li, &right, &ri, &pairs, &AlignmentConfig::default());
        let score_of = |l: &str, r: &str| {
            let lt = li
                .id(left.interner().get(l).map(Term::Iri).unwrap())
                .unwrap();
            let rt = ri
                .id(right.interner().get(r).map(Term::Iri).unwrap())
                .unwrap();
            links
                .iter()
                .find(|x| x.left == lt && x.right == rt)
                .map(|x| x.score)
                .unwrap_or(0.0)
        };
        let same = score_of("http://l/a", "http://r/1");
        let cross = score_of("http://l/a", "http://r/3");
        assert!(same > 0.6, "same-name pair scored {same}");
        assert!(
            same > cross + 0.3,
            "same {same} not clearly above cross {cross}"
        );
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let (left, right) = build();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = all_pairs(&li, &ri);
        let links = align(&left, &li, &right, &ri, &pairs, &AlignmentConfig::default());
        for l in links.iter() {
            assert!((0.0..=1.0).contains(&l.score), "{:?}", l);
        }
    }

    #[test]
    fn empty_pairs_give_empty_links() {
        let (left, right) = build();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let links = align(&left, &li, &right, &ri, &[], &AlignmentConfig::default());
        assert!(links.is_empty());
    }

    #[test]
    fn iri_objects_propagate_equivalence() {
        // Players point at teams; team names match, so after iteration the
        // players that share only the team attribute still gain score.
        let mut left = Dataset::new("L");
        left.add_str("http://l/heat", "http://l/label", "Miami Heat");
        left.add_iri("http://l/p1", "http://l/team", "http://l/heat");
        left.add_str("http://l/p1", "http://l/label", "LeBron James");
        let mut right = Dataset::new("R");
        right.add_str("http://r/heat", "http://r/name", "Miami Heat");
        right.add_iri("http://r/p1", "http://r/club", "http://r/heat");
        right.add_str("http://r/p1", "http://r/name", "LeBron James");
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = all_pairs(&li, &ri);
        let cfg = AlignmentConfig {
            iterations: 3,
            ..AlignmentConfig::default()
        };
        let links = align(&left, &li, &right, &ri, &pairs, &cfg);
        let p1_l = li
            .id(Term::Iri(left.interner().get("http://l/p1").unwrap()))
            .unwrap();
        let p1_r = ri
            .id(Term::Iri(right.interner().get("http://r/p1").unwrap()))
            .unwrap();
        let s = links
            .iter()
            .find(|x| x.left == p1_l && x.right == p1_r)
            .map(|x| x.score)
            .unwrap_or(0.0);
        assert!(s > 0.8, "player pair scored {s}");
    }
}
