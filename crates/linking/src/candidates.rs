//! Scored candidate links, the output type of every automatic linker.

use alex_rdf::{EntityIndex, Term};

/// A candidate `owl:sameAs` link with a confidence score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredLink {
    /// Dense id of the left entity.
    pub left: u32,
    /// Dense id of the right entity.
    pub right: u32,
    /// Confidence in [0, 1].
    pub score: f64,
}

/// A set of scored candidate links between two data sets.
#[derive(Debug, Clone, Default)]
pub struct LinkSet {
    links: Vec<ScoredLink>,
}

impl LinkSet {
    /// An empty link set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from raw scored links.
    pub fn from_links(links: Vec<ScoredLink>) -> Self {
        LinkSet { links }
    }

    /// Add a link.
    pub fn push(&mut self, link: ScoredLink) {
        self.links.push(link);
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Iterate over links.
    pub fn iter(&self) -> impl Iterator<Item = &ScoredLink> {
        self.links.iter()
    }

    /// Keep only links with `score >= threshold` (the paper keeps PARIS
    /// links with score > 0.95).
    pub fn threshold(&self, threshold: f64) -> LinkSet {
        LinkSet {
            links: self
                .links
                .iter()
                .filter(|l| l.score >= threshold)
                .copied()
                .collect(),
        }
    }

    /// Sort by descending score (stable for equal scores by ids).
    pub fn sort_by_score(&mut self) {
        self.links.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.left, a.right).cmp(&(b.left, b.right)))
        });
    }

    /// Greedy one-to-one assignment: scan by descending score, keeping a
    /// link only if neither endpoint is taken. This is the usual final step
    /// of instance matchers (each entity links to at most one partner).
    pub fn one_to_one(&self) -> LinkSet {
        let mut sorted = self.clone();
        sorted.sort_by_score();
        let mut left_taken = std::collections::HashSet::new();
        let mut right_taken = std::collections::HashSet::new();
        let mut out = Vec::new();
        for l in sorted.links {
            if left_taken.insert(l.left) && right_taken.insert(l.right) {
                out.push(l);
            } else {
                left_taken.insert(l.left);
                right_taken.insert(l.right);
            }
        }
        let mut set = LinkSet { links: out };
        set.sort_by_score();
        set
    }

    /// Resolve dense ids to `(left term, right term)` pairs.
    pub fn to_term_pairs(
        &self,
        left_idx: &EntityIndex,
        right_idx: &EntityIndex,
    ) -> Vec<(Term, Term)> {
        self.links
            .iter()
            .map(|l| (left_idx.term(l.left), right_idx.term(l.right)))
            .collect()
    }
}

/// The complete output of an automatic linker: the links plus the entity
/// indexes that give the dense ids meaning.
#[derive(Debug, Clone)]
pub struct LinkerOutput {
    /// The scored links.
    pub links: LinkSet,
    /// Dense-id index over the left data set's entities.
    pub left_index: EntityIndex,
    /// Dense-id index over the right data set's entities.
    pub right_index: EntityIndex,
}

impl LinkerOutput {
    /// Resolve the links to `(left term, right term)` pairs.
    pub fn term_pairs(&self) -> Vec<(Term, Term)> {
        self.links
            .to_term_pairs(&self.left_index, &self.right_index)
    }
}

impl FromIterator<ScoredLink> for LinkSet {
    fn from_iter<I: IntoIterator<Item = ScoredLink>>(iter: I) -> Self {
        LinkSet {
            links: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(left: u32, right: u32, score: f64) -> ScoredLink {
        ScoredLink { left, right, score }
    }

    #[test]
    fn threshold_filters() {
        let set = LinkSet::from_links(vec![l(0, 0, 0.99), l(1, 1, 0.5), l(2, 2, 0.95)]);
        let kept = set.threshold(0.95);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn sort_by_score_descending() {
        let mut set = LinkSet::from_links(vec![l(0, 0, 0.3), l(1, 1, 0.9), l(2, 2, 0.6)]);
        set.sort_by_score();
        let scores: Vec<f64> = set.iter().map(|x| x.score).collect();
        assert_eq!(scores, vec![0.9, 0.6, 0.3]);
    }

    #[test]
    fn one_to_one_keeps_best_per_entity() {
        let set = LinkSet::from_links(vec![
            l(0, 0, 0.9),
            l(0, 1, 0.8), // loses: left 0 taken
            l(1, 1, 0.7), // loses: right 1 burned by the 0.8 attempt
            l(2, 2, 0.6),
        ]);
        let assigned = set.one_to_one();
        assert_eq!(assigned.len(), 2);
        assert!(assigned.iter().any(|x| x.left == 0 && x.right == 0));
        assert!(assigned.iter().any(|x| x.left == 2 && x.right == 2));
    }

    #[test]
    fn one_to_one_no_duplicate_endpoints() {
        let set = LinkSet::from_links(vec![
            l(0, 5, 0.9),
            l(1, 5, 0.85),
            l(0, 6, 0.8),
            l(2, 7, 0.7),
        ]);
        let assigned = set.one_to_one();
        let mut lefts = std::collections::HashSet::new();
        let mut rights = std::collections::HashSet::new();
        for x in assigned.iter() {
            assert!(lefts.insert(x.left));
            assert!(rights.insert(x.right));
        }
    }

    #[test]
    fn empty_set_behaviour() {
        let set = LinkSet::new();
        assert!(set.is_empty());
        assert!(set.threshold(0.5).is_empty());
        assert!(set.one_to_one().is_empty());
    }
}
