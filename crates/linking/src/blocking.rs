//! Token blocking: cheap candidate-pair generation.
//!
//! Comparing every left entity against every right entity is quadratic and
//! infeasible at LOD scale. Token blocking builds an inverted index from
//! normalized value tokens to right-side entities and only pairs entities
//! that share at least one (non-stop) token — the standard first stage of
//! every link-discovery tool (SILK, LIMES, PARIS all block first).

use std::collections::{HashMap, HashSet};

use alex_rdf::{Dataset, EntityIndex, Term};
use alex_sim::normalize;

/// Blocking configuration.
#[derive(Debug, Clone, Copy)]
pub struct BlockingConfig {
    /// Tokens shorter than this are ignored.
    pub min_token_len: usize,
    /// Tokens matching more than this fraction of right-side entities are
    /// treated as stop tokens (e.g. a category shared by every entity).
    pub max_posting_frac: f64,
    /// Minimum number of shared tokens for a pair to become a candidate.
    pub min_shared_tokens: usize,
    /// Skip tokens consisting only of digits. Numbers (years, populations,
    /// zip codes) collide massively across unrelated entities — a shared
    /// "1975" says nothing about identity.
    pub skip_numeric_tokens: bool,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            min_token_len: 3,
            // Low enough that closed-vocabulary values (categories,
            // occupations) become stop tokens: pairs must share a
            // *distinctive* token (name part, code) to be compared.
            max_posting_frac: 0.03,
            min_shared_tokens: 1,
            skip_numeric_tokens: true,
        }
    }
}

/// Blocking tokens of one entity: normalized tokens of every literal value
/// and of the local names of IRI values.
fn entity_tokens(ds: &Dataset, entity: Term) -> HashSet<String> {
    let mut tokens = HashSet::new();
    for t in ds.graph().matching(Some(entity), None, None) {
        let text = match t.object {
            Term::Literal(lit) => ds.resolve_sym(lit.lexical).to_string(),
            Term::Iri(sym) => alex_sim::iri_local_name(ds.resolve_sym(sym)).to_string(),
            Term::Blank(_) => continue,
        };
        for tok in normalize(&text).split(' ') {
            if !tok.is_empty() {
                tokens.insert(tok.to_string());
            }
        }
    }
    tokens
}

/// Generate candidate `(left_id, right_id)` pairs via token blocking.
///
/// The result is sorted and duplicate-free. Cost is proportional to the sum
/// of posting-list-pair products, not to `|left| × |right|`.
pub fn candidate_pairs(
    left: &Dataset,
    left_idx: &EntityIndex,
    right: &Dataset,
    right_idx: &EntityIndex,
    cfg: &BlockingConfig,
) -> Vec<(u32, u32)> {
    let usable = |tok: &str| {
        tok.len() >= cfg.min_token_len
            && !(cfg.skip_numeric_tokens && tok.bytes().all(|b| b.is_ascii_digit()))
    };

    // Inverted index over the right side.
    let mut postings: HashMap<String, Vec<u32>> = HashMap::new();
    for (rid, term) in right_idx.iter() {
        for tok in entity_tokens(right, term) {
            if usable(&tok) {
                postings.entry(tok).or_default().push(rid);
            }
        }
    }
    // Fractional threshold with an absolute floor: on small data sets a
    // fraction of the entity count degenerates to 1 and every repeated
    // token would become a stop token.
    let max_postings = (((right_idx.len() as f64) * cfg.max_posting_frac).ceil() as usize).max(4);

    let mut shared_counts: HashMap<(u32, u32), usize> = HashMap::new();
    for (lid, term) in left_idx.iter() {
        for tok in entity_tokens(left, term) {
            if !usable(&tok) {
                continue;
            }
            let Some(list) = postings.get(&tok) else {
                continue;
            };
            if list.len() > max_postings {
                continue; // stop token
            }
            for &rid in list {
                *shared_counts.entry((lid, rid)).or_insert(0) += 1;
            }
        }
    }

    let mut pairs: Vec<(u32, u32)> = shared_counts
        .into_iter()
        .filter(|&(_, n)| n >= cfg.min_shared_tokens)
        .map(|(pair, _)| pair)
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datasets() -> (Dataset, Dataset) {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/o/label", "LeBron James");
        left.add_str("http://l/b", "http://l/o/label", "Michael Jordan");
        left.add_str("http://l/c", "http://l/o/label", "Silverford");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/p/name", "James, LeBron");
        right.add_str("http://r/2", "http://r/p/name", "Jordan, Michael");
        right.add_str("http://r/3", "http://r/p/name", "Unrelated Entity");
        (left, right)
    }

    #[test]
    fn pairs_require_shared_tokens() {
        let (left, right) = datasets();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = candidate_pairs(&left, &li, &right, &ri, &BlockingConfig::default());
        // a↔1 (james/lebron), b↔2 (michael/jordan); c and 3 match nothing.
        assert_eq!(pairs.len(), 2);
        let terms: Vec<(String, String)> = pairs
            .iter()
            .map(|&(l, r)| {
                (
                    left.resolve(li.term(l)).to_string(),
                    right.resolve(ri.term(r)).to_string(),
                )
            })
            .collect();
        assert!(terms.contains(&("http://l/a".to_string(), "http://r/1".to_string())));
        assert!(terms.contains(&("http://l/b".to_string(), "http://r/2".to_string())));
    }

    #[test]
    fn stop_tokens_are_skipped() {
        let mut left = Dataset::new("L");
        let mut right = Dataset::new("R");
        for i in 0..50 {
            left.add_str(&format!("http://l/{i}"), "http://l/p", "common");
            right.add_str(&format!("http://r/{i}"), "http://r/p", "common");
        }
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = candidate_pairs(&left, &li, &right, &ri, &BlockingConfig::default());
        // "common" appears in 100% of right entities — a stop token.
        assert!(pairs.is_empty());
    }

    #[test]
    fn min_shared_tokens_filters() {
        let (left, right) = datasets();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let cfg = BlockingConfig {
            min_shared_tokens: 2,
            ..BlockingConfig::default()
        };
        let pairs = candidate_pairs(&left, &li, &right, &ri, &cfg);
        // a↔1 and b↔2 share two tokens each.
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn short_tokens_ignored() {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/p", "ab xy");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/p", "ab xy");
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = candidate_pairs(&left, &li, &right, &ri, &BlockingConfig::default());
        assert!(pairs.is_empty(), "2-char tokens must not block");
    }

    #[test]
    fn numeric_tokens_do_not_block() {
        let mut left = Dataset::new("L");
        left.add_str("http://l/a", "http://l/p", "born 1975");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/q", "1975");
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = candidate_pairs(&left, &li, &right, &ri, &BlockingConfig::default());
        assert!(pairs.is_empty(), "a shared year must not block");
        let cfg = BlockingConfig {
            skip_numeric_tokens: false,
            ..BlockingConfig::default()
        };
        let pairs = candidate_pairs(&left, &li, &right, &ri, &cfg);
        assert_eq!(pairs.len(), 1, "numeric blocking can be re-enabled");
    }

    #[test]
    fn iri_objects_contribute_local_names() {
        let mut left = Dataset::new("L");
        left.add_iri("http://l/a", "http://l/p/team", "http://l/Miami_Heat");
        let mut right = Dataset::new("R");
        right.add_str("http://r/1", "http://r/p/club", "Miami Heat");
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = candidate_pairs(&left, &li, &right, &ri, &BlockingConfig::default());
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let (left, right) = datasets();
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = candidate_pairs(&left, &li, &right, &ri, &BlockingConfig::default());
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
    }
}
