//! Property-based tests for the linking substrate: blocking soundness,
//! PARIS score bounds, and one-to-one assignment invariants.

use alex_linking::{candidate_pairs, BlockingConfig, LinkSet, Paris, ScoredLink};
use alex_rdf::Dataset;
use proptest::prelude::*;

fn datasets_from(names: &[String]) -> (Dataset, Dataset) {
    let mut left = Dataset::new("L");
    let mut right = Dataset::new("R");
    for (i, name) in names.iter().enumerate() {
        left.add_str(&format!("http://l/{i}"), "http://l/label", name);
        right.add_str(&format!("http://r/{i}"), "http://r/name", name);
    }
    (left, right)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocking is sound: every returned pair shares at least one usable
    /// token; and it is symmetric-ish in content (ids are valid).
    #[test]
    fn blocking_pairs_are_valid_ids(
        names in proptest::collection::vec("[a-z]{4,9} [a-z]{4,9}", 2..12)
    ) {
        let (left, right) = datasets_from(&names);
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = candidate_pairs(&left, &li, &right, &ri, &BlockingConfig::default());
        for &(l, r) in &pairs {
            prop_assert!((l as usize) < li.len());
            prop_assert!((r as usize) < ri.len());
        }
        // Sorted, no duplicates.
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(pairs, sorted);
    }

    /// Identical names must block (they share every token), as long as the
    /// token is usable (alphabetic, ≥3 chars, not a stop token).
    #[test]
    fn exact_duplicates_always_block(
        names in proptest::collection::vec("[a-z]{4,9} [a-z]{4,9}", 2..10)
    ) {
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        prop_assume!(distinct.len() == names.len());
        let (left, right) = datasets_from(&names);
        let (li, ri) = (left.entity_index(), right.entity_index());
        let pairs = candidate_pairs(&left, &li, &right, &ri, &BlockingConfig::default());
        for i in 0..names.len() {
            let lt = left.interner().get(&format!("http://l/{i}")).map(alex_rdf::Term::Iri).unwrap();
            let rt = right.interner().get(&format!("http://r/{i}")).map(alex_rdf::Term::Iri).unwrap();
            let (lid, rid) = (li.id(lt).unwrap(), ri.id(rt).unwrap());
            // Unless its tokens are stop tokens (many duplicates), the
            // diagonal pair must be a candidate.
            let token_count = names.iter().filter(|n| {
                n.split(' ').any(|t| names[i].split(' ').any(|u| u == t))
            }).count();
            if token_count <= 4 {
                prop_assert!(
                    pairs.contains(&(lid, rid)),
                    "diagonal pair {i} missing ({} shared-token names)",
                    token_count
                );
            }
        }
    }

    /// PARIS scores stay in [0, 1] and its one-to-one output never repeats
    /// an endpoint.
    #[test]
    fn paris_output_is_one_to_one_with_unit_scores(
        names in proptest::collection::vec("[a-z]{4,9} [a-z]{4,9}", 2..10)
    ) {
        let (left, right) = datasets_from(&names);
        let out = Paris::new().link(&left, &right);
        let mut lefts = std::collections::HashSet::new();
        let mut rights = std::collections::HashSet::new();
        for l in out.links.iter() {
            prop_assert!((0.0..=1.0).contains(&l.score), "{l:?}");
            prop_assert!(lefts.insert(l.left));
            prop_assert!(rights.insert(l.right));
        }
    }

    /// LinkSet::one_to_one keeps the best-scoring assignment greedily and
    /// never increases the link count.
    #[test]
    fn one_to_one_invariants(
        raw in proptest::collection::vec((0u32..8, 0u32..8, 0.0f64..1.0), 0..40)
    ) {
        let set = LinkSet::from_links(
            raw.iter().map(|&(l, r, s)| ScoredLink { left: l, right: r, score: s }).collect()
        );
        let assigned = set.one_to_one();
        prop_assert!(assigned.len() <= set.len());
        let mut lefts = std::collections::HashSet::new();
        let mut rights = std::collections::HashSet::new();
        for l in assigned.iter() {
            prop_assert!(lefts.insert(l.left));
            prop_assert!(rights.insert(l.right));
        }
        // The top-scoring link overall always survives.
        if let Some(best) = set
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
        {
            prop_assert!(
                assigned.iter().any(|l| l.score >= best.score - 1e-12),
                "the globally best link must be kept"
            );
        }
    }

    /// PARIS alignment is byte-identical at every thread count: the
    /// work-stealing pool's slot-indexed reassembly and the chunk-ordered
    /// memo-shard merge must leave no trace of the schedule in the scores.
    #[test]
    fn paris_byte_identical_across_thread_counts(
        names in proptest::collection::vec("[a-z]{4,9} [a-z]{4,9}", 3..9)
    ) {
        let (left, right) = datasets_from(&names);
        let fingerprint = |threads: usize| {
            alex_parallel::set_threads(threads);
            let out = Paris::new().link(&left, &right);
            alex_parallel::set_threads(0);
            out.links
                .iter()
                .map(|l| (l.left, l.right, l.score.to_bits()))
                .collect::<Vec<_>>()
        };
        let reference = fingerprint(1);
        for threads in [2, 4, 8] {
            prop_assert_eq!(&fingerprint(threads), &reference, "threads = {}", threads);
        }
    }
}
