//! Run-level supervision for ALEX: budgets, breaches, and degraded mode.
//!
//! PR 2 hardened the federation edge (endpoint faults), PR 4 the storage
//! edge (crash-safe WAL); this crate hardens the middle of the loop. A
//! [`Budget`] bounds what one improvement run may consume — per-episode
//! and whole-run wall-clock, resident-set watermark, total feedback
//! items — and a [`Supervisor`] checks it at every episode boundary. On a
//! breach the driver finalizes the episode *normally* (it is journaled
//! through the WAL like any other, with a `degraded` marker in the same
//! record, so resume replays the marker instead of re-measuring the
//! clock), stamps incompleteness on the run report, and then either keeps
//! going or stops cleanly per [`BreachPolicy`].
//!
//! Two design rules keep supervision compatible with the repo's
//! determinism contract:
//!
//! 1. **Budgets never interrupt an episode.** Checks run between
//!    episodes, so feedback application is never torn; the worst case is
//!    one episode of overrun, which is the price of byte-identical state.
//! 2. **Breach outcomes are journaled, not recomputed.** Wall-clock and
//!    RSS are inherently nondeterministic, so the `degraded` bit travels
//!    in the episode's WAL record; a resumed run reads it back rather
//!    than re-deriving it from a clock it cannot reproduce.
//!
//! Breaches land in the `budget_breaches_total` counter and (when the
//! timeline recorder is on) a `budget_breach` instant event; degraded
//! episodes are counted by the driver in `episodes_degraded_total`.
//!
//! Panic isolation and seeded chaos live in `alex-parallel`
//! ([`PanicPolicy`], [`ChaosProfile`]) and are re-exported here so the
//! CLI and tests have one supervision facade.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

use alex_telemetry::{counter, timeline};

pub use alex_parallel::chaos::{self, ChaosProfile};
pub use alex_parallel::{panic_policy, set_panic_policy, PanicPolicy, PoolError};

/// Resource ceilings for one improvement run. `None` everywhere (the
/// default) disables supervision checks entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock ceiling for a single episode.
    pub episode_wall: Option<Duration>,
    /// Wall-clock ceiling for the whole run.
    pub run_wall: Option<Duration>,
    /// Resident-set-size ceiling in bytes (checked via [`current_rss_bytes`]).
    pub max_rss_bytes: Option<u64>,
    /// Ceiling on total feedback items processed across the run.
    pub max_items: Option<u64>,
}

impl Budget {
    /// A budget with no limits: every check passes.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Whether every limit is disabled.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }

    /// Set the per-episode wall-clock ceiling (the `--episode-budget-ms` flag).
    pub fn episode_wall_ms(mut self, ms: u64) -> Budget {
        self.episode_wall = Some(Duration::from_millis(ms));
        self
    }

    /// Set the whole-run wall-clock ceiling (the `--run-budget-ms` flag).
    pub fn run_wall_ms(mut self, ms: u64) -> Budget {
        self.run_wall = Some(Duration::from_millis(ms));
        self
    }

    /// Set the RSS ceiling in mebibytes (the `--max-rss-mb` flag).
    pub fn max_rss_mb(mut self, mb: u64) -> Budget {
        self.max_rss_bytes = Some(mb * 1024 * 1024);
        self
    }

    /// Set the total feedback-item quota.
    pub fn max_items(mut self, items: u64) -> Budget {
        self.max_items = Some(items);
        self
    }
}

/// One budget violation, found at an episode boundary. Ordered by check
/// priority: episode wall, run wall, RSS, items — the first violated
/// check wins when several are breached at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Breach {
    /// The episode took longer than [`Budget::episode_wall`].
    EpisodeWall {
        /// 1-based episode number.
        episode: u64,
        /// Measured episode duration.
        elapsed: Duration,
        /// The configured ceiling.
        budget: Duration,
    },
    /// The run as a whole exceeded [`Budget::run_wall`].
    RunWall {
        /// 1-based episode number at which the ceiling was crossed.
        episode: u64,
        /// Run wall-clock so far.
        elapsed: Duration,
        /// The configured ceiling.
        budget: Duration,
    },
    /// Resident set size crossed [`Budget::max_rss_bytes`].
    Rss {
        /// 1-based episode number at which the probe tripped.
        episode: u64,
        /// Probed RSS in bytes.
        rss_bytes: u64,
        /// The configured ceiling in bytes.
        budget_bytes: u64,
    },
    /// Total feedback items crossed [`Budget::max_items`].
    Items {
        /// 1-based episode number at which the quota was exhausted.
        episode: u64,
        /// Items processed so far.
        items: u64,
        /// The configured quota.
        budget: u64,
    },
}

impl fmt::Display for Breach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Breach::EpisodeWall {
                episode,
                elapsed,
                budget,
            } => write!(
                f,
                "episode {episode} ran {}ms, over the {}ms episode budget",
                elapsed.as_millis(),
                budget.as_millis()
            ),
            Breach::RunWall {
                episode,
                elapsed,
                budget,
            } => write!(
                f,
                "run reached {}ms at episode {episode}, over the {}ms run budget",
                elapsed.as_millis(),
                budget.as_millis()
            ),
            Breach::Rss {
                episode,
                rss_bytes,
                budget_bytes,
            } => write!(
                f,
                "RSS {}MiB at episode {episode}, over the {}MiB ceiling",
                rss_bytes / (1024 * 1024),
                budget_bytes / (1024 * 1024)
            ),
            Breach::Items {
                episode,
                items,
                budget,
            } => write!(
                f,
                "{items} feedback items by episode {episode}, over the {budget}-item quota"
            ),
        }
    }
}

/// What the driver does after a breach: mark the episode degraded and
/// keep going, or finalize and stop the run cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreachPolicy {
    /// Finalize the breaching episode, stamp the report, stop the run.
    #[default]
    Stop,
    /// Mark the episode degraded and continue; the run report still
    /// records every breach.
    Continue,
}

impl std::str::FromStr for BreachPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<BreachPolicy, String> {
        match s {
            "stop" => Ok(BreachPolicy::Stop),
            "continue" => Ok(BreachPolicy::Continue),
            other => Err(format!(
                "unknown budget policy {other:?} (expected stop|continue)"
            )),
        }
    }
}

/// Episode-boundary budget enforcement. Owned by the caller of the
/// driver and handed in by mutable reference, so one supervisor can span
/// a whole run (the run clock starts at the first check).
#[derive(Debug)]
pub struct Supervisor {
    budget: Budget,
    policy: BreachPolicy,
    run_started: Option<Instant>,
    items_total: u64,
    log: Vec<Breach>,
}

impl Supervisor {
    /// A supervisor enforcing `budget` under `policy`.
    pub fn new(budget: Budget, policy: BreachPolicy) -> Supervisor {
        Supervisor {
            budget,
            policy,
            run_started: None,
            items_total: 0,
            log: Vec::new(),
        }
    }

    /// The configured breach policy.
    pub fn policy(&self) -> BreachPolicy {
        self.policy
    }

    /// The configured budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Breaches observed so far.
    pub fn breaches(&self) -> u64 {
        self.log.len() as u64
    }

    /// Every breach observed so far, in episode order.
    pub fn breach_log(&self) -> &[Breach] {
        &self.log
    }

    /// Check the budget after one episode. `duration` is the episode's
    /// wall-clock, `items` the feedback items it processed. Returns the
    /// highest-priority breach, if any; every breach bumps
    /// `budget_breaches_total` and, when the timeline recorder is on,
    /// records a `budget_breach` instant event.
    pub fn after_episode(
        &mut self,
        episode: u64,
        duration: Duration,
        items: u64,
    ) -> Option<Breach> {
        let run_elapsed = self.run_started.get_or_insert_with(Instant::now).elapsed();
        self.items_total = self.items_total.saturating_add(items);
        let breach = self.check(episode, duration, run_elapsed);
        if let Some(b) = breach {
            self.log.push(b);
            counter!("budget_breaches_total").add(1);
            if timeline::enabled() {
                timeline::instant("budget_breach");
            }
        }
        breach
    }

    fn check(&self, episode: u64, duration: Duration, run_elapsed: Duration) -> Option<Breach> {
        if let Some(budget) = self.budget.episode_wall {
            if duration > budget {
                return Some(Breach::EpisodeWall {
                    episode,
                    elapsed: duration,
                    budget,
                });
            }
        }
        if let Some(budget) = self.budget.run_wall {
            if run_elapsed > budget {
                return Some(Breach::RunWall {
                    episode,
                    elapsed: run_elapsed,
                    budget,
                });
            }
        }
        if let Some(budget_bytes) = self.budget.max_rss_bytes {
            if let Some(rss_bytes) = current_rss_bytes() {
                if rss_bytes > budget_bytes {
                    return Some(Breach::Rss {
                        episode,
                        rss_bytes,
                        budget_bytes,
                    });
                }
            }
        }
        if let Some(budget) = self.budget.max_items {
            if self.items_total > budget {
                return Some(Breach::Items {
                    episode,
                    items: self.items_total,
                    budget,
                });
            }
        }
        None
    }
}

/// Current resident set size in bytes, probed from `/proc/self/status`
/// (`VmRSS`). Returns `None` where the proc filesystem is unavailable
/// (non-Linux hosts) or unparsable — RSS ceilings are then simply not
/// enforced, which is the safe direction for a budget probe.
pub fn current_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_rss(&status)
}

/// Peak resident set size in bytes (`VmHWM`), for watermark reporting.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_field(&status, "VmHWM:")
}

fn parse_vm_rss(status: &str) -> Option<u64> {
    parse_vm_field(status, "VmRSS:")
}

/// `VmRSS:     1234 kB` → bytes. The kernel reports kB unconditionally.
fn parse_vm_field(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line
        .strip_prefix(field)?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_breaches() {
        let mut sup = Supervisor::new(Budget::unlimited(), BreachPolicy::Stop);
        assert!(Budget::unlimited().is_unlimited());
        for episode in 1..=100 {
            assert_eq!(
                sup.after_episode(episode, Duration::from_secs(3600), 1_000_000),
                None
            );
        }
        assert_eq!(sup.breaches(), 0);
    }

    #[test]
    fn episode_wall_breach_has_priority_and_counts() {
        let before = alex_telemetry::counter!("budget_breaches_total").get();
        let budget = Budget::unlimited().episode_wall_ms(10).max_items(0);
        let mut sup = Supervisor::new(budget, BreachPolicy::Continue);
        // Both the episode wall and the items quota are violated; the
        // episode wall is reported because it is checked first.
        let breach = sup.after_episode(1, Duration::from_millis(50), 5).unwrap();
        assert!(
            matches!(breach, Breach::EpisodeWall { episode: 1, .. }),
            "{breach}"
        );
        assert_eq!(sup.breaches(), 1);
        assert!(alex_telemetry::counter!("budget_breaches_total").get() > before);
        // Within budget: no breach (items quota 0 still trips though).
        let breach = sup.after_episode(2, Duration::from_millis(1), 0).unwrap();
        assert!(matches!(breach, Breach::Items { .. }));
    }

    #[test]
    fn run_wall_accumulates_across_episodes() {
        let mut sup = Supervisor::new(Budget::unlimited().run_wall_ms(20), BreachPolicy::Stop);
        assert_eq!(sup.after_episode(1, Duration::from_millis(1), 0), None);
        std::thread::sleep(Duration::from_millis(30));
        let breach = sup.after_episode(2, Duration::from_millis(1), 0).unwrap();
        assert!(
            matches!(breach, Breach::RunWall { episode: 2, .. }),
            "{breach}"
        );
    }

    #[test]
    fn items_quota_is_cumulative() {
        let mut sup = Supervisor::new(Budget::unlimited().max_items(10), BreachPolicy::Continue);
        assert_eq!(sup.after_episode(1, Duration::ZERO, 6), None);
        let breach = sup.after_episode(2, Duration::ZERO, 6).unwrap();
        assert!(
            matches!(
                breach,
                Breach::Items {
                    items: 12,
                    budget: 10,
                    ..
                }
            ),
            "{breach}"
        );
    }

    #[test]
    fn rss_probe_reads_proc_on_linux() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        let rss = current_rss_bytes().expect("VmRSS present on Linux");
        assert!(rss > 0);
        let peak = peak_rss_bytes().expect("VmHWM present on Linux");
        assert!(peak >= rss / 2, "peak {peak} vs rss {rss}");
    }

    #[test]
    fn tight_rss_ceiling_breaches() {
        if current_rss_bytes().is_none() {
            return;
        }
        // 1 MiB is far below any real process RSS, so this must trip.
        let mut sup = Supervisor::new(Budget::unlimited().max_rss_mb(1), BreachPolicy::Stop);
        let breach = sup.after_episode(1, Duration::ZERO, 0).unwrap();
        assert!(matches!(breach, Breach::Rss { .. }), "{breach}");
    }

    #[test]
    fn vm_field_parser_handles_kernel_format() {
        let status = "Name:\talex\nVmHWM:\t  2048 kB\nVmRSS:\t   1536 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_rss(status), Some(1536 * 1024));
        assert_eq!(parse_vm_field(status, "VmHWM:"), Some(2048 * 1024));
        assert_eq!(parse_vm_rss("Name:\talex\n"), None);
    }

    #[test]
    fn breach_policy_parses() {
        assert_eq!("stop".parse::<BreachPolicy>(), Ok(BreachPolicy::Stop));
        assert_eq!(
            "continue".parse::<BreachPolicy>(),
            Ok(BreachPolicy::Continue)
        );
        assert!("abort".parse::<BreachPolicy>().is_err());
    }

    #[test]
    fn breach_displays_are_operator_readable() {
        let b = Breach::EpisodeWall {
            episode: 3,
            elapsed: Duration::from_millis(120),
            budget: Duration::from_millis(100),
        };
        assert_eq!(
            b.to_string(),
            "episode 3 ran 120ms, over the 100ms episode budget"
        );
        let b = Breach::Rss {
            episode: 1,
            rss_bytes: 300 * 1024 * 1024,
            budget_bytes: 256 * 1024 * 1024,
        };
        assert!(b.to_string().contains("300MiB"), "{b}");
    }
}
