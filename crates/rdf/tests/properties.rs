//! Property-based tests for the RDF substrate: interning, graph index
//! consistency, and N-Triples round-tripping under arbitrary content.

use alex_rdf::{ntriples, Dataset, Graph, Interner, Term, Triple};
use proptest::prelude::*;

/// Strategy for IRI-ish strings (no whitespace or angle brackets).
fn iri() -> impl Strategy<Value = String> {
    "[a-z]{1,8}(/[a-z0-9_]{1,8}){0,3}".prop_map(|s| format!("http://e/{s}"))
}

/// Strategy for literal lexical forms, including nasty characters.
fn lexical() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[\\x20-\\x7e\u{e9}\u{4e16}\n\t\"\\\\]{0,24}").unwrap()
}

proptest! {
    #[test]
    fn interner_round_trips(strings in proptest::collection::vec(".{0,20}", 0..40)) {
        let mut interner = Interner::new();
        let syms: Vec<_> = strings.iter().map(|s| interner.intern(s)).collect();
        for (s, &sym) in strings.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(sym), s.as_str());
        }
        // Idempotence: interning again yields identical symbols.
        for (s, &sym) in strings.iter().zip(&syms) {
            prop_assert_eq!(interner.intern(s), sym);
        }
        let distinct: std::collections::HashSet<&String> = strings.iter().collect();
        prop_assert_eq!(interner.len(), distinct.len());
    }

    #[test]
    fn graph_indexes_agree_on_every_pattern(
        spec in proptest::collection::vec((0u32..6, 0u32..4, 0u32..6), 0..60)
    ) {
        let mut interner = Interner::new();
        let term = |interner: &mut Interner, tag: &str, i: u32| {
            Term::Iri(interner.intern(&format!("http://e/{tag}{i}")))
        };
        let triples: Vec<Triple> = spec
            .iter()
            .map(|&(s, p, o)| {
                Triple::new(
                    term(&mut interner, "s", s),
                    term(&mut interner, "p", p),
                    term(&mut interner, "o", o),
                )
            })
            .collect();
        let graph: Graph = triples.iter().copied().collect();

        // Reference: brute-force filtering over the deduplicated list.
        let mut dedup = triples.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(graph.len(), dedup.len());

        for &t in dedup.iter().take(10) {
            for (s, p, o) in [
                (Some(t.subject), None, None),
                (None, Some(t.predicate), None),
                (None, None, Some(t.object)),
                (Some(t.subject), Some(t.predicate), None),
                (Some(t.subject), None, Some(t.object)),
                (None, Some(t.predicate), Some(t.object)),
                (Some(t.subject), Some(t.predicate), Some(t.object)),
            ] {
                let got: Vec<Triple> = graph.matching(s, p, o).collect();
                let expected: Vec<Triple> = dedup
                    .iter()
                    .filter(|x| {
                        s.is_none_or(|s| x.subject == s)
                            && p.is_none_or(|p| x.predicate == p)
                            && o.is_none_or(|o| x.object == o)
                    })
                    .copied()
                    .collect();
                prop_assert_eq!(got.len(), expected.len());
                for e in &expected {
                    prop_assert!(got.contains(e));
                }
            }
        }
    }

    #[test]
    fn graph_remove_is_inverse_of_insert(
        spec in proptest::collection::vec((0u32..5, 0u32..3, 0u32..5), 1..40)
    ) {
        let mut interner = Interner::new();
        let mut graph = Graph::new();
        let triples: Vec<Triple> = spec
            .iter()
            .map(|&(s, p, o)| {
                Triple::new(
                    Term::Iri(interner.intern(&format!("s{s}"))),
                    Term::Iri(interner.intern(&format!("p{p}"))),
                    Term::Iri(interner.intern(&format!("o{o}"))),
                )
            })
            .collect();
        for t in &triples {
            graph.insert(*t);
        }
        for t in &triples {
            graph.remove(t);
        }
        prop_assert!(graph.is_empty());
        prop_assert_eq!(graph.matching(None, None, None).count(), 0);
    }

    #[test]
    fn ntriples_round_trip(
        rows in proptest::collection::vec((iri(), iri(), lexical()), 0..25)
    ) {
        let mut ds = Dataset::new("prop");
        for (s, p, lex) in &rows {
            ds.add_str(s, p, lex);
            ds.add_iri(s, p, "http://e/shared");
        }
        let doc = ntriples::serialize(&ds);
        let mut back = Dataset::new("copy");
        ntriples::parse_into(&mut back, &doc).expect("own output must parse");
        prop_assert_eq!(back.len(), ds.len());
        prop_assert_eq!(ntriples::serialize(&back), doc);
    }

    #[test]
    fn entity_views_cover_all_triples(
        rows in proptest::collection::vec((0u32..6, 0u32..4, ".{0,10}"), 1..40)
    ) {
        let mut ds = Dataset::new("prop");
        for (s, p, lex) in &rows {
            ds.add_str(&format!("http://e/s{s}"), &format!("http://e/p{p}"), lex);
        }
        let total: usize = ds
            .entities()
            .map(|e| {
                ds.entity(e)
                    .attributes
                    .iter()
                    .map(|a| a.objects.len())
                    .sum::<usize>()
            })
            .sum();
        prop_assert_eq!(total, ds.len());
    }
}
