//! Data-set statistics: the numbers a practitioner looks at before linking
//! two data sets (and the backing of the CLI's `stats` command).

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::interner::Sym;
use crate::term::Term;

/// Per-predicate usage statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateStats {
    /// The predicate IRI symbol.
    pub predicate: Sym,
    /// Number of triples using it.
    pub triples: usize,
    /// Number of distinct subjects.
    pub subjects: usize,
    /// Number of distinct objects.
    pub objects: usize,
    /// Fraction of objects that are literals.
    pub literal_frac: f64,
}

impl PredicateStats {
    /// Functionality `#subjects / #triples` (1.0 = single-valued).
    pub fn functionality(&self) -> f64 {
        self.subjects as f64 / self.triples.max(1) as f64
    }

    /// Inverse functionality `#objects / #triples` (1.0 = values identify
    /// their subject — the best linking evidence).
    pub fn inverse_functionality(&self) -> f64 {
        self.objects as f64 / self.triples.max(1) as f64
    }
}

/// Whole-data-set statistics.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Total triples.
    pub triples: usize,
    /// Distinct entities (IRI subjects).
    pub entities: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Distinct literal objects.
    pub literals: usize,
    /// Mean number of triples per entity.
    pub mean_degree: f64,
    /// Per-predicate breakdown, sorted by descending triple count.
    pub per_predicate: Vec<PredicateStats>,
}

impl DatasetStats {
    /// Compute statistics for a data set.
    pub fn of(ds: &Dataset) -> DatasetStats {
        struct Acc {
            triples: usize,
            subjects: std::collections::HashSet<Term>,
            objects: std::collections::HashSet<Term>,
            literal_objects: usize,
        }
        let mut acc: HashMap<Sym, Acc> = HashMap::new();
        let mut literals = std::collections::HashSet::new();
        for t in ds.graph().iter() {
            let p = t.predicate.as_iri().expect("IRI predicate");
            let e = acc.entry(p).or_insert_with(|| Acc {
                triples: 0,
                subjects: Default::default(),
                objects: Default::default(),
                literal_objects: 0,
            });
            e.triples += 1;
            e.subjects.insert(t.subject);
            e.objects.insert(t.object);
            if t.object.is_literal() {
                e.literal_objects += 1;
                literals.insert(t.object);
            }
        }
        let mut per_predicate: Vec<PredicateStats> = acc
            .into_iter()
            .map(|(predicate, a)| PredicateStats {
                predicate,
                triples: a.triples,
                subjects: a.subjects.len(),
                objects: a.objects.len(),
                literal_frac: a.literal_objects as f64 / a.triples.max(1) as f64,
            })
            .collect();
        per_predicate.sort_by(|a, b| {
            b.triples
                .cmp(&a.triples)
                .then(a.predicate.cmp(&b.predicate))
        });

        let entities = ds.entities().count();
        DatasetStats {
            triples: ds.len(),
            entities,
            predicates: per_predicate.len(),
            literals: literals.len(),
            mean_degree: ds.len() as f64 / entities.max(1) as f64,
            per_predicate,
        }
    }

    /// Render a compact text report (used by `alex stats`).
    pub fn report(&self, ds: &Dataset) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} triples, {} entities, {} predicates, {} distinct literals, {:.1} triples/entity",
            ds.name(),
            self.triples,
            self.entities,
            self.predicates,
            self.literals,
            self.mean_degree
        );
        let _ = writeln!(
            out,
            "  {:<44} {:>7} {:>6} {:>6} {:>5} {:>5}",
            "predicate", "triples", "fun", "ifun", "lit%", "subj"
        );
        for p in &self.per_predicate {
            let _ = writeln!(
                out,
                "  {:<44} {:>7} {:>6.2} {:>6.2} {:>4.0}% {:>5}",
                ds.resolve_sym(p.predicate),
                p.triples,
                p.functionality(),
                p.inverse_functionality(),
                p.literal_frac * 100.0,
                p.subjects
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new("S");
        ds.add_str("http://e/a", "http://e/name", "Alpha");
        ds.add_str("http://e/b", "http://e/name", "Beta");
        ds.add_str("http://e/a", "http://e/type", "thing");
        ds.add_str("http://e/b", "http://e/type", "thing");
        ds.add_iri("http://e/a", "http://e/knows", "http://e/b");
        ds
    }

    #[test]
    fn totals() {
        let ds = sample();
        let s = DatasetStats::of(&ds);
        assert_eq!(s.triples, 5);
        assert_eq!(s.entities, 2);
        assert_eq!(s.predicates, 3);
        assert_eq!(s.literals, 3); // Alpha, Beta, thing
        assert!((s.mean_degree - 2.5).abs() < 1e-12);
    }

    #[test]
    fn per_predicate_sorted_and_counted() {
        let ds = sample();
        let s = DatasetStats::of(&ds);
        assert_eq!(s.per_predicate[0].triples, 2);
        let name = ds.interner().get("http://e/name").unwrap();
        let p = s
            .per_predicate
            .iter()
            .find(|p| p.predicate == name)
            .unwrap();
        assert_eq!(p.subjects, 2);
        assert_eq!(p.objects, 2);
        assert_eq!(p.literal_frac, 1.0);
        assert_eq!(p.functionality(), 1.0);
        assert_eq!(p.inverse_functionality(), 1.0);
    }

    #[test]
    fn type_predicate_has_low_inverse_functionality() {
        let ds = sample();
        let s = DatasetStats::of(&ds);
        let ty = ds.interner().get("http://e/type").unwrap();
        let p = s.per_predicate.iter().find(|p| p.predicate == ty).unwrap();
        assert_eq!(p.objects, 1);
        assert!((p.inverse_functionality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_mentions_every_predicate() {
        let ds = sample();
        let s = DatasetStats::of(&ds);
        let report = s.report(&ds);
        for pred in ["http://e/name", "http://e/type", "http://e/knows"] {
            assert!(report.contains(pred), "{report}");
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new("E");
        let s = DatasetStats::of(&ds);
        assert_eq!(s.triples, 0);
        assert_eq!(s.entities, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert!(s.per_predicate.is_empty());
    }
}
