//! An in-memory indexed triple store.
//!
//! Triples are kept in three ordered indexes — SPO, POS, and OSP — so every
//! triple-pattern shape resolves to a contiguous range scan over one of them.
//! This is the classic RDF store layout (see e.g. Hexastore); three orders
//! suffice because every pattern with at least one bound position maps to a
//! prefix of one of the three.

use std::collections::BTreeSet;
use std::ops::Bound;

use crate::interner::Sym;
use crate::term::{Literal, LiteralKind, Term};
use crate::triple::Triple;

/// Smallest possible term under the derived `Ord` (for range lower bounds).
#[inline]
fn min_term() -> Term {
    Term::Iri(Sym::from_index(0))
}

/// Largest possible term under the derived `Ord` (for range upper bounds).
#[inline]
fn max_term() -> Term {
    Term::Literal(Literal {
        lexical: Sym::from_index(u32::MAX as usize),
        kind: LiteralKind::Typed(Sym::from_index(u32::MAX as usize)),
    })
}

/// An in-memory triple store with SPO / POS / OSP indexes.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    spo: BTreeSet<(Term, Term, Term)>,
    pos: BTreeSet<(Term, Term, Term)>,
    osp: BTreeSet<(Term, Term, Term)>,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        debug_assert!(!t.subject.is_literal(), "literal subject");
        debug_assert!(t.predicate.is_iri(), "non-IRI predicate");
        let fresh = self.spo.insert((t.subject, t.predicate, t.object));
        if fresh {
            self.pos.insert((t.predicate, t.object, t.subject));
            self.osp.insert((t.object, t.subject, t.predicate));
        }
        fresh
    }

    /// Remove a triple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Triple) -> bool {
        let was = self.spo.remove(&(t.subject, t.predicate, t.object));
        if was {
            self.pos.remove(&(t.predicate, t.object, t.subject));
            self.osp.remove(&(t.object, t.subject, t.predicate));
        }
        was
    }

    /// Whether the exact triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.contains(&(t.subject, t.predicate, t.object))
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterate over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| Triple::new(s, p, o))
    }

    /// Match a triple pattern; `None` positions are wildcards.
    ///
    /// Every shape resolves to a contiguous range scan on the most selective
    /// index, so the cost is proportional to the number of matches.
    pub fn matching<'a>(
        &'a self,
        s: Option<Term>,
        p: Option<Term>,
        o: Option<Term>,
    ) -> Box<dyn Iterator<Item = Triple> + 'a> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(&t) {
                    Box::new(std::iter::once(t))
                } else {
                    Box::new(std::iter::empty())
                }
            }
            (Some(s), Some(p), None) => Box::new(
                self.spo
                    .range((
                        Bound::Included((s, p, min_term())),
                        Bound::Included((s, p, max_term())),
                    ))
                    .map(|&(s, p, o)| Triple::new(s, p, o)),
            ),
            (Some(s), None, None) => Box::new(
                self.spo
                    .range((
                        Bound::Included((s, min_term(), min_term())),
                        Bound::Included((s, max_term(), max_term())),
                    ))
                    .map(|&(s, p, o)| Triple::new(s, p, o)),
            ),
            (Some(s), None, Some(o)) => Box::new(
                self.osp
                    .range((
                        Bound::Included((o, s, min_term())),
                        Bound::Included((o, s, max_term())),
                    ))
                    .map(|&(o, s, p)| Triple::new(s, p, o)),
            ),
            (None, Some(p), Some(o)) => Box::new(
                self.pos
                    .range((
                        Bound::Included((p, o, min_term())),
                        Bound::Included((p, o, max_term())),
                    ))
                    .map(|&(p, o, s)| Triple::new(s, p, o)),
            ),
            (None, Some(p), None) => Box::new(
                self.pos
                    .range((
                        Bound::Included((p, min_term(), min_term())),
                        Bound::Included((p, max_term(), max_term())),
                    ))
                    .map(|&(p, o, s)| Triple::new(s, p, o)),
            ),
            (None, None, Some(o)) => Box::new(
                self.osp
                    .range((
                        Bound::Included((o, min_term(), min_term())),
                        Bound::Included((o, max_term(), max_term())),
                    ))
                    .map(|&(o, s, p)| Triple::new(s, p, o)),
            ),
            (None, None, None) => Box::new(self.iter()),
        }
    }

    /// Objects of all triples `(s, p, ?o)`.
    pub fn objects(&self, s: Term, p: Term) -> impl Iterator<Item = Term> + '_ {
        self.matching(Some(s), Some(p), None).map(|t| t.object)
    }

    /// Subjects of all triples `(?s, p, o)`.
    pub fn subjects_with(&self, p: Term, o: Term) -> impl Iterator<Item = Term> + '_ {
        self.matching(None, Some(p), Some(o)).map(|t| t.subject)
    }

    /// Distinct subjects, in term order.
    pub fn subjects(&self) -> impl Iterator<Item = Term> + '_ {
        DistinctFirst {
            inner: self.spo.iter(),
            last: None,
        }
    }

    /// Distinct predicates, in term order.
    pub fn predicates(&self) -> impl Iterator<Item = Term> + '_ {
        DistinctFirst {
            inner: self.pos.iter(),
            last: None,
        }
    }

    /// Number of triples whose subject is `s`.
    pub fn subject_degree(&self, s: Term) -> usize {
        self.matching(Some(s), None, None).count()
    }
}

/// Yields the first tuple component, skipping consecutive duplicates.
/// Works because the underlying BTreeSet iterates in sorted order.
struct DistinctFirst<'a> {
    inner: std::collections::btree_set::Iter<'a, (Term, Term, Term)>,
    last: Option<Term>,
}

impl Iterator for DistinctFirst<'_> {
    type Item = Term;

    fn next(&mut self) -> Option<Term> {
        for &(first, _, _) in self.inner.by_ref() {
            if self.last != Some(first) {
                self.last = Some(first);
                return Some(first);
            }
        }
        None
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn t(i: &mut Interner, s: &str, p: &str, o: &str) -> Triple {
        Triple::new(
            Term::Iri(i.intern(s)),
            Term::Iri(i.intern(p)),
            Term::Iri(i.intern(o)),
        )
    }

    fn sample() -> (Interner, Graph) {
        let mut i = Interner::new();
        let mut g = Graph::new();
        g.insert(t(&mut i, "s1", "p1", "o1"));
        g.insert(t(&mut i, "s1", "p1", "o2"));
        g.insert(t(&mut i, "s1", "p2", "o1"));
        g.insert(t(&mut i, "s2", "p1", "o1"));
        (i, g)
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut i = Interner::new();
        let mut g = Graph::new();
        let tr = t(&mut i, "s", "p", "o");
        assert!(g.insert(tr));
        assert!(!g.insert(tr));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut i = Interner::new();
        let mut g = Graph::new();
        let tr = t(&mut i, "s", "p", "o");
        g.insert(tr);
        assert!(g.remove(&tr));
        assert!(!g.remove(&tr));
        assert!(g.is_empty());
        assert_eq!(g.matching(None, Some(tr.predicate), None).count(), 0);
        assert_eq!(g.matching(None, None, Some(tr.object)).count(), 0);
    }

    #[test]
    fn match_fully_bound() {
        let (mut i, g) = sample();
        let present = t(&mut i, "s1", "p1", "o1");
        let absent = t(&mut i, "s9", "p1", "o1");
        assert_eq!(
            g.matching(
                Some(present.subject),
                Some(present.predicate),
                Some(present.object)
            )
            .count(),
            1
        );
        assert_eq!(
            g.matching(
                Some(absent.subject),
                Some(absent.predicate),
                Some(absent.object)
            )
            .count(),
            0
        );
    }

    #[test]
    fn match_sp_wildcard_o() {
        let (mut i, g) = sample();
        let s1 = Term::Iri(i.intern("s1"));
        let p1 = Term::Iri(i.intern("p1"));
        assert_eq!(g.matching(Some(s1), Some(p1), None).count(), 2);
    }

    #[test]
    fn match_s_only() {
        let (mut i, g) = sample();
        let s1 = Term::Iri(i.intern("s1"));
        assert_eq!(g.matching(Some(s1), None, None).count(), 3);
    }

    #[test]
    fn match_so_wildcard_p() {
        let (mut i, g) = sample();
        let s1 = Term::Iri(i.intern("s1"));
        let o1 = Term::Iri(i.intern("o1"));
        assert_eq!(g.matching(Some(s1), None, Some(o1)).count(), 2);
    }

    #[test]
    fn match_po_wildcard_s() {
        let (mut i, g) = sample();
        let p1 = Term::Iri(i.intern("p1"));
        let o1 = Term::Iri(i.intern("o1"));
        assert_eq!(g.matching(None, Some(p1), Some(o1)).count(), 2);
    }

    #[test]
    fn match_p_only() {
        let (mut i, g) = sample();
        let p1 = Term::Iri(i.intern("p1"));
        assert_eq!(g.matching(None, Some(p1), None).count(), 3);
    }

    #[test]
    fn match_o_only() {
        let (mut i, g) = sample();
        let o1 = Term::Iri(i.intern("o1"));
        assert_eq!(g.matching(None, None, Some(o1)).count(), 3);
    }

    #[test]
    fn match_all_wildcards() {
        let (_, g) = sample();
        assert_eq!(g.matching(None, None, None).count(), 4);
    }

    #[test]
    fn distinct_subjects_and_predicates() {
        let (_, g) = sample();
        assert_eq!(g.subjects().count(), 2);
        assert_eq!(g.predicates().count(), 2);
    }

    #[test]
    fn objects_helper() {
        let (mut i, g) = sample();
        let s1 = Term::Iri(i.intern("s1"));
        let p1 = Term::Iri(i.intern("p1"));
        let objs: Vec<Term> = g.objects(s1, p1).collect();
        assert_eq!(objs.len(), 2);
    }

    #[test]
    fn subject_degree_counts_triples() {
        let (mut i, g) = sample();
        let s1 = Term::Iri(i.intern("s1"));
        assert_eq!(g.subject_degree(s1), 3);
    }

    #[test]
    fn from_iterator_collects() {
        let mut i = Interner::new();
        let triples = vec![t(&mut i, "a", "p", "b"), t(&mut i, "c", "p", "d")];
        let g: Graph = triples.into_iter().collect();
        assert_eq!(g.len(), 2);
    }
}
