//! N-Triples parsing and serialization.
//!
//! Supports the full term syntax used by the LOD dumps the paper works with:
//! IRIs, blank nodes, plain / language-tagged / datatyped literals, comments,
//! and `\uXXXX` / `\UXXXXXXXX` escapes.

use crate::dataset::Dataset;
use crate::error::{RdfError, Result};
use crate::term::{unescape_literal, Term};
use crate::triple::Triple;

/// Parse a full N-Triples document into `ds`. Returns the number of triples
/// inserted (duplicates in the input count once).
pub fn parse_into(ds: &mut Dataset, input: &str) -> Result<usize> {
    let mut inserted = 0;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(ds, line, lineno + 1)?;
        if ds.insert(triple) {
            inserted += 1;
        }
    }
    Ok(inserted)
}

/// Parse a single N-Triples statement (one line, ending in `.`).
pub fn parse_line(ds: &mut Dataset, line: &str, lineno: usize) -> Result<Triple> {
    let mut cursor = Cursor { rest: line, lineno };
    let subject = cursor.term(ds)?;
    cursor.skip_ws();
    let predicate = cursor.term(ds)?;
    cursor.skip_ws();
    let object = cursor.term(ds)?;
    cursor.skip_ws();
    if !cursor.rest.starts_with('.') {
        return Err(cursor.err("expected '.' terminator"));
    }
    cursor.rest = cursor.rest[1..].trim_start();
    if !cursor.rest.is_empty() && !cursor.rest.starts_with('#') {
        return Err(cursor.err("unexpected trailing content after '.'"));
    }
    Triple::checked(subject, predicate, object)
}

/// Serialize a data set's graph as an N-Triples document.
pub fn serialize(ds: &Dataset) -> String {
    let mut out = String::new();
    for t in ds.graph().iter() {
        out.push_str(&t.to_ntriples(ds.interner()));
        out.push('\n');
    }
    out
}

struct Cursor<'a> {
    rest: &'a str,
    lineno: usize,
}

impl Cursor<'_> {
    fn err(&self, message: &str) -> RdfError {
        RdfError::Syntax {
            line: self.lineno,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn term(&mut self, ds: &mut Dataset) -> Result<Term> {
        self.skip_ws();
        if let Some(stripped) = self.rest.strip_prefix('<') {
            let end = stripped
                .find('>')
                .ok_or_else(|| self.err("unterminated IRI: missing '>'"))?;
            let iri = &stripped[..end];
            self.rest = &stripped[end + 1..];
            return Ok(ds.iri(iri));
        }
        if let Some(stripped) = self.rest.strip_prefix("_:") {
            let end = stripped
                .find(|c: char| c.is_whitespace())
                .unwrap_or(stripped.len());
            if end == 0 {
                return Err(self.err("empty blank node label"));
            }
            let label = &stripped[..end];
            self.rest = &stripped[end..];
            let sym = ds.interner_mut().intern(label);
            return Ok(Term::Blank(sym));
        }
        if let Some(stripped) = self.rest.strip_prefix('"') {
            let end = find_closing_quote(stripped)
                .ok_or_else(|| self.err("unterminated literal: missing '\"'"))?;
            let raw = &stripped[..end];
            let lexical = unescape_literal(raw)
                .ok_or_else(|| self.err("malformed escape sequence in literal"))?;
            self.rest = &stripped[end + 1..];
            if let Some(after_at) = self.rest.strip_prefix('@') {
                let end = after_at
                    .find(|c: char| c.is_whitespace())
                    .unwrap_or(after_at.len());
                if end == 0 {
                    return Err(self.err("empty language tag"));
                }
                let tag = &after_at[..end];
                self.rest = &after_at[end..];
                return Ok(ds.lang(&lexical, tag));
            }
            if let Some(after_caret) = self.rest.strip_prefix("^^<") {
                let end = after_caret
                    .find('>')
                    .ok_or_else(|| self.err("unterminated datatype IRI"))?;
                let dt = &after_caret[..end];
                self.rest = &after_caret[end + 1..];
                return Ok(ds.typed(&lexical, dt));
            }
            return Ok(ds.plain(&lexical));
        }
        Err(self.err("expected a term (<iri>, _:blank, or \"literal\")"))
    }
}

/// Index of the closing unescaped quote in a string that starts just after
/// the opening quote.
fn find_closing_quote(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LiteralKind;

    #[test]
    fn parse_iri_triple() {
        let mut ds = Dataset::new("t");
        let n = parse_into(&mut ds, "<http://e/s> <http://e/p> <http://e/o> .\n").unwrap();
        assert_eq!(n, 1);
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn parse_plain_literal() {
        let mut ds = Dataset::new("t");
        parse_into(&mut ds, "<http://e/s> <http://e/p> \"hello world\" .").unwrap();
        let t = ds.graph().iter().next().unwrap();
        assert!(t.object.is_literal());
        assert_eq!(ds.resolve(t.object), "hello world");
    }

    #[test]
    fn parse_lang_literal() {
        let mut ds = Dataset::new("t");
        parse_into(&mut ds, "<http://e/s> <http://e/p> \"bonjour\"@fr .").unwrap();
        let t = ds.graph().iter().next().unwrap();
        let lit = t.object.as_literal().unwrap();
        assert!(matches!(lit.kind, LiteralKind::Lang(_)));
    }

    #[test]
    fn parse_typed_literal() {
        let mut ds = Dataset::new("t");
        parse_into(
            &mut ds,
            "<http://e/s> <http://e/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
        )
        .unwrap();
        let t = ds.graph().iter().next().unwrap();
        let lit = t.object.as_literal().unwrap();
        assert!(matches!(lit.kind, LiteralKind::Typed(_)));
    }

    #[test]
    fn parse_blank_nodes() {
        let mut ds = Dataset::new("t");
        parse_into(&mut ds, "_:b0 <http://e/p> _:b1 .").unwrap();
        let t = ds.graph().iter().next().unwrap();
        assert!(t.subject.is_blank());
        assert!(t.object.is_blank());
    }

    #[test]
    fn parse_escaped_quote_in_literal() {
        let mut ds = Dataset::new("t");
        parse_into(&mut ds, r#"<http://e/s> <http://e/p> "say \"hi\"" ."#).unwrap();
        let t = ds.graph().iter().next().unwrap();
        assert_eq!(ds.resolve(t.object), "say \"hi\"");
    }

    #[test]
    fn skip_comments_and_blank_lines() {
        let mut ds = Dataset::new("t");
        let doc = "# comment\n\n<http://e/s> <http://e/p> <http://e/o> . # trailing\n";
        assert_eq!(parse_into(&mut ds, doc).unwrap(), 1);
    }

    #[test]
    fn duplicate_lines_count_once() {
        let mut ds = Dataset::new("t");
        let doc =
            "<http://e/s> <http://e/p> <http://e/o> .\n<http://e/s> <http://e/p> <http://e/o> .\n";
        assert_eq!(parse_into(&mut ds, doc).unwrap(), 1);
    }

    #[test]
    fn error_on_missing_dot() {
        let mut ds = Dataset::new("t");
        let err = parse_into(&mut ds, "<http://e/s> <http://e/p> <http://e/o>").unwrap_err();
        assert!(matches!(err, RdfError::Syntax { line: 1, .. }));
    }

    #[test]
    fn error_on_unterminated_iri() {
        let mut ds = Dataset::new("t");
        assert!(parse_into(&mut ds, "<http://e/s <http://e/p> <http://e/o> .").is_err());
    }

    #[test]
    fn error_on_literal_subject() {
        let mut ds = Dataset::new("t");
        let err = parse_into(&mut ds, "\"lit\" <http://e/p> <http://e/o> .").unwrap_err();
        assert!(matches!(err, RdfError::IllegalTermPosition { .. }));
    }

    #[test]
    fn error_on_trailing_garbage() {
        let mut ds = Dataset::new("t");
        assert!(parse_into(&mut ds, "<http://e/s> <http://e/p> <http://e/o> . garbage").is_err());
    }

    #[test]
    fn round_trip_through_serialize() {
        let mut ds = Dataset::new("t");
        let doc = concat!(
            "<http://e/s> <http://e/p> \"a\\nb\" .\n",
            "<http://e/s> <http://e/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
            "<http://e/s> <http://e/q> \"x\"@en .\n",
            "_:b0 <http://e/p> <http://e/o> .\n",
        );
        parse_into(&mut ds, doc).unwrap();
        let serialized = serialize(&ds);
        let mut ds2 = Dataset::new("t2");
        parse_into(&mut ds2, &serialized).unwrap();
        assert_eq!(ds2.len(), ds.len());
        let again = serialize(&ds2);
        assert_eq!(serialized, again);
    }
}
