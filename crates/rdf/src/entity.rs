//! Entity views: an entity is a subject IRI together with its attributes.
//!
//! The paper represents an entity as a set of attributes, where an attribute
//! is a (predicate label, predicate value) pair — e.g.
//! `{(name, "LeBron James"), (birth date, 1984), (age, 29)}` (§4.1). An
//! [`Entity`] is exactly that view, materialized from a [`crate::Graph`].

use crate::graph::Graph;
use crate::interner::Sym;
use crate::term::Term;

/// One attribute of an entity: a predicate and its object values.
///
/// RDF allows repeated predicates, so `objects` can hold several values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// The predicate IRI symbol.
    pub predicate: Sym,
    /// All object terms asserted for this predicate.
    pub objects: Vec<Term>,
}

/// A materialized entity view: subject term plus grouped attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// The subject term (an IRI or blank node).
    pub term: Term,
    /// Attributes grouped by predicate, in predicate order.
    pub attributes: Vec<Attribute>,
}

impl Entity {
    /// Materialize the entity view of `subject` from `graph`.
    ///
    /// Returns an entity with no attributes if the subject has no triples.
    pub fn of(graph: &Graph, subject: Term) -> Entity {
        let mut attributes: Vec<Attribute> = Vec::new();
        // `matching` yields SPO order, so triples arrive grouped by predicate.
        for t in graph.matching(Some(subject), None, None) {
            let pred = t
                .predicate
                .as_iri()
                .expect("graph invariant: predicate is an IRI");
            match attributes.last_mut() {
                Some(attr) if attr.predicate == pred => attr.objects.push(t.object),
                _ => attributes.push(Attribute {
                    predicate: pred,
                    objects: vec![t.object],
                }),
            }
        }
        Entity {
            term: subject,
            attributes,
        }
    }

    /// Number of distinct predicates.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Objects for a given predicate, if present.
    pub fn objects(&self, predicate: Sym) -> Option<&[Term]> {
        self.attributes
            .iter()
            .find(|a| a.predicate == predicate)
            .map(|a| a.objects.as_slice())
    }

    /// First object for a given predicate, if present.
    pub fn first_object(&self, predicate: Sym) -> Option<Term> {
        self.objects(predicate).and_then(|os| os.first().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::term::Literal;
    use crate::triple::Triple;

    fn build() -> (Interner, Graph, Term) {
        let mut i = Interner::new();
        let mut g = Graph::new();
        let lebron = Term::Iri(i.intern("http://e/LeBron"));
        let name = Term::Iri(i.intern("http://e/name"));
        let team = Term::Iri(i.intern("http://e/team"));
        g.insert(Triple::new(
            lebron,
            name,
            Term::Literal(Literal::plain(i.intern("LeBron James"))),
        ));
        g.insert(Triple::new(
            lebron,
            team,
            Term::Literal(Literal::plain(i.intern("Heat"))),
        ));
        g.insert(Triple::new(
            lebron,
            team,
            Term::Literal(Literal::plain(i.intern("Cavaliers"))),
        ));
        (i, g, lebron)
    }

    #[test]
    fn groups_objects_by_predicate() {
        let (mut i, g, lebron) = build();
        let e = Entity::of(&g, lebron);
        assert_eq!(e.arity(), 2);
        let team = i.intern("http://e/team");
        assert_eq!(e.objects(team).unwrap().len(), 2);
    }

    #[test]
    fn missing_predicate_returns_none() {
        let (mut i, g, lebron) = build();
        let e = Entity::of(&g, lebron);
        let missing = i.intern("http://e/height");
        assert!(e.objects(missing).is_none());
        assert!(e.first_object(missing).is_none());
    }

    #[test]
    fn first_object_picks_one() {
        let (mut i, g, lebron) = build();
        let e = Entity::of(&g, lebron);
        let name = i.intern("http://e/name");
        assert!(e.first_object(name).is_some());
    }

    #[test]
    fn unknown_subject_has_no_attributes() {
        let (mut i, g, _) = build();
        let ghost = Term::Iri(i.intern("http://e/ghost"));
        let e = Entity::of(&g, ghost);
        assert_eq!(e.arity(), 0);
    }
}
