//! # alex-rdf — RDF substrate for the ALEX reproduction
//!
//! This crate provides the RDF data model the rest of the stack builds on:
//!
//! * [`Interner`] / [`Sym`] — string interning so terms are small and `Copy`;
//! * [`Term`], [`Literal`] — IRIs, blank nodes, and typed literals;
//! * [`Triple`], [`Graph`] — an indexed triple store (SPO/POS/OSP) with
//!   range-scan pattern matching;
//! * [`Entity`] — the paper's entity view: a subject and its attributes;
//! * [`Dataset`], [`EntityIndex`] — a named data set with dense entity ids;
//! * [`ntriples`] — N-Triples parsing and serialization;
//! * [`vocab`] — well-known IRIs (`owl:sameAs`, `rdf:type`, XSD datatypes).
//!
//! ```
//! use alex_rdf::Dataset;
//!
//! let mut ds = Dataset::new("demo");
//! ds.add_str("http://e/LeBron", "http://e/name", "LeBron James");
//! ds.add_typed("http://e/LeBron", "http://e/birth", "1984", alex_rdf::vocab::XSD_GYEAR);
//! assert_eq!(ds.entities().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod entity;
pub mod error;
pub mod graph;
pub mod interner;
pub mod ntriples;
pub mod stats;
pub mod term;
pub mod triple;
pub mod turtle;
pub mod vocab;

pub use dataset::{Dataset, EntityIndex};
pub use entity::{Attribute, Entity};
pub use error::{RdfError, Result};
pub use graph::Graph;
pub use interner::{Interner, Sym};
pub use stats::{DatasetStats, PredicateStats};
pub use term::{Literal, LiteralKind, Term};
pub use triple::Triple;
