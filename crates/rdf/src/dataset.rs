//! A named RDF data set: an interner plus an indexed graph, with convenience
//! builders and an entity index assigning dense ids to entities.

use std::collections::HashMap;

use crate::entity::Entity;
use crate::graph::Graph;
use crate::interner::{Interner, Sym};
use crate::term::{Literal, Term};
use crate::triple::Triple;

/// A named RDF data set. This is the unit ALEX links: every experiment pairs
/// two `Dataset`s (e.g. DBpedia and NYTimes in the paper's Table 1).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    name: String,
    interner: Interner,
    graph: Graph,
}

impl Dataset {
    /// Create an empty data set with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Dataset {
            name: name.into(),
            interner: Interner::new(),
            graph: Graph::new(),
        }
    }

    /// The data set's name (e.g. "DBpedia").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the underlying graph.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The data set's interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the data set holds no triples.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Intern an IRI and wrap it as a term.
    pub fn iri(&mut self, iri: &str) -> Term {
        Term::Iri(self.interner.intern(iri))
    }

    /// Intern a plain literal and wrap it as a term.
    pub fn plain(&mut self, lexical: &str) -> Term {
        Term::Literal(Literal::plain(self.interner.intern(lexical)))
    }

    /// Intern a datatyped literal and wrap it as a term.
    pub fn typed(&mut self, lexical: &str, datatype: &str) -> Term {
        let lex = self.interner.intern(lexical);
        let dt = self.interner.intern(datatype);
        Term::Literal(Literal::typed(lex, dt))
    }

    /// Intern a language-tagged literal and wrap it as a term.
    pub fn lang(&mut self, lexical: &str, tag: &str) -> Term {
        let lex = self.interner.intern(lexical);
        let t = self.interner.intern(tag);
        Term::Literal(Literal::lang(lex, t))
    }

    /// Insert an (IRI, IRI, IRI) triple from strings.
    pub fn add_iri(&mut self, s: &str, p: &str, o: &str) -> bool {
        let (s, p, o) = (self.iri(s), self.iri(p), self.iri(o));
        self.graph.insert(Triple::new(s, p, o))
    }

    /// Insert an (IRI, IRI, plain literal) triple from strings.
    pub fn add_str(&mut self, s: &str, p: &str, lexical: &str) -> bool {
        let (s, p) = (self.iri(s), self.iri(p));
        let o = self.plain(lexical);
        self.graph.insert(Triple::new(s, p, o))
    }

    /// Insert an (IRI, IRI, datatyped literal) triple from strings.
    pub fn add_typed(&mut self, s: &str, p: &str, lexical: &str, datatype: &str) -> bool {
        let (s, p) = (self.iri(s), self.iri(p));
        let o = self.typed(lexical, datatype);
        self.graph.insert(Triple::new(s, p, o))
    }

    /// Insert a prebuilt triple.
    pub fn insert(&mut self, t: Triple) -> bool {
        self.graph.insert(t)
    }

    /// Resolve any term's primary string (IRI text, blank label, or lexical form).
    pub fn resolve(&self, term: Term) -> &str {
        match term {
            Term::Iri(s) | Term::Blank(s) => self.interner.resolve(s),
            Term::Literal(l) => self.interner.resolve(l.lexical),
        }
    }

    /// Resolve a symbol.
    pub fn resolve_sym(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Materialize the entity view of a subject.
    pub fn entity(&self, subject: Term) -> Entity {
        Entity::of(&self.graph, subject)
    }

    /// All IRI subjects (the data set's entities), in term order.
    pub fn entities(&self) -> impl Iterator<Item = Term> + '_ {
        self.graph.subjects().filter(|t| t.is_iri())
    }

    /// Build a dense entity index over the current subjects.
    pub fn entity_index(&self) -> EntityIndex {
        EntityIndex::build(self)
    }
}

/// Dense ids for the entities of one data set.
///
/// ALEX's link space refers to entities by `(side, EntityId)`; the index maps
/// between dense ids and terms.
#[derive(Debug, Clone, Default)]
pub struct EntityIndex {
    terms: Vec<Term>,
    ids: HashMap<Term, u32>,
}

impl EntityIndex {
    /// Build the index from a data set's current subjects.
    pub fn build(ds: &Dataset) -> Self {
        let terms: Vec<Term> = ds.entities().collect();
        let ids = terms
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        EntityIndex { terms, ids }
    }

    /// Number of indexed entities.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term for a dense id.
    pub fn term(&self, id: u32) -> Term {
        self.terms[id as usize]
    }

    /// The dense id for a term, if indexed.
    pub fn id(&self, term: Term) -> Option<u32> {
        self.ids.get(&term).copied()
    }

    /// Iterate `(id, term)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Term)> + '_ {
        self.terms.iter().enumerate().map(|(i, &t)| (i as u32, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new("test");
        ds.add_str("http://e/a", "http://e/name", "Alpha");
        ds.add_str("http://e/b", "http://e/name", "Beta");
        ds.add_iri("http://e/a", "http://e/knows", "http://e/b");
        ds
    }

    #[test]
    fn name_and_len() {
        let ds = sample();
        assert_eq!(ds.name(), "test");
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
    }

    #[test]
    fn entities_are_iri_subjects() {
        let ds = sample();
        assert_eq!(ds.entities().count(), 2);
    }

    #[test]
    fn entity_view_from_dataset() {
        let mut ds = sample();
        let a = ds.iri("http://e/a");
        let e = ds.entity(a);
        assert_eq!(e.arity(), 2);
    }

    #[test]
    fn resolve_terms() {
        let mut ds = sample();
        let a = ds.iri("http://e/a");
        assert_eq!(ds.resolve(a), "http://e/a");
        let lit = ds.plain("hello");
        assert_eq!(ds.resolve(lit), "hello");
    }

    #[test]
    fn typed_and_lang_literals() {
        let mut ds = Dataset::new("t");
        let t1 = ds.typed("1984", crate::vocab::XSD_GYEAR);
        let t2 = ds.lang("hello", "en");
        assert!(t1.is_literal());
        assert!(t2.is_literal());
        assert_ne!(t1, t2);
    }

    #[test]
    fn entity_index_round_trips() {
        let ds = sample();
        let idx = ds.entity_index();
        assert_eq!(idx.len(), 2);
        for (id, term) in idx.iter() {
            assert_eq!(idx.id(term), Some(id));
            assert_eq!(idx.term(id), term);
        }
    }

    #[test]
    fn entity_index_unknown_term() {
        let mut ds = sample();
        let idx = ds.entity_index();
        let ghost = ds.iri("http://e/ghost");
        assert_eq!(idx.id(ghost), None);
    }

    #[test]
    fn add_is_set_semantics() {
        let mut ds = Dataset::new("t");
        assert!(ds.add_str("http://e/a", "http://e/p", "v"));
        assert!(!ds.add_str("http://e/a", "http://e/p", "v"));
    }
}
