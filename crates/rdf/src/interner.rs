//! String interning.
//!
//! RDF data is extremely repetitive: the same IRIs and lexical forms occur in
//! many triples. Interning maps each distinct string to a dense [`Sym`] (a
//! `u32`), which makes terms `Copy`, comparisons O(1), and the triple store
//! compact. Every [`crate::Dataset`] owns one interner; symbols are only
//! meaningful relative to the interner that produced them.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{RdfError, Result};

/// An interned string: a dense index into an [`Interner`].
///
/// `Sym` is deliberately opaque — construct one only through
/// [`Interner::intern`] and resolve it through [`Interner::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Raw index, useful for dense side tables keyed by symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a symbol from a raw index previously obtained via [`Sym::index`].
    ///
    /// The caller must ensure the index came from the same interner.
    #[inline]
    pub fn from_index(index: usize) -> Sym {
        Sym(u32::try_from(index).expect("interner overflow: more than u32::MAX symbols"))
    }
}

/// A string interner with O(1) amortized interning and O(1) resolution.
///
/// Strings are stored once behind an `Arc<str>` shared between the lookup map
/// and the resolution table.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    lookup: HashMap<Arc<str>, Sym>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner with capacity for `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        Interner {
            lookup: HashMap::with_capacity(n),
            strings: Vec::with_capacity(n),
        }
    }

    /// Intern `s`, returning its symbol. Idempotent: interning the same string
    /// twice yields the same symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Sym::from_index(self.strings.len());
        self.strings.push(Arc::clone(&arc));
        self.lookup.insert(arc, sym);
        sym
    }

    /// Look up the symbol for `s` without interning it.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.lookup.get(s).copied()
    }

    /// Resolve a symbol to its string. Panics on a foreign symbol in debug
    /// builds; use [`Interner::try_resolve`] for a fallible variant.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Fallible resolution for symbols that may come from another interner.
    pub fn try_resolve(&self, sym: Sym) -> Result<&str> {
        self.strings
            .get(sym.index())
            .map(|s| s.as_ref())
            .ok_or(RdfError::UnknownSymbol(sym.0))
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym::from_index(i), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("http://example.org/a");
        let b = i.intern("http://example.org/a");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let sym = i.intern("LeBron James");
        assert_eq!(i.resolve(sym), "LeBron James");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        let sym = i.intern("present");
        assert_eq!(i.get("present"), Some(sym));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn try_resolve_rejects_foreign_symbol() {
        let i = Interner::new();
        let foreign = Sym::from_index(42);
        assert_eq!(i.try_resolve(foreign), Err(RdfError::UnknownSymbol(42)));
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let collected: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["x", "y"]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        for n in 0..100 {
            let sym = i.intern(&format!("s{n}"));
            assert_eq!(sym.index(), n);
        }
    }
}
