//! RDF terms: IRIs, blank nodes, and typed literals.
//!
//! Terms are small `Copy` values over interned symbols, so triples and
//! indexes stay compact and comparisons are integer comparisons.

use std::fmt;

use crate::interner::{Interner, Sym};

/// The kind qualifier of a literal: plain, language-tagged, or datatyped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LiteralKind {
    /// A plain literal with no language tag or datatype (`"foo"`).
    Plain,
    /// A language-tagged literal (`"foo"@en`); the symbol is the tag.
    Lang(Sym),
    /// A datatyped literal (`"42"^^<http://www.w3.org/2001/XMLSchema#integer>`);
    /// the symbol is the datatype IRI.
    Typed(Sym),
}

/// An RDF literal: a lexical form plus a [`LiteralKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// Interned lexical form.
    pub lexical: Sym,
    /// Plain / language-tagged / datatyped.
    pub kind: LiteralKind,
}

impl Literal {
    /// A plain literal.
    pub fn plain(lexical: Sym) -> Self {
        Literal {
            lexical,
            kind: LiteralKind::Plain,
        }
    }

    /// A language-tagged literal.
    pub fn lang(lexical: Sym, tag: Sym) -> Self {
        Literal {
            lexical,
            kind: LiteralKind::Lang(tag),
        }
    }

    /// A datatyped literal.
    pub fn typed(lexical: Sym, datatype: Sym) -> Self {
        Literal {
            lexical,
            kind: LiteralKind::Typed(datatype),
        }
    }
}

/// An RDF term. `Ord` is derived so terms can live in ordered indexes; the
/// ordering is an arbitrary but stable total order, not SPARQL value order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An IRI reference.
    Iri(Sym),
    /// A blank node with an interned label.
    Blank(Sym),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Whether this term is an IRI.
    #[inline]
    pub fn is_iri(self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Whether this term is a blank node.
    #[inline]
    pub fn is_blank(self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// Whether this term is a literal.
    #[inline]
    pub fn is_literal(self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The IRI symbol, if this term is an IRI.
    #[inline]
    pub fn as_iri(self) -> Option<Sym> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal, if this term is one.
    #[inline]
    pub fn as_literal(self) -> Option<Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// Render this term in N-Triples syntax using `interner` for resolution.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> TermDisplay<'a> {
        TermDisplay {
            term: self,
            interner,
        }
    }
}

/// Helper implementing `Display` for a term against a specific interner.
pub struct TermDisplay<'a> {
    term: &'a Term,
    interner: &'a Interner,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self.term {
            Term::Iri(s) => write!(f, "<{}>", self.interner.resolve(s)),
            Term::Blank(s) => write!(f, "_:{}", self.interner.resolve(s)),
            Term::Literal(l) => {
                write!(
                    f,
                    "\"{}\"",
                    escape_literal(self.interner.resolve(l.lexical))
                )?;
                match l.kind {
                    LiteralKind::Plain => Ok(()),
                    LiteralKind::Lang(tag) => write!(f, "@{}", self.interner.resolve(tag)),
                    LiteralKind::Typed(dt) => write!(f, "^^<{}>", self.interner.resolve(dt)),
                }
            }
        }
    }
}

/// Escape a literal lexical form for N-Triples output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Unescape an N-Triples literal lexical form. Returns `None` on a malformed
/// escape sequence.
pub fn unescape_literal(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            'U' => {
                let hex: String = chars.by_ref().take(8).collect();
                if hex.len() != 8 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Interner, Term, Term, Term) {
        let mut i = Interner::new();
        let iri = Term::Iri(i.intern("http://example.org/x"));
        let blank = Term::Blank(i.intern("b0"));
        let lex = i.intern("hello");
        let lit = Term::Literal(Literal::plain(lex));
        (i, iri, blank, lit)
    }

    #[test]
    fn kind_predicates() {
        let (_, iri, blank, lit) = setup();
        assert!(iri.is_iri() && !iri.is_blank() && !iri.is_literal());
        assert!(blank.is_blank());
        assert!(lit.is_literal());
    }

    #[test]
    fn as_iri_and_as_literal() {
        let (_, iri, _, lit) = setup();
        assert!(iri.as_iri().is_some());
        assert!(lit.as_iri().is_none());
        assert!(lit.as_literal().is_some());
        assert!(iri.as_literal().is_none());
    }

    #[test]
    fn display_iri() {
        let (i, iri, _, _) = setup();
        assert_eq!(iri.display(&i).to_string(), "<http://example.org/x>");
    }

    #[test]
    fn display_blank() {
        let (i, _, blank, _) = setup();
        assert_eq!(blank.display(&i).to_string(), "_:b0");
    }

    #[test]
    fn display_plain_literal() {
        let (i, _, _, lit) = setup();
        assert_eq!(lit.display(&i).to_string(), "\"hello\"");
    }

    #[test]
    fn display_lang_literal() {
        let mut i = Interner::new();
        let lex = i.intern("bonjour");
        let fr = i.intern("fr");
        let t = Term::Literal(Literal::lang(lex, fr));
        assert_eq!(t.display(&i).to_string(), "\"bonjour\"@fr");
    }

    #[test]
    fn display_typed_literal() {
        let mut i = Interner::new();
        let lex = i.intern("42");
        let dt = i.intern("http://www.w3.org/2001/XMLSchema#integer");
        let t = Term::Literal(Literal::typed(lex, dt));
        assert_eq!(
            t.display(&i).to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn escape_round_trip() {
        let original = "line1\nline2\t\"quoted\" back\\slash\r";
        let escaped = escape_literal(original);
        assert!(!escaped.contains('\n'));
        assert_eq!(unescape_literal(&escaped).unwrap(), original);
    }

    #[test]
    fn unescape_unicode() {
        assert_eq!(unescape_literal("caf\\u00e9").unwrap(), "café");
        assert_eq!(unescape_literal("\\U0001F600").unwrap(), "😀");
    }

    #[test]
    fn unescape_rejects_bad_sequences() {
        assert!(unescape_literal("bad\\q").is_none());
        assert!(unescape_literal("bad\\u12").is_none());
        assert!(unescape_literal("trailing\\").is_none());
    }

    #[test]
    fn term_ordering_is_total_and_stable() {
        let (_, iri, blank, lit) = setup();
        let mut v = vec![lit, blank, iri];
        v.sort();
        let mut v2 = v.clone();
        v2.sort();
        assert_eq!(v, v2);
    }
}
