//! Error types for the RDF substrate.

use std::fmt;

/// Errors produced while parsing or manipulating RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A syntax error in serialized RDF (N-Triples), with line number and detail.
    Syntax {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An interned symbol was resolved against the wrong interner or is stale.
    UnknownSymbol(u32),
    /// A term of an unexpected kind was used in a position that does not allow it
    /// (e.g. a literal in the subject position).
    IllegalTermPosition {
        /// The position in the triple: "subject", "predicate", or "object".
        position: &'static str,
        /// Description of the offending term.
        term: String,
    },
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => {
                write!(f, "N-Triples syntax error on line {line}: {message}")
            }
            RdfError::UnknownSymbol(sym) => {
                write!(f, "symbol {sym} is not present in this interner")
            }
            RdfError::IllegalTermPosition { position, term } => {
                write!(f, "term {term} is not allowed in the {position} position")
            }
        }
    }
}

impl std::error::Error for RdfError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, RdfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_syntax_error() {
        let e = RdfError::Syntax {
            line: 7,
            message: "expected '>'".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "N-Triples syntax error on line 7: expected '>'"
        );
    }

    #[test]
    fn display_unknown_symbol() {
        assert_eq!(
            RdfError::UnknownSymbol(3).to_string(),
            "symbol 3 is not present in this interner"
        );
    }

    #[test]
    fn display_illegal_position() {
        let e = RdfError::IllegalTermPosition {
            position: "subject",
            term: "\"lit\"".to_string(),
        };
        assert!(e.to_string().contains("subject"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&RdfError::UnknownSymbol(0));
    }
}
