//! A Turtle subset parser and writer.
//!
//! Covers the Turtle features real LOD dumps use heavily: `@prefix` /
//! `@base`, prefixed names, the `a` keyword, predicate lists (`;`), object
//! lists (`,`), blank node labels, language-tagged and datatyped literals
//! (including `^^prefixed:name`), bare numeric and boolean literals, and
//! comments. Collections `( … )` and anonymous blank nodes `[ … ]` are out
//! of scope and reported as errors.

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::error::{RdfError, Result};
use crate::term::{unescape_literal, Term};
use crate::triple::Triple;
use crate::vocab;

/// Parse a Turtle document into `ds`. Returns the number of distinct
/// triples inserted.
pub fn parse_into(ds: &mut Dataset, input: &str) -> Result<usize> {
    let mut parser = TurtleParser {
        input,
        pos: 0,
        line: 1,
        prefixes: HashMap::new(),
        base: String::new(),
    };
    parser.document(ds)
}

/// Serialize a data set as Turtle, grouping by subject and predicate.
pub fn serialize(ds: &Dataset) -> String {
    let mut out = String::new();
    let mut current_subject: Option<Term> = None;
    let mut current_predicate: Option<Term> = None;
    for t in ds.graph().iter() {
        if current_subject != Some(t.subject) {
            if current_subject.is_some() {
                out.push_str(" .\n");
            }
            out.push_str(&format!("{}", t.subject.display(ds.interner())));
            out.push_str(&format!("\n    {}", t.predicate.display(ds.interner())));
            current_subject = Some(t.subject);
            current_predicate = Some(t.predicate);
        } else if current_predicate != Some(t.predicate) {
            out.push_str(&format!(" ;\n    {}", t.predicate.display(ds.interner())));
            current_predicate = Some(t.predicate);
        } else {
            out.push(',');
        }
        out.push_str(&format!(" {}", t.object.display(ds.interner())));
    }
    if current_subject.is_some() {
        out.push_str(" .\n");
    }
    out
}

struct TurtleParser<'a> {
    input: &'a str,
    pos: usize,
    line: usize,
    prefixes: HashMap<String, String>,
    base: String,
}

impl TurtleParser<'_> {
    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        let consumed = &self.input[self.pos..self.pos + n];
        self.line += consumed.matches('\n').count();
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            let ws = rest.len() - trimmed.len();
            if ws > 0 {
                self.bump(ws);
            }
            if self.rest().starts_with('#') {
                let end = self.rest().find('\n').unwrap_or(self.rest().len());
                self.bump(end);
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.bump(token.len());
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{token}', found '{}'",
                self.rest().chars().take(12).collect::<String>()
            )))
        }
    }

    fn document(&mut self, ds: &mut Dataset) -> Result<usize> {
        let mut inserted = 0;
        loop {
            self.skip_ws();
            if self.rest().is_empty() {
                return Ok(inserted);
            }
            if self.eat("@prefix") || self.eat("PREFIX") {
                self.directive_prefix()?;
                continue;
            }
            if self.eat("@base") || self.eat("BASE") {
                self.directive_base()?;
                continue;
            }
            inserted += self.triples_block(ds)?;
        }
    }

    fn directive_prefix(&mut self) -> Result<()> {
        self.skip_ws();
        let rest = self.rest();
        let colon = rest
            .find(':')
            .ok_or_else(|| self.err("expected ':' in @prefix"))?;
        let name = rest[..colon].trim().to_string();
        if name.contains(char::is_whitespace) {
            return Err(self.err("malformed prefix name"));
        }
        self.bump(colon + 1);
        self.skip_ws();
        let iri = self.iri_ref()?;
        self.prefixes.insert(name, iri);
        self.skip_ws();
        // '@prefix' requires a dot; SPARQL-style 'PREFIX' does not.
        let _ = self.eat(".");
        Ok(())
    }

    fn directive_base(&mut self) -> Result<()> {
        self.skip_ws();
        self.base = self.iri_ref()?;
        self.skip_ws();
        let _ = self.eat(".");
        Ok(())
    }

    /// subject predicate-object-list '.'
    fn triples_block(&mut self, ds: &mut Dataset) -> Result<usize> {
        let mut inserted = 0;
        let subject = self.subject(ds)?;
        loop {
            self.skip_ws();
            let predicate = self.predicate(ds)?;
            loop {
                self.skip_ws();
                let object = self.object(ds)?;
                if ds.insert(Triple::checked(subject, predicate, object)?) {
                    inserted += 1;
                }
                self.skip_ws();
                if !self.eat(",") {
                    break;
                }
            }
            self.skip_ws();
            if self.eat(";") {
                self.skip_ws();
                // A trailing ';' before '.' is legal Turtle.
                if self.rest().starts_with('.') {
                    break;
                }
                continue;
            }
            break;
        }
        self.skip_ws();
        self.expect(".")?;
        Ok(inserted)
    }

    fn subject(&mut self, ds: &mut Dataset) -> Result<Term> {
        self.skip_ws();
        if self.rest().starts_with("[") {
            return Err(self.err("anonymous blank nodes '[ ]' are not supported"));
        }
        if self.rest().starts_with("(") {
            return Err(self.err("collections '( )' are not supported"));
        }
        self.term(ds)
    }

    fn predicate(&mut self, ds: &mut Dataset) -> Result<Term> {
        self.skip_ws();
        // `a` shorthand: must be followed by whitespace.
        if self.rest().starts_with('a')
            && self
                .rest()
                .chars()
                .nth(1)
                .map(|c| c.is_whitespace())
                .unwrap_or(false)
        {
            self.bump(1);
            return Ok(ds.iri(vocab::RDF_TYPE));
        }
        let term = self.term(ds)?;
        if !term.is_iri() {
            return Err(self.err("predicate must be an IRI"));
        }
        Ok(term)
    }

    fn object(&mut self, ds: &mut Dataset) -> Result<Term> {
        self.skip_ws();
        self.term(ds)
    }

    fn term(&mut self, ds: &mut Dataset) -> Result<Term> {
        let rest = self.rest();
        let first = rest
            .chars()
            .next()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        match first {
            '<' => {
                let iri = self.iri_ref()?;
                Ok(ds.iri(&iri))
            }
            '"' | '\'' => self.literal(ds),
            '_' if rest.starts_with("_:") => {
                self.bump(2);
                let end = self
                    .rest()
                    .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
                    .unwrap_or(self.rest().len());
                if end == 0 {
                    return Err(self.err("empty blank node label"));
                }
                let label = self.rest()[..end].to_string();
                self.bump(end);
                let sym = ds.interner_mut().intern(&label);
                Ok(Term::Blank(sym))
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => self.numeric_literal(ds),
            't' | 'f' if rest.starts_with("true") || rest.starts_with("false") => {
                let word = if rest.starts_with("true") {
                    "true"
                } else {
                    "false"
                };
                self.bump(word.len());
                Ok(ds.typed(word, vocab::XSD_BOOLEAN))
            }
            '[' => Err(self.err("anonymous blank nodes '[ ]' are not supported")),
            '(' => Err(self.err("collections '( )' are not supported")),
            _ => {
                let iri = self.prefixed_name()?;
                Ok(ds.iri(&iri))
            }
        }
    }

    fn iri_ref(&mut self) -> Result<String> {
        self.expect("<")?;
        let end = self
            .rest()
            .find('>')
            .ok_or_else(|| self.err("unterminated IRI"))?;
        let raw = &self.rest()[..end];
        if raw.contains(char::is_whitespace) {
            return Err(self.err("whitespace inside IRI"));
        }
        let iri = if raw.contains("://") || self.base.is_empty() {
            raw.to_string()
        } else {
            format!("{}{}", self.base, raw)
        };
        self.bump(end + 1);
        Ok(iri)
    }

    fn prefixed_name(&mut self) -> Result<String> {
        let rest = self.rest();
        let end = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.'))
            .unwrap_or(rest.len());
        let mut token = &rest[..end];
        // A trailing '.' is the statement terminator, not part of the name.
        while token.ends_with('.') {
            token = &token[..token.len() - 1];
        }
        let colon = token
            .find(':')
            .ok_or_else(|| self.err(format!("expected a term, found '{token}'")))?;
        let (prefix, local) = (&token[..colon], &token[colon + 1..]);
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.err(format!("unknown prefix '{prefix}:'")))?;
        let iri = format!("{ns}{local}");
        self.bump(token.len());
        Ok(iri)
    }

    fn literal(&mut self, ds: &mut Dataset) -> Result<Term> {
        let quote = if self.eat("\"\"\"") {
            "\"\"\""
        } else if self.eat("'''") {
            "'''"
        } else if self.eat("\"") {
            "\""
        } else if self.eat("'") {
            "'"
        } else {
            return Err(self.err("expected a string literal"));
        };
        let rest = self.rest();
        let end =
            find_unescaped(rest, quote).ok_or_else(|| self.err("unterminated string literal"))?;
        let raw = &rest[..end];
        let lexical =
            unescape_literal(raw).ok_or_else(|| self.err("malformed escape in literal"))?;
        self.bump(end + quote.len());

        if self.eat("@") {
            let end = self
                .rest()
                .find(|c: char| !(c.is_alphanumeric() || c == '-'))
                .unwrap_or(self.rest().len());
            if end == 0 {
                return Err(self.err("empty language tag"));
            }
            let tag = self.rest()[..end].to_string();
            self.bump(end);
            return Ok(ds.lang(&lexical, &tag));
        }
        if self.eat("^^") {
            let dt = if self.rest().starts_with('<') {
                self.iri_ref()?
            } else {
                self.prefixed_name()?
            };
            return Ok(ds.typed(&lexical, &dt));
        }
        Ok(ds.plain(&lexical))
    }

    fn numeric_literal(&mut self, ds: &mut Dataset) -> Result<Term> {
        let rest = self.rest();
        let end = rest
            .find(|c: char| {
                !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
            })
            .unwrap_or(rest.len());
        let mut token = &rest[..end];
        // Don't swallow the statement dot: "42." is integer 42 then '.'.
        while token.ends_with('.') {
            token = &token[..token.len() - 1];
        }
        if token.is_empty() {
            return Err(self.err("malformed numeric literal"));
        }
        let term = if token.contains('.') || token.contains(['e', 'E']) {
            token
                .parse::<f64>()
                .map_err(|_| self.err(format!("malformed number '{token}'")))?;
            ds.typed(token, vocab::XSD_DOUBLE)
        } else {
            token
                .parse::<i64>()
                .map_err(|_| self.err(format!("malformed number '{token}'")))?;
            ds.typed(token, vocab::XSD_INTEGER)
        };
        self.bump(token.len());
        Ok(term)
    }
}

/// Find the byte index of the first unescaped occurrence of `needle`.
fn find_unescaped(haystack: &str, needle: &str) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let nb = needle.as_bytes();
    let mut i = 0;
    while i + nb.len() <= bytes.len() {
        if bytes[i] == b'\\' {
            i += 2;
            continue;
        }
        if &bytes[i..i + nb.len()] == nb {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LiteralKind;

    fn parse(doc: &str) -> Dataset {
        let mut ds = Dataset::new("t");
        parse_into(&mut ds, doc).unwrap();
        ds
    }

    #[test]
    fn basic_triple() {
        let ds = parse("<http://e/s> <http://e/p> <http://e/o> .");
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn prefixes_expand() {
        let ds = parse("@prefix ex: <http://e/> .\nex:s ex:p ex:o .");
        let t = ds.graph().iter().next().unwrap();
        assert_eq!(ds.resolve(t.subject), "http://e/s");
        assert_eq!(ds.resolve(t.object), "http://e/o");
    }

    #[test]
    fn sparql_style_prefix_without_dot() {
        let ds = parse("PREFIX ex: <http://e/>\nex:s ex:p ex:o .");
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn a_shorthand() {
        let ds = parse("@prefix ex: <http://e/> .\nex:s a ex:Person .");
        let t = ds.graph().iter().next().unwrap();
        assert_eq!(ds.resolve(t.predicate), vocab::RDF_TYPE);
    }

    #[test]
    fn predicate_and_object_lists() {
        let ds = parse(
            "@prefix ex: <http://e/> .\n\
             ex:s ex:p \"a\", \"b\" ;\n\
                  ex:q \"c\" .",
        );
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn trailing_semicolon_is_legal() {
        let ds = parse("@prefix ex: <http://e/> .\nex:s ex:p ex:o ; .");
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn literals_with_lang_and_datatype() {
        let ds = parse(
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             @prefix ex: <http://e/> .\n\
             ex:s ex:p \"bonjour\"@fr .\n\
             ex:s ex:q \"42\"^^xsd:integer .\n\
             ex:s ex:r \"x\"^^<http://e/dt> .",
        );
        let kinds: Vec<LiteralKind> = ds
            .graph()
            .iter()
            .filter_map(|t| t.object.as_literal())
            .map(|l| l.kind)
            .collect();
        assert_eq!(kinds.len(), 3);
        assert!(kinds.iter().any(|k| matches!(k, LiteralKind::Lang(_))));
        assert_eq!(
            kinds
                .iter()
                .filter(|k| matches!(k, LiteralKind::Typed(_)))
                .count(),
            2
        );
    }

    #[test]
    fn bare_numbers_and_booleans() {
        let ds = parse(
            "@prefix ex: <http://e/> .\n\
             ex:s ex:int 42 ; ex:neg -7 ; ex:dbl 3.25 ; ex:flag true .",
        );
        assert_eq!(ds.len(), 4);
        let lexicals: Vec<&str> = ds.graph().iter().map(|t| ds.resolve(t.object)).collect();
        for expected in ["42", "-7", "3.25", "true"] {
            assert!(lexicals.contains(&expected), "{lexicals:?}");
        }
    }

    #[test]
    fn statement_dot_after_integer() {
        let ds = parse("@prefix ex: <http://e/> .\nex:s ex:p 42 .");
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn blank_node_labels() {
        let ds = parse("_:b0 <http://e/p> _:b1 .");
        let t = ds.graph().iter().next().unwrap();
        assert!(t.subject.is_blank());
        assert!(t.object.is_blank());
    }

    #[test]
    fn comments_are_skipped() {
        let ds = parse(
            "# a comment\n\
             <http://e/s> <http://e/p> <http://e/o> . # trailing\n\
             # another\n",
        );
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn base_resolves_relative_iris() {
        let ds = parse("@base <http://base.example.org/> .\n<s> <p> <o> .");
        let t = ds.graph().iter().next().unwrap();
        assert_eq!(ds.resolve(t.subject), "http://base.example.org/s");
    }

    #[test]
    fn triple_quoted_strings() {
        let ds = parse("<http://e/s> <http://e/p> \"\"\"multi\nline\"\"\" .");
        let t = ds.graph().iter().next().unwrap();
        assert_eq!(ds.resolve(t.object), "multi\nline");
    }

    #[test]
    fn escaped_quotes_in_literals() {
        let ds = parse(r#"<http://e/s> <http://e/p> "say \"hi\"" ."#);
        let t = ds.graph().iter().next().unwrap();
        assert_eq!(ds.resolve(t.object), "say \"hi\"");
    }

    #[test]
    fn unknown_prefix_errors_with_line() {
        let mut ds = Dataset::new("t");
        let err = parse_into(&mut ds, "\n\nfoo:s foo:p foo:o .").unwrap_err();
        match err {
            RdfError::Syntax { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("foo"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unsupported_constructs_error() {
        let mut ds = Dataset::new("t");
        assert!(parse_into(&mut ds, "[] <http://e/p> <http://e/o> .").is_err());
        assert!(parse_into(&mut ds, "<http://e/s> <http://e/p> (1 2) .").is_err());
    }

    #[test]
    fn missing_dot_errors() {
        let mut ds = Dataset::new("t");
        assert!(parse_into(&mut ds, "<http://e/s> <http://e/p> <http://e/o>").is_err());
    }

    #[test]
    fn serialize_round_trips() {
        let original = parse(
            "@prefix ex: <http://e/> .\n\
             ex:s ex:p \"a\", \"b\"@en, \"3\"^^<http://dt> ;\n\
                  a ex:Thing .\n\
             ex:t ex:p ex:s .",
        );
        let turtle = serialize(&original);
        let mut back = Dataset::new("copy");
        parse_into(&mut back, &turtle).unwrap();
        assert_eq!(back.len(), original.len());
        assert_eq!(serialize(&back), turtle);
    }

    #[test]
    fn ntriples_documents_are_valid_turtle() {
        let mut ds = Dataset::new("src");
        ds.add_str("http://e/a", "http://e/p", "value");
        ds.add_iri("http://e/a", "http://e/q", "http://e/b");
        let nt = crate::ntriples::serialize(&ds);
        let mut back = Dataset::new("copy");
        parse_into(&mut back, &nt).unwrap();
        assert_eq!(back.len(), ds.len());
    }
}
