//! Well-known vocabulary IRIs used throughout the stack.

/// `rdf:type`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdfs:label`.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
/// `owl:sameAs` — the link predicate ALEX manages.
pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
/// `owl:Thing` — the paper's example of a non-distinctive feature value.
pub const OWL_THING: &str = "http://www.w3.org/2002/07/owl#Thing";
/// `xsd:string`.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// `xsd:integer`.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// `xsd:decimal`.
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
/// `xsd:double`.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
/// `xsd:date`.
pub const XSD_DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
/// `xsd:gYear`.
pub const XSD_GYEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";
/// `xsd:boolean`.
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_iris_are_absolute() {
        for iri in [
            RDF_TYPE,
            RDFS_LABEL,
            OWL_SAME_AS,
            OWL_THING,
            XSD_STRING,
            XSD_INTEGER,
            XSD_DECIMAL,
            XSD_DOUBLE,
            XSD_DATE,
            XSD_GYEAR,
            XSD_BOOLEAN,
        ] {
            assert!(iri.starts_with("http://"), "{iri} not absolute");
        }
    }

    #[test]
    fn same_as_is_owl_namespace() {
        assert!(OWL_SAME_AS.contains("owl#sameAs"));
    }
}
