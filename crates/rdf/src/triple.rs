//! RDF triples.

use crate::error::{RdfError, Result};
use crate::interner::Interner;
use crate::term::Term;

/// An RDF triple (subject, predicate, object).
///
/// Invariants (checked by [`Triple::checked`]): the subject is an IRI or
/// blank node, and the predicate is an IRI. The plain constructor does not
/// enforce them, which keeps hot paths branch-free; the store re-checks in
/// debug builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject: an IRI or blank node.
    pub subject: Term,
    /// Predicate: an IRI.
    pub predicate: Term,
    /// Object: any term.
    pub object: Term,
}

impl Triple {
    /// Build a triple without validating term positions.
    #[inline]
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }

    /// Build a triple, validating RDF term-position rules.
    pub fn checked(subject: Term, predicate: Term, object: Term) -> Result<Self> {
        if subject.is_literal() {
            return Err(RdfError::IllegalTermPosition {
                position: "subject",
                term: format!("{subject:?}"),
            });
        }
        if !predicate.is_iri() {
            return Err(RdfError::IllegalTermPosition {
                position: "predicate",
                term: format!("{predicate:?}"),
            });
        }
        Ok(Triple::new(subject, predicate, object))
    }

    /// Render in N-Triples syntax (terminated with " .").
    pub fn to_ntriples(&self, interner: &Interner) -> String {
        format!(
            "{} {} {} .",
            self.subject.display(interner),
            self.predicate.display(interner),
            self.object.display(interner)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn checked_accepts_valid_triple() {
        let mut i = Interner::new();
        let s = Term::Iri(i.intern("http://e/s"));
        let p = Term::Iri(i.intern("http://e/p"));
        let o = Term::Literal(Literal::plain(i.intern("v")));
        assert!(Triple::checked(s, p, o).is_ok());
    }

    #[test]
    fn checked_rejects_literal_subject() {
        let mut i = Interner::new();
        let lit = Term::Literal(Literal::plain(i.intern("v")));
        let p = Term::Iri(i.intern("http://e/p"));
        let err = Triple::checked(lit, p, lit).unwrap_err();
        assert!(matches!(
            err,
            RdfError::IllegalTermPosition {
                position: "subject",
                ..
            }
        ));
    }

    #[test]
    fn checked_rejects_non_iri_predicate() {
        let mut i = Interner::new();
        let s = Term::Iri(i.intern("http://e/s"));
        let blank = Term::Blank(i.intern("b"));
        let err = Triple::checked(s, blank, s).unwrap_err();
        assert!(matches!(
            err,
            RdfError::IllegalTermPosition {
                position: "predicate",
                ..
            }
        ));
    }

    #[test]
    fn to_ntriples_format() {
        let mut i = Interner::new();
        let s = Term::Iri(i.intern("http://e/s"));
        let p = Term::Iri(i.intern("http://e/p"));
        let o = Term::Literal(Literal::plain(i.intern("v")));
        let t = Triple::new(s, p, o);
        assert_eq!(t.to_ntriples(&i), "<http://e/s> <http://e/p> \"v\" .");
    }

    #[test]
    fn blank_subject_is_valid() {
        let mut i = Interner::new();
        let s = Term::Blank(i.intern("b0"));
        let p = Term::Iri(i.intern("http://e/p"));
        assert!(Triple::checked(s, p, s).is_ok());
    }
}
