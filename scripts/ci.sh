#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> panic-free gate (unwrap/expect banned in federation, alex-core, alex-store, alex-cache)"
# The federation modules carry #[deny(clippy::unwrap_used, clippy::expect_used)]
# (see crates/sparql/src/federation/mod.rs), and alex-core / alex-store /
# alex-cache deny the same lints crate-wide (see their lib.rs); these runs
# fail the build if a new unwrap/expect sneaks into the fault-handling,
# durability, or caching paths.
cargo clippy -p alex-sparql -- -D warnings
cargo clippy -p alex-core -- -D warnings
cargo clippy -p alex-store -- -D warnings
cargo clippy -p alex-cache -- -D warnings
# The profiling layer (timeline/trace/attribution/report modules) carries
# the same per-module deny, so the exporter and aggregators stay panic-free.
cargo clippy -p alex-telemetry -- -D warnings
# The trust subsystem gates every feedback-driven mutation; it must stay
# panic-free too (crate-wide unwrap/expect deny, see crates/trust/src/lib.rs).
cargo clippy -p alex-trust -- -D warnings
# The similarity kernels and the deterministic pool are the alignment hot
# path: the bit-parallel/interned/batch kernels and the work-stealing
# scheduler must stay warning-free.
cargo clippy -p alex-sim -- -D warnings
cargo clippy -p alex-parallel -- -D warnings
# The supervisor layer (budgets, breach policy, degraded bookkeeping) and
# the bench harness complete the crate-by-crate -D warnings coverage.
cargo clippy -p alex-guard -- -D warnings
cargo clippy -p alex-bench -- -D warnings

echo "==> cargo test (ALEX_THREADS=1: deterministic pool runs inline)"
ALEX_THREADS=1 cargo test --workspace -q

echo "==> cargo test (ALEX_THREADS=4: same suite, parallel pool)"
# The pool's ordered reduction makes results byte-identical at any width,
# so the whole suite must pass unchanged with 4 workers.
ALEX_THREADS=4 cargo test --workspace -q

echo "==> cargo bench --no-run (bench targets must compile)"
cargo bench --workspace --no-run -q

echo "==> kernel equivalence properties (myers ≡ DP, interned ≡ string jaccard)"
# The fast kernels must stay bitwise-equal to their slow oracles, including
# multi-block (>64 chars) and combining-mark inputs, and PARIS alignment
# must stay byte-identical across thread counts.
cargo test -p alex-sim --test properties -q
cargo test -p alex-linking --test properties -q

echo "==> kernel bench compiles (throughput gate target)"
cargo bench -p alex-bench --bench kernels --no-run -q

echo "==> chaos suite (seeded fault injection over the full improve loop)"
cargo test --test chaos_federation -q

echo "==> cache differential suite (cached vs uncached byte-identity, shadow-oracle invalidation)"
# The answer cache must be behaviorally invisible: improve/query output is
# compared cached-vs-uncached across --threads 1/4 and fault profiles, and
# random link-mutation sequences are checked against a from-scratch oracle.
cargo test --test cache_differential -q

echo "==> SPARQL fuzz (fixed seed budget: ~4k structured + ~6k mutated + ~1.5k rewrite inputs)"
# Seeds are hard-coded in the test file, so this budget is deterministic;
# no-panic, parse/serialize fixpoint (UNION included), fingerprint-invariance
# (incl. union-branch reordering), and sameAs-rewrite idempotence properties.
cargo test --test fuzz_sparql -q

echo "==> smarter-federation differential + recall suites (ALEX_THREADS=1 and 4)"
# Catalog-pruned dispatch must be byte-identical to broadcast across seeds,
# cache settings, and fault profiles; rewritten executions must match plain
# ones and never serve stale cached answers after a closure change; and the
# recall/traffic experiment must show recall rising with the closure while
# pruned traffic stays below broadcast (>= 30% reduction at full closure).
ALEX_THREADS=1 cargo test --test federation_differential -q
ALEX_THREADS=4 cargo test --test federation_differential -q
ALEX_THREADS=1 cargo test --test federation_recall -q
ALEX_THREADS=4 cargo test --test federation_recall -q

echo "==> federation selectivity bench compiles (sub-query reduction gate target)"
cargo bench -p alex-bench --bench federation_selectivity --no-run -q

echo "==> trace & report suite (--trace validity, PARIS worker nesting, alex report)"
cargo test --test trace_report -q

echo "==> adversarial-feedback suite (trust gate vs seeded poisoners, quorum deferral, thread invariance)"
# A 30% targeted-poisoner mix must not move the gated run's F while the
# ungated run collapses; deferred votes stay buffered; output is
# byte-identical across thread counts and the trust counters export.
cargo test --test adversarial_trust -q

echo "==> panic-chaos suite (quarantined chunk panics + WAL replay, byte-identity at 1 and 4 threads)"
# Seeded chunk panics are quarantined by the pool and re-executed
# sequentially; a suspended run is resumed through the WAL. Output must be
# byte-identical to the undisturbed reference at every pool width (the
# test itself sweeps --threads 1/2/4/8; the env var pins the default width
# for everything around it).
ALEX_THREADS=1 cargo test --test panic_chaos -q
ALEX_THREADS=4 cargo test --test panic_chaos -q

echo "==> composed-chaos suite (storage faults + poisoners + faulty federation, crash & resume)"
# All fault domains in one durable loop: a torn journal write kills
# the run mid-attack, recovery + resume must land on the uninterrupted
# reference's exact links, admission log, and trust posteriors — plus the
# chaos gate (chunk panics + stalls + silent store faults + flaky
# federation under quarantine) and the CLI SIGKILL legs.
cargo test --test composed_chaos -q

echo "==> kill-and-resume smoke (SIGKILL mid-run, --resume, diff vs reference)"
# An improve run is SIGKILLed at an episode commit, resumed with --resume,
# and its final links must be byte-identical to an uninterrupted reference.
cargo build -q --bin alex
ALEX=target/debug/alex
SMOKE=$(mktemp -d -t alex-ci-resume.XXXXXX)
trap 'rm -rf "$SMOKE"' EXIT
"$ALEX" gen --out-dir "$SMOKE" --pair nba --seed 7
improve() {
  "$ALEX" improve "$SMOKE/left.nt" "$SMOKE/right.nt" \
    --links "$SMOKE/truth.nt" --truth "$SMOKE/truth.nt" \
    --episodes 6 --episode-size 30 --error-rate 0.1 "$@"
}
improve --state-dir "$SMOKE/state-ref" --out "$SMOKE/ref.nt" --threads 1
# `kill -9` at the 2nd commit: the run must die by signal, not exit cleanly.
if improve --state-dir "$SMOKE/state-cut" --kill-after 2 --threads 4; then
  echo "kill-and-resume smoke: run survived --kill-after 2" >&2
  exit 1
fi
improve --state-dir "$SMOKE/state-cut" --resume --out "$SMOKE/resumed.nt" --threads 4
cmp "$SMOKE/ref.nt" "$SMOKE/resumed.nt" \
  || { echo "kill-and-resume smoke: resumed links differ from reference" >&2; exit 1; }
echo "resumed links byte-identical to uninterrupted reference"

echo "==> trace-schema smoke (--trace under --threads 4, validated via alex report)"
# The emitted Chrome trace must pass structural validation: balanced B/E
# per thread and every pool chunk span enclosed by its dispatch span.
improve --out "$SMOKE/traced.nt" --threads 4 \
  --trace "$SMOKE/trace.json" --profile 2> "$SMOKE/profile.err"
grep -q "phase" "$SMOKE/profile.err" \
  || { echo "trace-schema smoke: --profile printed no attribution table" >&2; exit 1; }
"$ALEX" report --check-trace "$SMOKE/trace.json"

echo "CI OK"
