#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> panic-free federation gate (unwrap/expect banned in crates/sparql/src/federation/)"
# The federation modules carry #[deny(clippy::unwrap_used, clippy::expect_used)]
# (see crates/sparql/src/federation/mod.rs); this run fails the build if a
# new unwrap/expect sneaks into the fault-handling path.
cargo clippy -p alex-sparql -- -D warnings

echo "==> cargo test (ALEX_THREADS=1: deterministic pool runs inline)"
ALEX_THREADS=1 cargo test --workspace -q

echo "==> cargo test (ALEX_THREADS=4: same suite, parallel pool)"
# The pool's ordered reduction makes results byte-identical at any width,
# so the whole suite must pass unchanged with 4 workers.
ALEX_THREADS=4 cargo test --workspace -q

echo "==> cargo bench --no-run (bench targets must compile)"
cargo bench --workspace --no-run -q

echo "==> chaos suite (seeded fault injection over the full improve loop)"
cargo test --test chaos_federation -q

echo "CI OK"
