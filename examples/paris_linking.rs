//! Automatic linking on its own: the PARIS-like probabilistic aligner vs
//! the naive label-matching baseline.
//!
//! PARIS weighs evidence by inverse functionality (a shared name means much
//! more than a shared category) and propagates equivalence through
//! IRI-valued attributes, making it the more *precise* linker — the paper
//! picks PARIS for exactly that confident-links property, and leaves recall
//! to ALEX.
//!
//! ```sh
//! cargo run --release --example paris_linking
//! ```

use alex::datagen::{generate_pair, Domain, Flavor, PairConfig, SideConfig};
use alex::linking::{LabelBaseline, LinkerOutput, Paris, ParisConfig};

fn score(pair: &alex::datagen::GeneratedPair, out: &LinkerOutput) -> (f64, f64, f64) {
    let links = out.term_pairs();
    let correct = links
        .iter()
        .filter(|&&(l, r)| pair.is_correct(l, r))
        .count();
    let p = correct as f64 / links.len().max(1) as f64;
    let r = correct as f64 / pair.gt_len().max(1) as f64;
    let f = if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    };
    (p, r, f)
}

fn main() {
    let pair = generate_pair(&PairConfig {
        seed: 11,
        left: SideConfig {
            name: "LeftKB".into(),
            ns: "http://left.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.2,
            drop_prob: 0.2,
            sparse: false,
        },
        right: SideConfig {
            name: "RightKB".into(),
            ns: "http://right.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.22,
            drop_prob: 0.2,
            sparse: false,
        },
        shared: 200,
        left_only: 300,
        right_only: 100,
        confusable_frac: 0.5, // plenty of near-duplicates to trip up matching
        domains: vec![Domain::Person, Domain::Place, Domain::Drug],
        left_extra_domains: Domain::ALL.to_vec(),
    });
    println!(
        "pair: {} triples vs {} triples, ground truth {}",
        pair.left.len(),
        pair.right.len(),
        pair.gt_len()
    );

    let t0 = std::time::Instant::now();
    let baseline = LabelBaseline::default().link(&pair.left, &pair.right);
    let t_baseline = t0.elapsed();
    let (bp, br, bf) = score(&pair, &baseline);

    let t0 = std::time::Instant::now();
    // The default output threshold (0.80) mimics the paper's conservative
    // "keep only confident links" filtering; for a head-to-head recall
    // comparison with the baseline, accept links at 0.70.
    let paris = Paris::with_config(ParisConfig {
        output_threshold: 0.70,
        ..ParisConfig::default()
    })
    .link(&pair.left, &pair.right);
    let t_paris = t0.elapsed();
    let (pp, pr, pf) = score(&pair, &paris);

    println!("\nlinker           links  precision  recall  f-measure  time");
    println!(
        "label baseline  {:>6}  {:>9.3}  {:>6.3}  {:>9.3}  {:>6.1?}",
        baseline.links.len(),
        bp,
        br,
        bf,
        t_baseline
    );
    println!(
        "PARIS-like      {:>6}  {:>9.3}  {:>6.3}  {:>9.3}  {:>6.1?}",
        paris.links.len(),
        pp,
        pr,
        pf,
        t_paris
    );
    println!(
        "\nPARIS links at higher precision ({:.3} vs {:.3}): functionality-weighted \
         evidence suppresses coincidental literal matches. That conservatism costs \
         recall — exactly the gap ALEX's feedback-driven exploration recovers \
         (see the quickstart example).",
        pp, bp
    );
    assert!(pp >= bp, "PARIS should be the more precise linker");
}
