//! The paper's motivating scenario, end to end (§1, Fig. 1):
//!
//! > "Find all New York Times articles about the NBA's MVP of 2013."
//!
//! The answer needs DBpedia (who the MVP is) *and* the NYTimes data set
//! (articles about people), joined through an `owl:sameAs` link. The user
//! approves or rejects each answer; ALEX interprets that as feedback on the
//! links that produced it, removes wrong links, and explores for new ones —
//! which immediately improves the next query.
//!
//! ```sh
//! cargo run --release --example federated_feedback
//! ```

use alex::core::{Agent, AlexConfig, Feedback, FeedbackBridge, LinkSpace, SpaceConfig};
use alex::rdf::Dataset;
use alex::sparql::{parse, DatasetEndpoint, FederatedEngine, Link, SameAsLinks};

fn main() {
    // --- Two tiny knowledge bases -------------------------------------
    let mut dbpedia = Dataset::new("DBpedia");
    for (iri, label, award) in [
        (
            "http://db/LeBron_James",
            "LeBron James",
            Some("NBA MVP 2013"),
        ),
        (
            "http://db/Kevin_Durant",
            "Kevin Durant",
            Some("NBA MVP 2014"),
        ),
        ("http://db/Tim_Duncan", "Tim Duncan", None),
    ] {
        dbpedia.add_str(iri, "http://db/ontology/label", label);
        if let Some(a) = award {
            dbpedia.add_str(iri, "http://db/ontology/award", a);
        }
    }

    let mut nyt = Dataset::new("NYTimes");
    nyt.add_str(
        "http://nyt/per/lebron-james",
        "http://nyt/property/name",
        "James, LeBron",
    );
    nyt.add_str(
        "http://nyt/per/kevin-durant",
        "http://nyt/property/name",
        "Durant, Kevin",
    );
    nyt.add_str(
        "http://nyt/per/tim-duncan",
        "http://nyt/property/name",
        "Duncan, Tim",
    );
    for (article, about, headline) in [
        (
            "http://nyt/a/1",
            "http://nyt/per/lebron-james",
            "James Carries Heat to Title",
        ),
        (
            "http://nyt/a/2",
            "http://nyt/per/lebron-james",
            "MVP Again: James Repeats",
        ),
        (
            "http://nyt/a/3",
            "http://nyt/per/kevin-durant",
            "Durant's Scoring Clinic",
        ),
        (
            "http://nyt/a/4",
            "http://nyt/per/tim-duncan",
            "Duncan, Quiet Giant",
        ),
    ] {
        nyt.add_iri(article, "http://nyt/property/about", about);
        nyt.add_str(article, "http://nyt/property/headline", headline);
    }

    // --- ALEX agent over the pair's link space -------------------------
    let space = LinkSpace::build(&dbpedia, &nyt, &SpaceConfig::default());
    let bridge = FeedbackBridge::new(&dbpedia, space.left_index(), &nyt, space.right_index());
    // The automatic linker made one good link and one WRONG link
    // (LeBron ↔ lebron-james is missing; Durant got mislinked to Duncan).
    let initial_links = [
        Link::new("http://db/Kevin_Durant", "http://nyt/per/tim-duncan"), // wrong!
        Link::new("http://db/Tim_Duncan", "http://nyt/per/tim-duncan"),
    ];
    let initial_ids: Vec<(u32, u32)> = initial_links
        .iter()
        .filter_map(|l| bridge.link_to_pair(l))
        .collect();
    let mut agent = Agent::new(
        space,
        &initial_ids,
        AlexConfig {
            episode_size: 4,
            ..AlexConfig::default()
        },
    );

    // --- The federated engine reflects the agent's candidate links -----
    let rebuild_engine = |agent: &Agent, dbpedia: &Dataset, nyt: &Dataset| {
        let mut engine = FederatedEngine::new();
        engine.add_endpoint(Box::new(DatasetEndpoint::new(dbpedia.clone())));
        engine.add_endpoint(Box::new(DatasetEndpoint::new(nyt.clone())));
        let links = SameAsLinks::from_pairs(agent.candidates().iter().map(|id| {
            let (l, r) = agent.space().pair_terms(id);
            (dbpedia.resolve(l).to_string(), nyt.resolve(r).to_string())
        }));
        engine.set_links(links);
        engine
    };

    let query = parse(
        "SELECT ?article ?headline WHERE { \
           ?who <http://db/ontology/award> \"NBA MVP 2014\" . \
           ?article <http://nyt/property/about> ?who . \
           ?article <http://nyt/property/headline> ?headline }",
    )
    .expect("valid query");

    // --- Round 1: the wrong link produces wrong answers ----------------
    let engine = rebuild_engine(&agent, &dbpedia, &nyt);
    let answers = engine.execute(&query).expect("query evaluates");
    println!("Round 1 — articles about the NBA MVP of 2014:");
    for a in &answers {
        println!(
            "  {}   (via {} link(s))",
            a.bindings["headline"].lexical(),
            a.links_used.len()
        );
    }
    assert_eq!(answers.len(), 1);
    assert!(answers[0].bindings["headline"].lexical().contains("Duncan"));

    // The user rejects the Duncan article — it is not about Durant. ALEX
    // removes the offending link.
    println!("\nUser: ✗ that article is about Tim Duncan, not the 2014 MVP!");
    for (pair, feedback) in bridge.feedback_for_answer(&answers[0], false) {
        agent.feedback_on_pair(pair, feedback);
    }

    // The user separately confirms a correct link's answer (Tim Duncan's
    // own article), giving ALEX a state to explore around. Exploration over
    // the (label, name) feature discovers Durant↔durant and James↔james.
    let duncan_query = parse(
        "SELECT ?article WHERE { \
           ?who <http://db/ontology/label> \"Tim Duncan\" . \
           ?article <http://nyt/property/about> ?who }",
    )
    .expect("valid query");
    let engine = rebuild_engine(&agent, &dbpedia, &nyt);
    let duncan_answers = engine.execute(&duncan_query).expect("query evaluates");
    assert!(!duncan_answers.is_empty());
    println!("User: ✓ the Duncan article for the Duncan query is right.");
    let mut discovered = 0;
    for (pair, feedback) in bridge.feedback_for_answer(&duncan_answers[0], true) {
        assert_eq!(feedback, Feedback::Positive);
        // Explore a few times: the ε-greedy policy needs a couple of draws
        // to hit the name feature on a fresh state.
        for _ in 0..4 {
            discovered += agent.feedback_on_pair(pair, feedback).added;
        }
    }
    println!("ALEX explored and added {discovered} new candidate link(s).");
    agent.end_episode();

    // --- Round 2: the discovered link answers the original query -------
    let engine = rebuild_engine(&agent, &dbpedia, &nyt);
    let answers = engine.execute(&query).expect("query evaluates");
    println!("\nRound 2 — articles about the NBA MVP of 2014:");
    for a in &answers {
        println!("  {}", a.bindings["headline"].lexical());
    }
    assert_eq!(answers.len(), 1, "exactly Durant's article");
    assert!(answers[0].bindings["headline"].lexical().contains("Durant"));
    println!("\nThe wrong answer is gone and the right one appeared — ALEX at work.");
}
