//! Quickstart: the full ALEX pipeline on a small synthetic pair.
//!
//! 1. Generate two heterogeneous RDF data sets describing an overlapping
//!    set of identities (with exact ground truth).
//! 2. Produce initial candidate links with the PARIS-like automatic linker.
//! 3. Run ALEX: simulated user feedback drives Monte-Carlo reinforcement
//!    learning that removes wrong links and *discovers links PARIS missed*.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::HashSet;

use alex::core::{driver, Agent, AlexConfig, LinkSpace, OracleFeedback, SpaceConfig};
use alex::datagen::{generate_pair, Domain, Flavor, PairConfig, SideConfig};
use alex::linking::{Paris, ParisConfig};

fn main() {
    // 1. A small pair: 120 shared identities, distractors on both sides.
    let pair = generate_pair(&PairConfig {
        seed: 7,
        left: SideConfig {
            name: "LeftKB".into(),
            ns: "http://left.example.org/".into(),
            flavor: Flavor::Left,
            noise: 0.16,
            drop_prob: 0.2,
            sparse: false,
        },
        right: SideConfig {
            name: "RightKB".into(),
            ns: "http://right.example.org/".into(),
            flavor: Flavor::Right,
            noise: 0.18,
            drop_prob: 0.22,
            sparse: false,
        },
        shared: 120,
        left_only: 200,
        right_only: 60,
        confusable_frac: 0.25,
        domains: vec![Domain::Person, Domain::Organization],
        left_extra_domains: vec![Domain::Place, Domain::Drug],
    });
    println!(
        "generated: {} ({} triples) / {} ({} triples), ground truth = {} links",
        pair.left.name(),
        pair.left.len(),
        pair.right.name(),
        pair.right.len(),
        pair.gt_len()
    );

    // 2. Automatic linking. The paper keeps only PARIS links scoring above
    //    0.95 — high precision, but plenty of missed links for ALEX to find.
    let linked = Paris::with_config(ParisConfig {
        output_threshold: 0.95,
        ..ParisConfig::default()
    })
    .link(&pair.left, &pair.right);
    let initial = linked.term_pairs();
    let correct = initial
        .iter()
        .filter(|&&(l, r)| pair.is_correct(l, r))
        .count();
    println!(
        "PARIS-like linker: {} candidate links, {} correct (precision {:.2}, recall {:.2})",
        initial.len(),
        correct,
        correct as f64 / initial.len().max(1) as f64,
        correct as f64 / pair.gt_len() as f64
    );

    // 3. ALEX: build the link space, seed it with PARIS's links, learn from
    //    feedback.
    let space = LinkSpace::build(&pair.left, &pair.right, &SpaceConfig::default());
    let truth: HashSet<(u32, u32)> = pair
        .ground_truth
        .iter()
        .filter_map(|&(l, r)| Some((space.left_index().id(l)?, space.right_index().id(r)?)))
        .collect();
    let initial_ids: Vec<(u32, u32)> = initial
        .iter()
        .filter_map(|&(l, r)| Some((space.left_index().id(l)?, space.right_index().id(r)?)))
        .collect();

    let cfg = AlexConfig {
        episode_size: 100,
        max_episodes: 30,
        ..AlexConfig::default()
    };
    let mut agent = Agent::new(space, &initial_ids, cfg);
    let mut oracle = OracleFeedback::new(truth.clone(), 99);
    let report = driver::run(&mut agent, &mut oracle, &truth);

    println!("\nepisode  precision  recall  f-measure");
    let q0 = report.initial_quality;
    println!(
        "{:>7}  {:>9.3}  {:>6.3}  {:>9.3}",
        0, q0.precision, q0.recall, q0.f_measure
    );
    for e in &report.episodes {
        println!(
            "{:>7}  {:>9.3}  {:>6.3}  {:>9.3}",
            e.episode, e.quality.precision, e.quality.recall, e.quality.f_measure
        );
    }
    let qf = report.final_quality();
    println!(
        "\nALEX: {:?} after {} episodes — F-measure {:.3} -> {:.3}",
        report.stop,
        report.episode_count(),
        q0.f_measure,
        qf.f_measure
    );
    assert!(
        qf.f_measure >= q0.f_measure,
        "ALEX should not make links worse"
    );
}
