//! The paper's "specific domains" setting (§7.2.2): a single user improving
//! the NBA-players links interactively with 10-feedback-item episodes.
//!
//! ```sh
//! cargo run --release --example nba_domain
//! ```

use alex::core::{run_partitioned, AlexConfig, PartitionedConfig, SpaceConfig};
use alex::datagen::{
    generate_pair, sample_initial_links, score_links, DatasetKind, InitialLinksSpec, PairSpec,
};

fn main() {
    // DBpedia (NBA) vs NYTimes, at the paper's own scale (93 GT links).
    let spec = PairSpec::of(DatasetKind::DBpediaNba, DatasetKind::NYTimes);
    let pair = generate_pair(&spec.config(4242));
    println!(
        "{}: {} triples, {} entities | {}: {} triples, {} entities | GT: {}",
        pair.left.name(),
        pair.left.len(),
        pair.left.entities().count(),
        pair.right.name(),
        pair.right.len(),
        pair.right.entities().count(),
        pair.gt_len()
    );

    // Start from roughly half the links (as PARIS would leave it).
    let initial = sample_initial_links(
        &pair,
        InitialLinksSpec {
            precision: 0.92,
            recall: 0.55,
            seed: 1,
        },
    );
    let (p, r, f) = score_links(&pair, &initial);
    println!(
        "initial links: {} (P {:.2}, R {:.2}, F {:.2})",
        initial.len(),
        p,
        r,
        f
    );

    let cfg = PartitionedConfig {
        partitions: 1,
        alex: AlexConfig {
            episode_size: 10, // interactive: one user, ten judgments at a time
            max_episodes: 20,
            ..AlexConfig::default()
        },
        space: SpaceConfig::default(),
        feedback_error_rate: 0.0,
    };
    let started = std::time::Instant::now();
    let run = run_partitioned(&pair.left, &pair.right, &initial, &pair.ground_truth, &cfg);

    println!("\nepisode  precision  recall  f-measure  candidates");
    let q0 = run.initial_quality;
    println!(
        "{:>7}  {:>9.3}  {:>6.3}  {:>9.3}",
        0, q0.precision, q0.recall, q0.f_measure
    );
    for e in &run.episodes {
        println!(
            "{:>7}  {:>9.3}  {:>6.3}  {:>9.3}  {:>10}",
            e.episode, e.quality.precision, e.quality.recall, e.quality.f_measure, e.candidates
        );
    }
    println!(
        "\n{:?} after {} episodes ({} feedback items) in {:.2?} — \
         interactive-speed improvement, as in the paper's Fig. 4(c)",
        run.stop,
        run.episodes.len(),
        run.episodes.len() * 10,
        started.elapsed()
    );
}
